// iGreedy-style anycast detection, enumeration and geolocation
// (Cicalese et al., INFOCOM'15), the technique the paper compared its
// site-enumeration pipeline against (§7: "it mapped fewer published CDN
// sites than the method we used").
//
// Principle: a probe's RTT to an anycast address bounds the served
// instance's distance by the speed of light, defining a disc around the
// probe. Two non-overlapping discs must be served by two *different*
// instances, so a greedy maximum-independent-set over the discs yields a
// lower bound on the instance count, and each picked disc localizes one
// instance.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ranycast/core/types.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::geoloc {

struct IgreedyMeasurement {
  CityId probe_city{kInvalidCity};
  double rtt_ms{0.0};
};

struct IgreedyInstance {
  CityId probe_city{kInvalidCity};  ///< disc center
  double radius_km{0.0};
  /// Geolocated position: the gazetteer city inside the disc nearest to
  /// its center (iGreedy uses airline-traffic-weighted airports; our
  /// gazetteer is already airport-anchored).
  std::optional<CityId> city;
};

struct IgreedyResult {
  std::vector<IgreedyInstance> instances;

  bool anycast_detected() const noexcept { return instances.size() > 1; }
  std::size_t instance_count() const noexcept { return instances.size(); }
};

struct IgreedyConfig {
  /// Speed-of-light constant expressed against the round trip (the paper's
  /// 100 km per 1 ms of RTT): the served instance can be at most
  /// rtt * km_per_ms away, which is the disc radius.
  double km_per_ms{geo::kKmPerMsRtt};
  /// Measurements with absurd radii (satellite links, timeouts) are noise.
  double max_radius_km{15000.0};
};

/// Run iGreedy over one anycast address's latency measurements.
IgreedyResult igreedy(std::span<const IgreedyMeasurement> measurements,
                      const IgreedyConfig& config = {});

}  // namespace ranycast::geoloc
