#include "ranycast/geoloc/rdns.hpp"

#include <cctype>

#include "ranycast/core/rng.hpp"
#include "ranycast/core/strings.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::geoloc {

GeoHint parse_geo_hint(std::string_view rdns_name) {
  const auto& gaz = geo::Gazetteer::world();
  const auto labels = strings::split(rdns_name, '.');
  for (const auto label : labels) {
    if (label.size() != 3) continue;
    const bool alpha = std::all_of(label.begin(), label.end(),
                                   [](unsigned char c) { return std::isalpha(c); });
    if (!alpha) continue;
    std::string upper;
    for (char c : label) upper.push_back(static_cast<char>(std::toupper(c)));
    if (const auto city = gaz.find_by_iata(upper)) {
      return GeoHint{GeoHint::Kind::City, *city, {}};
    }
  }
  // ccTLD fallback: the last non-empty label.
  if (!labels.empty()) {
    const auto last = labels.back();
    if (last.size() == 2) {
      std::string upper;
      for (char c : last) upper.push_back(static_cast<char>(std::toupper(c)));
      if (gaz.find_country(upper)) {
        GeoHint hint;
        hint.kind = GeoHint::Kind::Country;
        hint.country = upper;
        return hint;
      }
    }
  }
  return {};
}

std::optional<std::string> RdnsOracle::name_for(Ipv4Addr ip) const {
  const auto owner = registry_->owner(ip);
  if (!owner || !owner->is_router || owner->city == kInvalidCity) return std::nullopt;
  const auto& gaz = geo::Gazetteer::world();
  const std::uint64_t h = mix64(hash_combine(config_.seed, ip.bits()));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;

  const std::string iata = strings::to_lower(gaz.city(owner->city).iata);
  const std::string asn = std::to_string(value(owner->asn));
  const std::string dev = "ae-" + std::to_string(h % 100) + ".core" + std::to_string(h % 4 + 1);

  // CDN-operated edge routers get the operator's domain.
  if (const auto it = cdn_domains_.find(value(owner->asn)); it != cdn_domains_.end()) {
    if (u < config_.cdn_iata_prob) return dev + "." + iata + "." + it->second;
    return std::nullopt;
  }

  if (u < config_.iata_prob) {
    return dev + "." + iata + ".as" + asn + ".example.net";
  }
  if (u < config_.iata_prob + config_.cctld_prob) {
    const std::string cc = strings::to_lower(gaz.country_code(owner->city));
    return dev + ".bb.as" + asn + ".example." + cc;
  }
  return std::nullopt;  // no PTR record
}

}  // namespace ranycast::geoloc
