#include "ranycast/geoloc/igreedy.hpp"

#include <algorithm>
#include <limits>

namespace ranycast::geoloc {

IgreedyResult igreedy(std::span<const IgreedyMeasurement> measurements,
                      const IgreedyConfig& config) {
  const auto& gaz = geo::Gazetteer::world();

  // One disc per measurement; keep the smallest disc per probe city (a
  // probe measured repeatedly contributes its best observation).
  struct Disc {
    CityId center;
    double radius_km;
  };
  std::vector<Disc> discs;
  for (const IgreedyMeasurement& m : measurements) {
    const double radius = m.rtt_ms * config.km_per_ms;
    if (radius > config.max_radius_km || m.probe_city == kInvalidCity) continue;
    const auto it = std::find_if(discs.begin(), discs.end(),
                                 [&](const Disc& d) { return d.center == m.probe_city; });
    if (it == discs.end()) {
      discs.push_back(Disc{m.probe_city, radius});
    } else {
      it->radius_km = std::min(it->radius_km, radius);
    }
  }

  // Greedy MIS: smallest discs first (they localize best and block least).
  std::sort(discs.begin(), discs.end(), [](const Disc& a, const Disc& b) {
    if (a.radius_km != b.radius_km) return a.radius_km < b.radius_km;
    return value(a.center) < value(b.center);
  });
  IgreedyResult result;
  std::vector<Disc> picked;
  for (const Disc& d : discs) {
    const bool overlaps = std::any_of(picked.begin(), picked.end(), [&](const Disc& p) {
      return gaz.distance(d.center, p.center).km <= d.radius_km + p.radius_km;
    });
    if (overlaps) continue;
    picked.push_back(d);

    IgreedyInstance instance;
    instance.probe_city = d.center;
    instance.radius_km = d.radius_km;
    // Geolocation: iGreedy places the instance at the most likely airport
    // inside the disc. Our gazetteer is already airport-anchored and probes
    // are placed at gazetteer cities, so the disc center *is* the nearest
    // candidate by construction — the instance resolves to the probe's
    // metro, which is the technique's actual resolution.
    instance.city = d.center;
    result.instances.push_back(instance);
  }
  return result;
}

}  // namespace ranycast::geoloc
