#include "ranycast/geoloc/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace ranycast::geoloc {

std::string_view to_string(Technique t) noexcept {
  switch (t) {
    case Technique::Rdns:
      return "rDNS";
    case Technique::RttRange:
      return "RTT Range";
    case Technique::CountryIpGeo:
      return "Country-level IPGeo";
    case Technique::Unresolved:
      return "Unresolved";
  }
  return "?";
}

std::size_t EnumerationResult::total_traces() const noexcept {
  std::size_t n = 0;
  for (std::size_t c : traces_by_technique) n += c;
  return n;
}

double EnumerationResult::phop_fraction(Technique t) const noexcept {
  const std::size_t total = total_phops();
  if (total == 0) return 0.0;
  return static_cast<double>(phops_by_technique[static_cast<int>(t)]) /
         static_cast<double>(total);
}

double EnumerationResult::trace_fraction(Technique t) const noexcept {
  const std::size_t total = total_traces();
  if (total == 0) return 0.0;
  return static_cast<double>(traces_by_technique[static_cast<int>(t)]) /
         static_cast<double>(total);
}

namespace {

/// Aggregated evidence about one distinct p-hop address.
struct PhopEvidence {
  std::size_t trace_count{0};
  std::set<std::size_t> regions;
  /// (probe city, RTT from probe to the p-hop) — the RTT-range inputs.
  std::vector<std::pair<CityId, double>> sightings;
};

/// Sites published in a given country, by city.
std::vector<CityId> sites_in_country(std::span<const CityId> sites, std::string_view iso2) {
  const auto& gaz = geo::Gazetteer::world();
  std::vector<CityId> out;
  for (CityId s : sites) {
    if (gaz.country_code(s) == iso2) out.push_back(s);
  }
  return out;
}

std::optional<CityId> nearest_site(std::span<const CityId> sites, CityId from,
                                   double radius_km) {
  const auto& gaz = geo::Gazetteer::world();
  std::optional<CityId> best;
  double best_km = std::numeric_limits<double>::infinity();
  for (CityId s : sites) {
    const double d = gaz.distance(from, s).km;
    if (d < best_km) {
      best_km = d;
      best = s;
    }
  }
  if (best && best_km <= radius_km) return best;
  return std::nullopt;
}

}  // namespace

EnumerationResult enumerate_sites(std::span<const TraceObservation> observations,
                                  std::span<const CityId> published_site_cities,
                                  const RdnsOracle& rdns,
                                  std::array<const dns::GeoDatabase*, 3> dbs,
                                  const PipelineConfig& config) {
  const auto& gaz = geo::Gazetteer::world();
  EnumerationResult result;

  // ---- collect evidence per distinct p-hop ----
  std::unordered_map<Ipv4Addr, PhopEvidence> evidence;
  for (const TraceObservation& obs : observations) {
    if (!obs.trace.phop_valid || obs.trace.hops.empty()) continue;
    const bgp::Hop& phop = obs.trace.phop();
    auto& ev = evidence[phop.ip];
    ev.trace_count++;
    ev.regions.insert(obs.region);
    ev.sightings.emplace_back(obs.probe->reported_city, phop.rtt.ms);
  }

  // ---- resolve each p-hop through the cascade ----
  for (const auto& [ip, ev] : evidence) {
    PhopInfo info;
    info.ip = ip;
    info.trace_count = ev.trace_count;
    info.regions = ev.regions;

    // 1. rDNS geo hints.
    if (const auto name = rdns.name_for(ip)) {
      const GeoHint hint = parse_geo_hint(*name);
      if (hint.kind == GeoHint::Kind::City) {
        info.technique = Technique::Rdns;
        info.resolved_city = hint.city;
      } else if (hint.kind == GeoHint::Kind::Country) {
        // ccTLD usable only when the operator publishes exactly one site in
        // that country.
        const auto in_country = sites_in_country(published_site_cities, hint.country);
        if (in_country.size() == 1) {
          info.technique = Technique::Rdns;
          info.resolved_city = in_country.front();
        }
      }
    }

    // 2. RTT range: a probe within the threshold pins the p-hop to its
    // metropolitan area; the geo DBs provide candidate cities and the
    // speed-of-light constraint filters them.
    if (!info.resolved_city) {
      const std::pair<CityId, double>* close = nullptr;
      for (const auto& s : ev.sightings) {
        if (s.second <= config.rtt_range_threshold_ms && (close == nullptr || s.second < close->second)) {
          close = &s;
        }
      }
      if (close != nullptr) {
        const double max_km = geo::max_distance(Rtt{close->second}).km;
        std::optional<CityId> best;
        double best_km = std::numeric_limits<double>::infinity();
        for (const auto* db : dbs) {
          const auto candidate = db->city_estimate(ip);
          if (!candidate) continue;
          const double d = gaz.distance(*candidate, close->first).km;
          if (d <= max_km && d < best_km) {
            best_km = d;
            best = candidate;
          }
        }
        if (best) {
          info.technique = Technique::RttRange;
          info.resolved_city = best;
        }
      }
    }

    // 3. Country-level IPGeo consensus.
    if (!info.resolved_city) {
      std::optional<std::string_view> consensus;
      bool agree = true;
      for (const auto* db : dbs) {
        const auto c = db->country(ip);
        if (!c) {
          agree = false;
          break;
        }
        if (!consensus) {
          consensus = c;
        } else if (*consensus != *c) {
          agree = false;
          break;
        }
      }
      if (agree && consensus) {
        const auto in_country = sites_in_country(published_site_cities, *consensus);
        if (in_country.size() == 1) {
          info.technique = Technique::CountryIpGeo;
          info.resolved_city = in_country.front();
        }
      }
    }

    // ---- site attribution ----
    if (info.resolved_city) {
      info.mapped_site =
          nearest_site(published_site_cities, *info.resolved_city, config.site_match_radius_km);
      if (info.mapped_site) {
        for (std::size_t r : info.regions) result.site_regions[*info.mapped_site].insert(r);
      }
    } else {
      info.technique = Technique::Unresolved;
    }

    result.phops_by_technique[static_cast<int>(info.technique)]++;
    result.traces_by_technique[static_cast<int>(info.technique)] += info.trace_count;
    result.phops.push_back(std::move(info));
  }

  // Deterministic order for reporting.
  std::sort(result.phops.begin(), result.phops.end(),
            [](const PhopInfo& a, const PhopInfo& b) { return a.ip < b.ip; });
  return result;
}

}  // namespace ranycast::geoloc
