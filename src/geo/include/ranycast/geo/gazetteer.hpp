// Embedded world gazetteer: countries, continents, geographic areas and a
// ~160-city table with IATA codes and coordinates.
//
// The paper groups RIPE Atlas probes into four geographic areas (§3.1):
//   EMEA  = Europe, Middle East, Africa
//   NA    = North America excluding Central America
//   LatAm = South America plus Central America
//   APAC  = the rest of the globe
// We reproduce this area definition exactly. Mexico is classified with the
// Central-America block so that it falls into LatAm, matching how the paper's
// CDN region maps treat it (Fig. 2c shows Mexican clients in the LatAm
// region).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ranycast/core/types.hpp"
#include "ranycast/geo/earth.hpp"

namespace ranycast::geo {

enum class Continent : std::uint8_t {
  NorthAmerica,
  CentralAmerica,  // includes Mexico and the Caribbean for area purposes
  SouthAmerica,
  Europe,
  MiddleEast,
  Africa,
  Asia,
  Oceania,
};

/// The paper's probe-census areas (§3.1).
enum class Area : std::uint8_t { EMEA, NA, LatAm, APAC };

constexpr std::size_t kAreaCount = 4;

std::string_view to_string(Area a) noexcept;
std::string_view to_string(Continent c) noexcept;

/// Map a continent to the paper's four-area scheme.
constexpr Area area_of(Continent c) noexcept {
  switch (c) {
    case Continent::NorthAmerica:
      return Area::NA;
    case Continent::CentralAmerica:
    case Continent::SouthAmerica:
      return Area::LatAm;
    case Continent::Europe:
    case Continent::MiddleEast:
    case Continent::Africa:
      return Area::EMEA;
    case Continent::Asia:
    case Continent::Oceania:
      return Area::APAC;
  }
  return Area::APAC;
}

using CountryIdx = std::uint16_t;

struct Country {
  std::string_view iso2;  ///< ISO 3166-1 alpha-2 code
  std::string_view name;
  Continent continent;
};

struct City {
  std::string_view name;
  std::string_view iata;  ///< IATA code of the city's main airport
  CountryIdx country;     ///< index into the country table
  GeoPoint location;
};

/// Immutable, process-wide world model.
class Gazetteer {
 public:
  /// The singleton world table (thread-safe static initialization).
  static const Gazetteer& world();

  std::span<const Country> countries() const noexcept { return countries_; }
  std::span<const City> cities() const noexcept { return cities_; }

  const City& city(CityId id) const { return cities_[value(id)]; }
  const Country& country_of(CityId id) const { return countries_[city(id).country]; }

  Continent continent_of(CityId id) const { return country_of(id).continent; }
  Area area_of_city(CityId id) const { return area_of(continent_of(id)); }
  std::string_view country_code(CityId id) const { return country_of(id).iso2; }

  std::optional<CityId> find_by_iata(std::string_view iata) const;
  std::optional<CountryIdx> find_country(std::string_view iso2) const;

  /// All cities located in the given area / country.
  std::vector<CityId> cities_in_area(Area a) const;
  std::vector<CityId> cities_in_country(std::string_view iso2) const;

  /// The city in the table closest to `p` (ties by lower id).
  CityId nearest_city(GeoPoint p) const;

  /// Great-circle distance between two cities. Served from a precomputed
  /// city×city matrix (filled with haversine() at construction, so values are
  /// bit-identical to computing on demand); the solver's nearest-exit scans
  /// and the latency model hit this on every hop.
  Km distance(CityId a, CityId b) const {
    return Km{dist_km_[value(a) * cities_.size() + value(b)]};
  }

 private:
  Gazetteer();

  std::vector<Country> countries_;
  std::vector<City> cities_;
  std::vector<double> dist_km_;  ///< row-major cities×cities haversine matrix
};

}  // namespace ranycast::geo
