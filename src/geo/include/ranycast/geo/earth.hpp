// Spherical-earth distance model and the paper's distance→latency constant.
#pragma once

#include "ranycast/core/types.hpp"

namespace ranycast::geo {

/// A point on the Earth's surface, in degrees.
struct GeoPoint {
  double lat_deg{0.0};
  double lon_deg{0.0};
};

/// Great-circle distance (spherical earth, R = 6371 km).
Km haversine(GeoPoint a, GeoPoint b) noexcept;

/// Speed-of-light RTT lower bound in fibre. The paper (§4.4) uses
/// "roughly 100 km per 1 ms RTT"; we adopt the same constant.
constexpr double kKmPerMsRtt = 100.0;

constexpr Rtt rtt_lower_bound(Km d) noexcept { return Rtt{d.km / kKmPerMsRtt}; }

/// Inverse of rtt_lower_bound: the maximum distance a given RTT allows.
constexpr Km max_distance(Rtt r) noexcept { return Km{r.ms * kKmPerMsRtt}; }

}  // namespace ranycast::geo
