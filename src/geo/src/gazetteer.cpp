#include "ranycast/geo/gazetteer.hpp"

#include <algorithm>
#include <limits>

namespace ranycast::geo {

std::string_view to_string(Area a) noexcept {
  switch (a) {
    case Area::EMEA:
      return "EMEA";
    case Area::NA:
      return "NA";
    case Area::LatAm:
      return "LatAm";
    case Area::APAC:
      return "APAC";
  }
  return "?";
}

std::string_view to_string(Continent c) noexcept {
  switch (c) {
    case Continent::NorthAmerica:
      return "North America";
    case Continent::CentralAmerica:
      return "Central America";
    case Continent::SouthAmerica:
      return "South America";
    case Continent::Europe:
      return "Europe";
    case Continent::MiddleEast:
      return "Middle East";
    case Continent::Africa:
      return "Africa";
    case Continent::Asia:
      return "Asia";
    case Continent::Oceania:
      return "Oceania";
  }
  return "?";
}

namespace {

// Country table. Order defines CountryIdx values; cities refer to countries
// by ISO code and are resolved at construction time.
struct CountrySpec {
  const char* iso2;
  const char* name;
  Continent continent;
};

constexpr CountrySpec kCountries[] = {
    // North America
    {"US", "United States", Continent::NorthAmerica},
    {"CA", "Canada", Continent::NorthAmerica},
    // Central America + Mexico + Caribbean (LatAm area)
    {"MX", "Mexico", Continent::CentralAmerica},
    {"GT", "Guatemala", Continent::CentralAmerica},
    {"CR", "Costa Rica", Continent::CentralAmerica},
    {"PA", "Panama", Continent::CentralAmerica},
    {"DO", "Dominican Republic", Continent::CentralAmerica},
    // South America
    {"BR", "Brazil", Continent::SouthAmerica},
    {"AR", "Argentina", Continent::SouthAmerica},
    {"CL", "Chile", Continent::SouthAmerica},
    {"CO", "Colombia", Continent::SouthAmerica},
    {"PE", "Peru", Continent::SouthAmerica},
    {"EC", "Ecuador", Continent::SouthAmerica},
    {"UY", "Uruguay", Continent::SouthAmerica},
    {"VE", "Venezuela", Continent::SouthAmerica},
    {"BO", "Bolivia", Continent::SouthAmerica},
    {"PY", "Paraguay", Continent::SouthAmerica},
    // Europe
    {"GB", "United Kingdom", Continent::Europe},
    {"FR", "France", Continent::Europe},
    {"DE", "Germany", Continent::Europe},
    {"NL", "Netherlands", Continent::Europe},
    {"ES", "Spain", Continent::Europe},
    {"PT", "Portugal", Continent::Europe},
    {"IT", "Italy", Continent::Europe},
    {"BE", "Belgium", Continent::Europe},
    {"CH", "Switzerland", Continent::Europe},
    {"AT", "Austria", Continent::Europe},
    {"PL", "Poland", Continent::Europe},
    {"CZ", "Czechia", Continent::Europe},
    {"SE", "Sweden", Continent::Europe},
    {"NO", "Norway", Continent::Europe},
    {"DK", "Denmark", Continent::Europe},
    {"FI", "Finland", Continent::Europe},
    {"IE", "Ireland", Continent::Europe},
    {"GR", "Greece", Continent::Europe},
    {"RO", "Romania", Continent::Europe},
    {"HU", "Hungary", Continent::Europe},
    {"BG", "Bulgaria", Continent::Europe},
    {"RS", "Serbia", Continent::Europe},
    {"UA", "Ukraine", Continent::Europe},
    {"RU", "Russia", Continent::Europe},
    {"BY", "Belarus", Continent::Europe},
    {"TR", "Turkey", Continent::Europe},
    {"SV", "El Salvador", Continent::CentralAmerica},
    {"HN", "Honduras", Continent::CentralAmerica},
    {"NI", "Nicaragua", Continent::CentralAmerica},
    {"JM", "Jamaica", Continent::CentralAmerica},
    {"CU", "Cuba", Continent::CentralAmerica},
    {"PR", "Puerto Rico", Continent::CentralAmerica},
    {"HR", "Croatia", Continent::Europe},
    {"SK", "Slovakia", Continent::Europe},
    {"SI", "Slovenia", Continent::Europe},
    {"LT", "Lithuania", Continent::Europe},
    {"LV", "Latvia", Continent::Europe},
    {"EE", "Estonia", Continent::Europe},
    {"IS", "Iceland", Continent::Europe},
    // Middle East
    {"IL", "Israel", Continent::MiddleEast},
    {"GE", "Georgia", Continent::MiddleEast},
    {"AM", "Armenia", Continent::MiddleEast},
    {"AZ", "Azerbaijan", Continent::MiddleEast},
    {"OM", "Oman", Continent::MiddleEast},
    {"LB", "Lebanon", Continent::MiddleEast},
    {"IQ", "Iraq", Continent::MiddleEast},
    {"AE", "United Arab Emirates", Continent::MiddleEast},
    {"SA", "Saudi Arabia", Continent::MiddleEast},
    {"QA", "Qatar", Continent::MiddleEast},
    {"JO", "Jordan", Continent::MiddleEast},
    {"KW", "Kuwait", Continent::MiddleEast},
    {"BH", "Bahrain", Continent::MiddleEast},
    // Africa
    {"EG", "Egypt", Continent::Africa},
    {"ZA", "South Africa", Continent::Africa},
    {"NG", "Nigeria", Continent::Africa},
    {"KE", "Kenya", Continent::Africa},
    {"MA", "Morocco", Continent::Africa},
    {"TN", "Tunisia", Continent::Africa},
    {"GH", "Ghana", Continent::Africa},
    {"AO", "Angola", Continent::Africa},
    {"SN", "Senegal", Continent::Africa},
    {"TZ", "Tanzania", Continent::Africa},
    {"ET", "Ethiopia", Continent::Africa},
    {"DZ", "Algeria", Continent::Africa},
    {"UG", "Uganda", Continent::Africa},
    {"MZ", "Mozambique", Continent::Africa},
    {"ZW", "Zimbabwe", Continent::Africa},
    {"CI", "Ivory Coast", Continent::Africa},
    {"CD", "DR Congo", Continent::Africa},
    {"ZM", "Zambia", Continent::Africa},
    {"BW", "Botswana", Continent::Africa},
    {"RW", "Rwanda", Continent::Africa},
    {"SD", "Sudan", Continent::Africa},
    {"CM", "Cameroon", Continent::Africa},
    {"MU", "Mauritius", Continent::Africa},
    // Asia
    {"CN", "China", Continent::Asia},
    {"NP", "Nepal", Continent::Asia},
    {"MM", "Myanmar", Continent::Asia},
    {"KH", "Cambodia", Continent::Asia},
    {"MN", "Mongolia", Continent::Asia},
    {"KG", "Kyrgyzstan", Continent::Asia},
    {"JP", "Japan", Continent::Asia},
    {"KR", "South Korea", Continent::Asia},
    {"IN", "India", Continent::Asia},
    {"SG", "Singapore", Continent::Asia},
    {"MY", "Malaysia", Continent::Asia},
    {"TH", "Thailand", Continent::Asia},
    {"ID", "Indonesia", Continent::Asia},
    {"PH", "Philippines", Continent::Asia},
    {"VN", "Vietnam", Continent::Asia},
    {"HK", "Hong Kong", Continent::Asia},
    {"TW", "Taiwan", Continent::Asia},
    {"PK", "Pakistan", Continent::Asia},
    {"BD", "Bangladesh", Continent::Asia},
    {"LK", "Sri Lanka", Continent::Asia},
    {"KZ", "Kazakhstan", Continent::Asia},
    {"UZ", "Uzbekistan", Continent::Asia},
    // Oceania
    {"AU", "Australia", Continent::Oceania},
    {"NZ", "New Zealand", Continent::Oceania},
};

struct CitySpec {
  const char* name;
  const char* iata;
  const char* iso2;
  double lat;
  double lon;
};

constexpr CitySpec kCities[] = {
    // ---- United States ----
    {"New York", "JFK", "US", 40.64, -73.78},
    {"Ashburn", "IAD", "US", 38.95, -77.45},
    {"Los Angeles", "LAX", "US", 33.94, -118.41},
    {"San Jose", "SJC", "US", 37.36, -121.93},
    {"Seattle", "SEA", "US", 47.45, -122.31},
    {"Chicago", "ORD", "US", 41.97, -87.90},
    {"Dallas", "DFW", "US", 32.90, -97.04},
    {"Miami", "MIA", "US", 25.79, -80.29},
    {"Atlanta", "ATL", "US", 33.64, -84.43},
    {"Denver", "DEN", "US", 39.86, -104.67},
    {"Phoenix", "PHX", "US", 33.43, -112.01},
    {"Boston", "BOS", "US", 42.36, -71.01},
    {"Houston", "IAH", "US", 29.98, -95.34},
    {"Minneapolis", "MSP", "US", 44.88, -93.22},
    {"Salt Lake City", "SLC", "US", 40.79, -111.98},
    {"Las Vegas", "LAS", "US", 36.08, -115.15},
    {"Portland", "PDX", "US", 45.59, -122.60},
    {"Philadelphia", "PHL", "US", 39.87, -75.24},
    {"Detroit", "DTW", "US", 42.21, -83.35},
    {"Kansas City", "MCI", "US", 39.30, -94.71},
    {"St. Louis", "STL", "US", 38.75, -90.37},
    {"Charlotte", "CLT", "US", 35.21, -80.94},
    {"Tampa", "TPA", "US", 27.98, -82.53},
    {"Sacramento", "SMF", "US", 38.70, -121.59},
    {"San Diego", "SAN", "US", 32.73, -117.19},
    {"Austin", "AUS", "US", 30.19, -97.67},
    {"Nashville", "BNA", "US", 36.12, -86.68},
    {"Columbus", "CMH", "US", 40.00, -82.89},
    {"Pittsburgh", "PIT", "US", 40.49, -80.23},
    {"Honolulu", "HNL", "US", 21.32, -157.92},
    // ---- Canada ----
    {"Toronto", "YYZ", "CA", 43.68, -79.63},
    {"Montreal", "YUL", "CA", 45.47, -73.74},
    {"Vancouver", "YVR", "CA", 49.19, -123.18},
    {"Calgary", "YYC", "CA", 51.11, -114.02},
    {"Ottawa", "YOW", "CA", 45.32, -75.67},
    {"Winnipeg", "YWG", "CA", 49.91, -97.24},
    {"Halifax", "YHZ", "CA", 44.88, -63.51},
    {"Edmonton", "YEG", "CA", 53.31, -113.58},
    // ---- Mexico / Central America / Caribbean ----
    {"Mexico City", "MEX", "MX", 19.44, -99.07},
    {"Guadalajara", "GDL", "MX", 20.52, -103.31},
    {"Monterrey", "MTY", "MX", 25.78, -100.11},
    {"Guatemala City", "GUA", "GT", 14.58, -90.53},
    {"San Jose CR", "SJO", "CR", 9.99, -84.20},
    {"Panama City", "PTY", "PA", 9.07, -79.38},
    {"Santo Domingo", "SDQ", "DO", 18.43, -69.67},
    // ---- South America ----
    {"Bogota", "BOG", "CO", 4.70, -74.15},
    {"Medellin", "MDE", "CO", 6.16, -75.42},
    {"Lima", "LIM", "PE", -12.02, -77.11},
    {"Quito", "UIO", "EC", -0.13, -78.36},
    {"Caracas", "CCS", "VE", 10.60, -66.99},
    {"Santiago", "SCL", "CL", -33.39, -70.79},
    {"Buenos Aires", "EZE", "AR", -34.82, -58.54},
    {"Cordoba", "COR", "AR", -31.32, -64.21},
    {"Sao Paulo", "GRU", "BR", -23.43, -46.47},
    {"Rio de Janeiro", "GIG", "BR", -22.81, -43.25},
    {"Porto Alegre", "POA", "BR", -29.99, -51.17},
    {"Brasilia", "BSB", "BR", -15.87, -47.92},
    {"Fortaleza", "FOR", "BR", -3.78, -38.53},
    {"Recife", "REC", "BR", -8.13, -34.92},
    {"Montevideo", "MVD", "UY", -34.84, -56.03},
    {"Asuncion", "ASU", "PY", -25.24, -57.52},
    {"La Paz", "LPB", "BO", -16.51, -68.19},
    // ---- Europe ----
    {"London", "LHR", "GB", 51.47, -0.45},
    {"Manchester", "MAN", "GB", 53.35, -2.28},
    {"Amsterdam", "AMS", "NL", 52.31, 4.76},
    {"Frankfurt", "FRA", "DE", 50.03, 8.57},
    {"Munich", "MUC", "DE", 48.35, 11.79},
    {"Berlin", "BER", "DE", 52.36, 13.50},
    {"Hamburg", "HAM", "DE", 53.63, 9.99},
    {"Dusseldorf", "DUS", "DE", 51.29, 6.77},
    {"Paris", "CDG", "FR", 49.01, 2.55},
    {"Marseille", "MRS", "FR", 43.44, 5.22},
    {"Lyon", "LYS", "FR", 45.73, 5.08},
    {"Madrid", "MAD", "ES", 40.47, -3.56},
    {"Barcelona", "BCN", "ES", 41.30, 2.08},
    {"Lisbon", "LIS", "PT", 38.77, -9.13},
    {"Milan", "MXP", "IT", 45.63, 8.72},
    {"Rome", "FCO", "IT", 41.80, 12.25},
    {"Brussels", "BRU", "BE", 50.90, 4.48},
    {"Zurich", "ZRH", "CH", 47.46, 8.55},
    {"Geneva", "GVA", "CH", 46.24, 6.11},
    {"Vienna", "VIE", "AT", 48.11, 16.57},
    {"Warsaw", "WAW", "PL", 52.17, 20.97},
    {"Prague", "PRG", "CZ", 50.10, 14.26},
    {"Stockholm", "ARN", "SE", 59.65, 17.92},
    {"Oslo", "OSL", "NO", 60.19, 11.10},
    {"Copenhagen", "CPH", "DK", 55.62, 12.66},
    {"Helsinki", "HEL", "FI", 60.32, 24.96},
    {"Dublin", "DUB", "IE", 53.43, -6.25},
    {"Athens", "ATH", "GR", 37.94, 23.94},
    {"Bucharest", "OTP", "RO", 44.57, 26.09},
    {"Budapest", "BUD", "HU", 47.44, 19.25},
    {"Sofia", "SOF", "BG", 42.70, 23.40},
    {"Belgrade", "BEG", "RS", 44.82, 20.29},
    {"Kyiv", "KBP", "UA", 50.35, 30.89},
    {"Istanbul", "IST", "TR", 41.26, 28.74},
    // ---- Russia / Belarus ----
    {"Moscow", "SVO", "RU", 55.97, 37.41},
    {"St. Petersburg", "LED", "RU", 59.80, 30.27},
    {"Novosibirsk", "OVB", "RU", 55.01, 82.65},
    {"Yekaterinburg", "SVX", "RU", 56.74, 60.80},
    {"Minsk", "MSQ", "BY", 53.88, 28.03},
    // ---- Middle East ----
    {"Tel Aviv", "TLV", "IL", 32.01, 34.89},
    {"Dubai", "DXB", "AE", 25.25, 55.36},
    {"Riyadh", "RUH", "SA", 24.96, 46.70},
    {"Doha", "DOH", "QA", 25.27, 51.61},
    {"Amman", "AMM", "JO", 31.72, 35.99},
    {"Kuwait City", "KWI", "KW", 29.23, 47.97},
    {"Manama", "BAH", "BH", 26.27, 50.63},
    // ---- Africa ----
    {"Cairo", "CAI", "EG", 30.12, 31.41},
    {"Johannesburg", "JNB", "ZA", -26.14, 28.25},
    {"Cape Town", "CPT", "ZA", -33.96, 18.60},
    {"Lagos", "LOS", "NG", 6.58, 3.32},
    {"Nairobi", "NBO", "KE", -1.32, 36.93},
    {"Casablanca", "CMN", "MA", 33.37, -7.59},
    {"Tunis", "TUN", "TN", 36.85, 10.23},
    {"Accra", "ACC", "GH", 5.61, -0.17},
    {"Luanda", "LAD", "AO", -8.86, 13.23},
    {"Dakar", "DSS", "SN", 14.67, -17.07},
    {"Dar es Salaam", "DAR", "TZ", -6.88, 39.20},
    {"Addis Ababa", "ADD", "ET", 8.98, 38.80},
    {"Algiers", "ALG", "DZ", 36.69, 3.22},
    {"Kampala", "EBB", "UG", 0.04, 32.44},
    {"Maputo", "MPM", "MZ", -25.92, 32.57},
    {"Harare", "HRE", "ZW", -17.93, 31.09},
    // ---- Asia ----
    {"Tokyo", "NRT", "JP", 35.77, 140.39},
    {"Osaka", "KIX", "JP", 34.43, 135.24},
    {"Seoul", "ICN", "KR", 37.46, 126.44},
    {"Beijing", "PEK", "CN", 40.08, 116.58},
    {"Shanghai", "PVG", "CN", 31.14, 121.81},
    {"Shenzhen", "SZX", "CN", 22.64, 113.81},
    {"Chengdu", "CTU", "CN", 30.57, 103.95},
    {"Hong Kong", "HKG", "HK", 22.31, 113.91},
    {"Taipei", "TPE", "TW", 25.08, 121.23},
    {"Singapore", "SIN", "SG", 1.36, 103.99},
    {"Kuala Lumpur", "KUL", "MY", 2.75, 101.71},
    {"Bangkok", "BKK", "TH", 13.68, 100.75},
    {"Jakarta", "CGK", "ID", -6.13, 106.66},
    {"Manila", "MNL", "PH", 14.51, 121.02},
    {"Hanoi", "HAN", "VN", 21.22, 105.81},
    {"Ho Chi Minh City", "SGN", "VN", 10.82, 106.63},
    {"Mumbai", "BOM", "IN", 19.09, 72.87},
    {"Delhi", "DEL", "IN", 28.57, 77.10},
    {"Chennai", "MAA", "IN", 12.99, 80.17},
    {"Bangalore", "BLR", "IN", 13.20, 77.71},
    {"Hyderabad", "HYD", "IN", 17.23, 78.43},
    {"Kolkata", "CCU", "IN", 22.65, 88.45},
    {"Karachi", "KHI", "PK", 24.91, 67.16},
    {"Islamabad", "ISB", "PK", 33.56, 72.85},
    {"Dhaka", "DAC", "BD", 23.84, 90.40},
    {"Colombo", "CMB", "LK", 7.18, 79.88},
    {"Almaty", "ALA", "KZ", 43.35, 77.04},
    {"Tashkent", "TAS", "UZ", 41.26, 69.28},
    {"San Salvador", "SAL", "SV", 13.44, -89.06},
    {"Tegucigalpa", "TGU", "HN", 14.06, -87.22},
    {"Managua", "MGA", "NI", 12.14, -86.17},
    {"Kingston", "KIN", "JM", 17.94, -76.79},
    {"Havana", "HAV", "CU", 22.99, -82.41},
    {"San Juan", "SJU", "PR", 18.44, -66.00},
    {"Curitiba", "CWB", "BR", -25.53, -49.17},
    {"Belo Horizonte", "CNF", "BR", -19.62, -43.97},
    {"Salvador", "SSA", "BR", -12.91, -38.33},
    {"Manaus", "MAO", "BR", -3.04, -60.05},
    {"Cali", "CLO", "CO", 3.54, -76.38},
    {"Barranquilla", "BAQ", "CO", 10.89, -74.78},
    {"Guayaquil", "GYE", "EC", -2.16, -79.88},
    {"Santa Cruz", "VVI", "BO", -17.64, -63.14},
    {"Zagreb", "ZAG", "HR", 45.74, 16.07},
    {"Bratislava", "BTS", "SK", 48.17, 17.21},
    {"Ljubljana", "LJU", "SI", 46.22, 14.46},
    {"Vilnius", "VNO", "LT", 54.63, 25.28},
    {"Riga", "RIX", "LV", 56.92, 23.97},
    {"Tallinn", "TLL", "EE", 59.41, 24.83},
    {"Reykjavik", "KEF", "IS", 63.99, -22.62},
    {"Porto", "OPO", "PT", 41.24, -8.68},
    {"Gothenburg", "GOT", "SE", 57.66, 12.28},
    {"Edinburgh", "EDI", "GB", 55.95, -3.37},
    {"Lviv", "LWO", "UA", 49.81, 23.96},
    {"Kazan", "KZN", "RU", 55.61, 49.28},
    {"Tbilisi", "TBS", "GE", 41.67, 44.95},
    {"Yerevan", "EVN", "AM", 40.15, 44.40},
    {"Baku", "GYD", "AZ", 40.47, 50.05},
    {"Muscat", "MCT", "OM", 23.59, 58.28},
    {"Beirut", "BEY", "LB", 33.82, 35.49},
    {"Baghdad", "BGW", "IQ", 33.26, 44.23},
    {"Abidjan", "ABJ", "CI", 5.26, -3.93},
    {"Abuja", "ABV", "NG", 9.01, 7.26},
    {"Kinshasa", "FIH", "CD", -4.39, 15.44},
    {"Lusaka", "LUN", "ZM", -15.33, 28.45},
    {"Gaborone", "GBE", "BW", -24.56, 25.92},
    {"Kigali", "KGL", "RW", -1.97, 30.14},
    {"Khartoum", "KRT", "SD", 15.59, 32.55},
    {"Douala", "DLA", "CM", 4.01, 9.72},
    {"Port Louis", "MRU", "MU", -20.43, 57.68},
    {"Nagoya", "NGO", "JP", 34.86, 136.81},
    {"Fukuoka", "FUK", "JP", 33.59, 130.45},
    {"Busan", "PUS", "KR", 35.18, 128.94},
    {"Guangzhou", "CAN", "CN", 23.39, 113.31},
    {"Xi'an", "XIY", "CN", 34.45, 108.75},
    {"Wuhan", "WUH", "CN", 30.78, 114.21},
    {"Pune", "PNQ", "IN", 18.58, 73.92},
    {"Ahmedabad", "AMD", "IN", 23.07, 72.63},
    {"Kathmandu", "KTM", "NP", 27.70, 85.36},
    {"Yangon", "RGN", "MM", 16.91, 96.13},
    {"Phnom Penh", "PNH", "KH", 11.55, 104.84},
    {"Ulaanbaatar", "ULN", "MN", 47.84, 106.77},
    {"Bishkek", "FRU", "KG", 42.88, 74.47},
    {"San Francisco", "SFO", "US", 37.62, -122.38},
    {"Raleigh", "RDU", "US", 35.88, -78.79},
    {"Jacksonville", "JAX", "US", 30.49, -81.69},
    {"Albuquerque", "ABQ", "US", 35.04, -106.61},
    {"Anchorage", "ANC", "US", 61.17, -149.99},
    {"Quebec City", "YQB", "CA", 46.79, -71.39},
    // ---- Oceania ----
    {"Sydney", "SYD", "AU", -33.95, 151.18},
    {"Melbourne", "MEL", "AU", -37.67, 144.84},
    {"Brisbane", "BNE", "AU", -27.38, 153.12},
    {"Perth", "PER", "AU", -31.94, 115.97},
    {"Adelaide", "ADL", "AU", -34.94, 138.53},
    {"Auckland", "AKL", "NZ", -37.01, 174.79},
    {"Wellington", "WLG", "NZ", -41.33, 174.81},
};

}  // namespace

Gazetteer::Gazetteer() {
  countries_.reserve(std::size(kCountries));
  for (const auto& c : kCountries) {
    countries_.push_back(Country{c.iso2, c.name, c.continent});
  }
  cities_.reserve(std::size(kCities));
  for (const auto& c : kCities) {
    const auto idx = find_country(c.iso2);
    // The tables are compiled-in; a missing country is a programming error
    // caught by the unit tests, but we fail safe to country 0 in release.
    cities_.push_back(City{c.name, c.iata, idx.value_or(0), GeoPoint{c.lat, c.lon}});
  }
  // Precompute the full pairwise distance plane once (~170 cities → a few
  // hundred KB). The matrix is symmetric with a zero diagonal but we store it
  // dense: distance() stays a single multiply-add-index with no branch.
  const std::size_t n = cities_.size();
  dist_km_.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    dist_km_[i * n + i] = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = haversine(cities_[i].location, cities_[j].location).km;
      dist_km_[i * n + j] = d;
      dist_km_[j * n + i] = d;
    }
  }
}

const Gazetteer& Gazetteer::world() {
  static const Gazetteer instance;
  return instance;
}

std::optional<CityId> Gazetteer::find_by_iata(std::string_view iata) const {
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    if (cities_[i].iata == iata) return CityId{static_cast<std::uint16_t>(i)};
  }
  return std::nullopt;
}

std::optional<CountryIdx> Gazetteer::find_country(std::string_view iso2) const {
  for (std::size_t i = 0; i < countries_.size(); ++i) {
    if (countries_[i].iso2 == iso2) return static_cast<CountryIdx>(i);
  }
  return std::nullopt;
}

std::vector<CityId> Gazetteer::cities_in_area(Area a) const {
  std::vector<CityId> out;
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    const auto id = CityId{static_cast<std::uint16_t>(i)};
    if (area_of_city(id) == a) out.push_back(id);
  }
  return out;
}

std::vector<CityId> Gazetteer::cities_in_country(std::string_view iso2) const {
  std::vector<CityId> out;
  const auto idx = find_country(iso2);
  if (!idx) return out;
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    if (cities_[i].country == *idx) out.push_back(CityId{static_cast<std::uint16_t>(i)});
  }
  return out;
}

CityId Gazetteer::nearest_city(GeoPoint p) const {
  CityId best{0};
  double best_km = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    const double d = haversine(p, cities_[i].location).km;
    if (d < best_km) {
      best_km = d;
      best = CityId{static_cast<std::uint16_t>(i)};
    }
  }
  return best;
}

}  // namespace ranycast::geo
