#include "ranycast/geo/earth.hpp"

#include <cmath>
#include <numbers>

namespace ranycast::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double deg2rad(double d) noexcept { return d * std::numbers::pi / 180.0; }
}  // namespace

Km haversine(GeoPoint a, GeoPoint b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return Km{2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)))};
}

}  // namespace ranycast::geo
