// Fault plans: typed, ordered failure timelines for the chaos engine.
//
// A FaultPlan is the unit of a chaos experiment: a named sequence of fault
// events applied to one deployment in one laboratory, with a catchment
// re-solve and a measurement pass between steps. Plans are data (loadable
// from JSON scenario files, see scenario.hpp), so the same timeline can be
// replayed across worlds, seeds and deployments. Every event is
// deterministic: same seed + same plan => byte-identical reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ranycast/core/types.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::chaos {

enum class FaultKind : std::uint8_t {
  SiteWithdraw,    ///< withdraw every announcement of one site (§4.5 drill)
  SiteRestore,     ///< undo a prior SiteWithdraw
  SiteLinkDown,    ///< fail one site attachment (single-adjacency failure)
  SiteLinkUp,      ///< restore a failed site attachment
  LinkDown,        ///< fail an arbitrary AS-AS adjacency in the topology
  LinkUp,          ///< restore an arbitrary adjacency
  RouteServerDown, ///< IXP route-server outage: multilateral peerings drop
  RouteServerUp,   ///< route server back: multilateral peerings return
  RegionWithdraw,  ///< withdraw one regional prefix everywhere
  RegionRestore,   ///< re-announce a withdrawn regional prefix
  GeoDbStale,      ///< geolocation DB drifts: extra block-level country errors
  GeoDbOutage,     ///< geolocation DB down: lookups fail, DNS serves fallback
  GeoDbRestore,    ///< geolocation DB back to its configured error profile
  MeasurementDegrade,  ///< packet loss + resolver timeouts on the probe plane
  MeasurementRestore,  ///< measurement plane back to lossless
  TrafficSurge,        ///< demand spike: scales the traffic plane's arrivals
  TrafficRestore,      ///< demand back to the configured baseline
};

std::string_view to_string(FaultKind k) noexcept;

/// One step of a fault timeline. Only the fields of the addressed kind are
/// meaningful (site/attachment for Site*, a/b for Link*, ixp for
/// RouteServer*, region for Region*, db/magnitude for GeoDb*, faults for
/// MeasurementDegrade).
struct FaultEvent {
  FaultKind kind{FaultKind::SiteWithdraw};
  std::string label;  ///< optional scenario-author description

  SiteId site{kInvalidSite};
  std::size_t attachment{0};
  Asn a{kInvalidAsn}, b{kInvalidAsn};
  std::size_t ixp{0};
  std::size_t region{0};
  std::size_t db{0};
  /// GeoDbStale: extra block-granular wrong-country probability.
  /// TrafficSurge: the arrival-rate multiplier to install (> 0).
  double magnitude{0.0};
  /// MeasurementDegrade: the degradation profile to install.
  lab::MeasurementFaults faults{};
};

/// Human-readable one-liner ("site_withdraw site=3 'drain FRA'").
std::string describe(const FaultEvent& e);

struct FaultPlan {
  std::string name;
  std::vector<FaultEvent> events;
};

/// The one-event plan equivalent to resilience::fail_site (the chaos engine
/// subsumes it; tests assert the numbers match exactly).
FaultPlan single_site_withdrawal(SiteId site);

}  // namespace ranycast::chaos
