// The chaos engine: apply a FaultPlan step by step and measure the blast
// radius of every step.
//
// Each step: (1) snapshot every retained probe's DNS answer, selected route
// and RTT, (2) apply the fault mutation in place (announcement state,
// adjacency state, geo-DB mode or measurement-plane degradation), (3)
// re-solve the deployment's regional prefixes over the mutated world with
// the original tie-break salts, (4) re-measure and reduce the deltas into a
// StepReport. Reports carry no wall-clock data and read no observability
// counters, so two runs with the same seed and plan serialize to the same
// bytes; timings and fault telemetry live in the obs layer instead.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ranycast/atlas/grouping.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/converge/plane.hpp"
#include "ranycast/core/expected.hpp"
#include "ranycast/guard/runtime.hpp"
#include "ranycast/guard/sweep.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/traffic/flows.hpp"
#include "ranycast/traffic/report.hpp"

namespace ranycast::chaos {

/// Impact measurement of one applied fault event.
struct StepReport {
  std::size_t index{0};
  std::string event;  ///< describe() of the applied event

  // --- reconvergence churn over all retained probes ---
  std::size_t probes{0};         ///< retained probes measured
  std::size_t routes_before{0};  ///< probes with a route before the event
  std::size_t routes_after{0};
  std::size_t moved{0};   ///< routed both sides, landed on a different site
  std::size_t lost{0};    ///< routed before, unreachable after
  std::size_t gained{0};  ///< unreachable before, routed after

  // --- service impact over the affected subset ---
  // For SiteWithdraw the affected subset is exactly the failed site's
  // catchment (resilience::fail_site semantics); for RegionWithdraw the
  // withdrawn region's clients; otherwise every probe whose catchment
  // moved or vanished.
  std::size_t affected_probes{0};
  std::size_t still_served{0};
  std::size_t failover_in_region{0};  ///< failover stayed in the same geo area
  std::size_t cross_region{0};        ///< served via another region's prefix
  double before_p50_ms{0.0}, before_p90_ms{0.0};
  double after_p50_ms{0.0}, after_p90_ms{0.0};

  // --- measurement-plane effects observed while probing this step ---
  std::size_t degraded_dns_answers{0};  ///< resolutions served the fallback
  std::size_t lost_pings{0};            ///< route existed but probing gave up

  /// Fraction of the routed-before population whose catchment changed.
  double churn() const noexcept {
    return routes_before == 0
               ? 0.0
               : static_cast<double>(moved + lost) / static_cast<double>(routes_before);
  }
  double survival_rate() const noexcept {
    return affected_probes == 0 ? 1.0
                                : static_cast<double>(still_served) /
                                      static_cast<double>(affected_probes);
  }
};

struct ChaosReport {
  std::string plan;
  std::string deployment;
  std::uint64_t seed{0};
  std::size_t probes{0};
  /// Partial-run accounting: a deadline-truncated run reports exactly how
  /// many of the planned events it measured instead of silently looking
  /// like a shorter plan. run() always completes (or fails), so there
  /// planned == completed; run_guarded() may stop early.
  std::size_t planned_steps{0};
  std::size_t completed_steps{0};
  bool truncated{false};
  std::vector<StepReport> steps;
  /// Transient convergence of every completed step, parallel to `steps`.
  /// Empty unless Engine::enable_transient was called before the run.
  std::vector<converge::StepTransient> transient;
  /// Traffic accounting of every completed step, parallel to `steps`.
  /// Empty unless Engine::enable_traffic was called before the run.
  std::vector<traffic::StepTraffic> traffic;
};

/// Outcome of a supervised run: the (possibly partial) report plus how the
/// sweep ended — whether it resumed, how far it got and why it stopped.
struct GuardedChaosRun {
  ChaosReport report;
  guard::SweepResult sweep;
};

/// Applies fault plans to one deployment of one laboratory. The engine
/// mutates lab state in place (that is the point); after run() returns the
/// faults of the plan remain applied unless the plan restored them.
class Engine {
 public:
  Engine(lab::Lab& laboratory, const lab::DeploymentHandle& handle);

  /// Record the transient convergence of every subsequent step: a
  /// converge::Plane is cold-started lazily before the first step and fed
  /// each step's origin deltas, filling ChaosReport::transient alongside
  /// ChaosReport::steps. The convergence config is folded into the guarded
  /// checkpoint fingerprint, so a transient run never resumes from (or into)
  /// a steady-only checkpoint.
  void enable_transient(const converge::Config& cfg);

  /// Record flow-level load for every subsequent step: each step solves the
  /// traffic model against the pre-fault and post-fault catchments, filling
  /// ChaosReport::traffic alongside ChaosReport::steps with per-site
  /// utilization, shed/dropped-flow and cascade-depth accounting. The
  /// traffic config is folded into the guarded checkpoint fingerprint, so a
  /// traffic run never resumes from (or into) a load-free checkpoint.
  void enable_traffic(const traffic::TrafficConfig& cfg);

  /// Route every subsequent re-solve through the incremental delta solver
  /// (bgp::DeltaSolver via Lab::resolve_delta): each fault is turned into a
  /// topology/origination delta and only the affected ASes re-decide.
  /// Purely an optimization — step reports, checkpoints and resume
  /// fingerprints are byte-identical with it on or off; per-step locality
  /// lands in the chaos.delta.* counters and journal fields.
  void enable_delta(const bgp::DeltaConfig& cfg);

  /// Accounting of the last applied step's delta re-solve; nullopt when the
  /// step did not reroute or the delta path is off.
  const std::optional<bgp::DeltaStats>& last_step_delta() const noexcept {
    return last_step_delta_;
  }

  /// Apply every event of the plan in order. Fails (without measuring
  /// further) on an unappliable event: unknown site/region/IXP/database
  /// index, a restore with no matching withdrawal, or an unknown adjacency.
  core::Expected<ChaosReport, std::string> run(const FaultPlan& plan);

  /// run() under a guard::Supervisor: the timeline stops cooperatively at
  /// step boundaries on cancel/deadline/stall (the report is then marked
  /// truncated with completed-vs-planned accounting), persists a
  /// checkpoint on the policy's cadence, and resumes from one by replaying
  /// the already-measured events (mutations only, no re-measurement — the
  /// measurements are pure in lab state) so a killed-and-resumed run's
  /// final report is byte-identical to an uninterrupted same-seed run.
  /// The checkpoint fingerprint binds config, seed, deployment and plan;
  /// resuming across any of those fails with FingerprintMismatch.
  core::Expected<GuardedChaosRun, std::string> run_guarded(
      const FaultPlan& plan, guard::Supervisor& supervisor,
      const guard::CheckpointPolicy& policy);

  /// Apply one fault event — mutation plus re-solve — WITHOUT measuring a
  /// step. This is the world-drift hook the serving plane (serve::Server)
  /// builds on: its refresher advances the world one event per snapshot
  /// build, and its resume path fast-forwards by re-applying the
  /// already-consumed prefix, exactly like run_guarded's own replay.
  /// Returns "" on success, else the error message.
  std::string apply_event(const FaultEvent& e) { return apply(e); }

 private:
  struct ProbeView;  // per-probe snapshot (answer, route, rtt)

  std::string apply(const FaultEvent& e);  ///< "" on success, else the error
  void snapshot(std::vector<ProbeView>& out) const;
  /// Build (or rebuild after a resume) the convergence plane from the lab's
  /// current state; no-op unless enable_transient was called.
  void ensure_plane();
  /// snapshot → apply → snapshot → reduce for one event; shared between
  /// run() and run_guarded(). When transient recording is on, also runs the
  /// convergence plane for the step and appends to *transient_out; when
  /// traffic is on, solves the load model around the fault and appends to
  /// *traffic_out.
  core::Expected<StepReport, std::string> execute_step(
      const FaultPlan& plan, std::size_t index, std::vector<ProbeView>& before,
      std::vector<ProbeView>& after, std::vector<converge::StepTransient>* transient_out,
      std::vector<traffic::StepTraffic>* traffic_out);
  /// The window's flows under the current surge scale (cached: regenerated
  /// only when a traffic_surge/_restore event changes the scale).
  const traffic::FlowSet& current_flows();
  /// Solve the traffic model against one measurement pass's catchment.
  /// Must run while the routes the views were snapshotted from are still
  /// live (route_for supplies the shed alternates).
  traffic::TrafficSolve solve_traffic(const std::vector<ProbeView>& views);

  lab::Lab& lab_;
  lab::DeploymentHandle* handle_;
  /// Undo state for restore events.
  std::unordered_map<std::uint16_t, std::vector<std::size_t>> withdrawn_sites_;
  std::unordered_map<std::size_t, std::vector<SiteId>> withdrawn_regions_;
  std::optional<converge::Config> transient_cfg_;
  std::unique_ptr<converge::Plane> plane_;
  std::optional<traffic::TrafficConfig> traffic_cfg_;
  /// Current arrival-rate multiplier (mutated by traffic_surge/_restore;
  /// restored on resume by the fast-forward replay like every other fault).
  double surge_scale_{1.0};
  std::vector<atlas::ProbeGroup> probe_groups_;  ///< built lazily, stable per run
  bool groups_built_{false};
  std::optional<std::pair<std::uint64_t, traffic::FlowSet>> flow_cache_;
  std::optional<bgp::DeltaStats> last_step_delta_;
};

}  // namespace ranycast::chaos
