// JSON scenario files for the chaos engine.
//
// A scenario is a FaultPlan on disk (see docs/resilience.md for the full
// schema):
//   {
//     "name": "cascade",
//     "events": [
//       {"type": "site_withdraw", "site": 3, "label": "drain busiest site"},
//       {"type": "site_link_flap", "site": 2, "attachment": 0},
//       {"type": "route_server_down", "ixp": 0},
//       {"type": "geodb_stale", "db": 0, "extra_wrong_country_prob": 0.3},
//       {"type": "measurement_degrade", "ping_loss_prob": 0.2,
//        "dns_timeout_prob": 0.05, "max_retries": 2, "backoff_base_ms": 50},
//       {"type": "site_restore", "site": 3}
//     ]
//   }
// "*_flap" event types expand at parse time into a down+up event pair, so
// the engine still produces one report per step. Loading never throws:
// malformed documents come back as io::ConfigError with the file, byte
// offset (syntax) or offending field (validation).
#pragma once

#include <string>
#include <string_view>

#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/core/expected.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/io/json.hpp"

namespace ranycast::chaos {

/// Bind a parsed JSON document into a FaultPlan. `file` is only used to
/// label errors.
core::Expected<FaultPlan, io::ConfigError> plan_from_json(const io::Json& json,
                                                          std::string_view file = {});

/// Read + parse + bind a scenario file.
core::Expected<FaultPlan, io::ConfigError> load_plan(const std::string& path);

/// Serialize a chaos report (stable key order; no wall-clock content, so
/// same seed + same plan dumps byte-identical documents).
io::Json report_to_json(const ChaosReport& report);

/// Read the scenario's optional "traffic" block (see traffic/config.hpp for
/// the schema): nullopt when the scenario declares none, a validated config
/// when it does, an error if the block is malformed.
core::Expected<std::optional<traffic::TrafficConfig>, io::ConfigError> traffic_from_scenario(
    const io::Json& json, std::string_view file = {});

}  // namespace ranycast::chaos
