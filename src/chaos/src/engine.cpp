#include "ranycast/chaos/engine.hpp"

#include <bit>
#include <cmath>

#include "ranycast/analysis/stats.hpp"
#include "ranycast/core/crc32.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/span.hpp"
#include "ranycast/traffic/solver.hpp"

namespace ranycast::chaos {

namespace {

obs::MetricsRegistry& metrics() { return obs::MetricsRegistry::global(); }

// --- checkpoint payload (under the guard envelope) -------------------------
// u64 step count, then each StepReport field-by-field in declaration order.
// Doubles travel as raw IEEE-754 bits (ByteWriter::f64), so a loaded report
// is bit-for-bit the one that was saved — the property the byte-identical
// resume guarantee rests on.

void write_step(guard::ByteWriter& w, const StepReport& s) {
  w.u64(s.index);
  w.str(s.event);
  w.u64(s.probes);
  w.u64(s.routes_before);
  w.u64(s.routes_after);
  w.u64(s.moved);
  w.u64(s.lost);
  w.u64(s.gained);
  w.u64(s.affected_probes);
  w.u64(s.still_served);
  w.u64(s.failover_in_region);
  w.u64(s.cross_region);
  w.f64(s.before_p50_ms);
  w.f64(s.before_p90_ms);
  w.f64(s.after_p50_ms);
  w.f64(s.after_p90_ms);
  w.u64(s.degraded_dns_answers);
  w.u64(s.lost_pings);
}

void write_region_transient(guard::ByteWriter& w, const converge::RegionTransient& t) {
  w.u64(t.events);
  w.u64(t.updates_sent);
  w.u64(t.withdrawals_sent);
  w.u64(t.rib_changes);
  w.u64(t.converged_us);
  w.u64(t.last_event_us);
  w.u64(t.transient_loops);
  w.u64(t.suppressed);
  w.u64(t.site_flips);
  w.u64(t.nodes_changed);
  w.u64(t.nodes_blackholed);
  w.u64(t.nodes_dark_at_end);
  w.u64(t.max_blackhole_us);
  w.u8(t.oscillating ? 1 : 0);
  w.u8(t.matches_steady ? 1 : 0);
  w.u64(t.mismatches);
}

void write_transient(guard::ByteWriter& w, const converge::StepTransient& s) {
  w.u64(s.index);
  w.str(s.event);
  w.u64(s.regions.size());
  for (const converge::RegionTransient& t : s.regions) write_region_transient(w, t);
  w.u64(s.probes);
  w.u64(s.probes_blackholed);
  w.u64(s.probes_looped);
  w.u64(s.probes_flipped);
  w.u64(s.probes_dark_at_end);
  w.f64(s.reconverge_p50_ms);
  w.f64(s.reconverge_p90_ms);
  w.f64(s.reconverge_max_ms);
  w.f64(s.blackhole_p50_ms);
  w.f64(s.blackhole_p90_ms);
  w.f64(s.blackhole_max_ms);
  w.u8(s.matches_steady ? 1 : 0);
  w.u8(s.oscillating ? 1 : 0);
}

void write_site_load(guard::ByteWriter& w, const traffic::SiteLoad& s) {
  w.f64(s.capacity_mbps);
  w.f64(s.offered_mbps);
  w.f64(s.served_mbps);
  w.f64(s.shed_out_mbps);
  w.f64(s.dropped_mbps);
  w.f64(s.utilization);
  w.f64(s.queue_delay_ms);
  w.u64(s.flows_offered);
  w.u64(s.flows_served);
  w.u64(s.flows_shed_out);
  w.u64(s.flows_shed_in);
  w.u64(s.flows_dropped);
  w.u8(s.overloaded ? 1 : 0);
}

void write_traffic(guard::ByteWriter& w, const traffic::StepTraffic& t) {
  w.u64(t.index);
  w.str(t.event);
  w.u64(t.solve.sites.size());
  for (const traffic::SiteLoad& s : t.solve.sites) write_site_load(w, s);
  w.f64(t.solve.offered_mbps);
  w.f64(t.solve.served_mbps);
  w.f64(t.solve.shed_mbps);
  w.f64(t.solve.dropped_mbps);
  w.u64(t.solve.flows_offered);
  w.u64(t.solve.flows_served);
  w.u64(t.solve.flows_shed);
  w.u64(t.solve.flows_dropped);
  w.u64(t.solve.flows_unrouted);
  w.f64(t.solve.unrouted_mbps);
  w.u64(t.solve.overloaded_sites);
  w.u64(t.solve.cascade_depth);
  w.f64(t.solve.max_utilization);
  w.f64(t.solve.mean_utilization);
  w.f64(t.solve.queue_delay_p50_ms);
  w.f64(t.solve.queue_delay_p90_ms);
  w.f64(t.solve.queue_delay_max_ms);
  w.f64(t.before_max_utilization);
  w.f64(t.before_mean_utilization);
  w.u64(t.tipped_sites);
  w.u64(t.cascade_depth);
  w.f64(t.inflated_p50_ms);
  w.f64(t.inflated_p90_ms);
}

StepReport read_step(guard::ByteReader& r) {
  StepReport s;
  s.index = r.u64();
  s.event = r.str();
  s.probes = r.u64();
  s.routes_before = r.u64();
  s.routes_after = r.u64();
  s.moved = r.u64();
  s.lost = r.u64();
  s.gained = r.u64();
  s.affected_probes = r.u64();
  s.still_served = r.u64();
  s.failover_in_region = r.u64();
  s.cross_region = r.u64();
  s.before_p50_ms = r.f64();
  s.before_p90_ms = r.f64();
  s.after_p50_ms = r.f64();
  s.after_p90_ms = r.f64();
  s.degraded_dns_answers = r.u64();
  s.lost_pings = r.u64();
  return s;
}

traffic::SiteLoad read_site_load(guard::ByteReader& r) {
  traffic::SiteLoad s;
  s.capacity_mbps = r.f64();
  s.offered_mbps = r.f64();
  s.served_mbps = r.f64();
  s.shed_out_mbps = r.f64();
  s.dropped_mbps = r.f64();
  s.utilization = r.f64();
  s.queue_delay_ms = r.f64();
  s.flows_offered = r.u64();
  s.flows_served = r.u64();
  s.flows_shed_out = r.u64();
  s.flows_shed_in = r.u64();
  s.flows_dropped = r.u64();
  s.overloaded = r.u8() != 0;
  return s;
}

traffic::StepTraffic read_traffic(guard::ByteReader& r) {
  traffic::StepTraffic t;
  t.index = r.u64();
  t.event = r.str();
  const std::uint64_t sites = r.u64();
  if (!r.ok()) return t;
  t.solve.sites.reserve(sites);
  for (std::uint64_t i = 0; i < sites && r.ok(); ++i) {
    t.solve.sites.push_back(read_site_load(r));
  }
  t.solve.offered_mbps = r.f64();
  t.solve.served_mbps = r.f64();
  t.solve.shed_mbps = r.f64();
  t.solve.dropped_mbps = r.f64();
  t.solve.flows_offered = r.u64();
  t.solve.flows_served = r.u64();
  t.solve.flows_shed = r.u64();
  t.solve.flows_dropped = r.u64();
  t.solve.flows_unrouted = r.u64();
  t.solve.unrouted_mbps = r.f64();
  t.solve.overloaded_sites = r.u64();
  t.solve.cascade_depth = r.u64();
  t.solve.max_utilization = r.f64();
  t.solve.mean_utilization = r.f64();
  t.solve.queue_delay_p50_ms = r.f64();
  t.solve.queue_delay_p90_ms = r.f64();
  t.solve.queue_delay_max_ms = r.f64();
  t.before_max_utilization = r.f64();
  t.before_mean_utilization = r.f64();
  t.tipped_sites = r.u64();
  t.cascade_depth = r.u64();
  t.inflated_p50_ms = r.f64();
  t.inflated_p90_ms = r.f64();
  return t;
}

converge::RegionTransient read_region_transient(guard::ByteReader& r) {
  converge::RegionTransient t;
  t.events = r.u64();
  t.updates_sent = r.u64();
  t.withdrawals_sent = r.u64();
  t.rib_changes = r.u64();
  t.converged_us = r.u64();
  t.last_event_us = r.u64();
  t.transient_loops = r.u64();
  t.suppressed = r.u64();
  t.site_flips = r.u64();
  t.nodes_changed = r.u64();
  t.nodes_blackholed = r.u64();
  t.nodes_dark_at_end = r.u64();
  t.max_blackhole_us = r.u64();
  t.oscillating = r.u8() != 0;
  t.matches_steady = r.u8() != 0;
  t.mismatches = r.u64();
  return t;
}

converge::StepTransient read_transient(guard::ByteReader& r) {
  converge::StepTransient s;
  s.index = r.u64();
  s.event = r.str();
  const std::uint64_t regions = r.u64();
  if (!r.ok()) return s;
  s.regions.reserve(regions);
  for (std::uint64_t i = 0; i < regions && r.ok(); ++i) {
    s.regions.push_back(read_region_transient(r));
  }
  s.probes = r.u64();
  s.probes_blackholed = r.u64();
  s.probes_looped = r.u64();
  s.probes_flipped = r.u64();
  s.probes_dark_at_end = r.u64();
  s.reconverge_p50_ms = r.f64();
  s.reconverge_p90_ms = r.f64();
  s.reconverge_max_ms = r.f64();
  s.blackhole_p50_ms = r.f64();
  s.blackhole_p90_ms = r.f64();
  s.blackhole_max_ms = r.f64();
  s.matches_steady = r.u8() != 0;
  s.oscillating = r.u8() != 0;
  return s;
}

/// Binds a checkpoint to (config, seed, deployment, plan): resuming after
/// changing any of them is a different experiment and must be refused.
std::uint64_t run_fingerprint(const lab::Lab& laboratory, const cdn::Deployment& dep,
                              const FaultPlan& plan) {
  std::uint64_t h = io::config_fingerprint(laboratory.config());
  h = hash_combine(h, core::crc32(dep.name().data(), dep.name().size()));
  h = hash_combine(h, core::crc32(plan.name.data(), plan.name.size()));
  for (const FaultEvent& e : plan.events) {
    const std::string d = describe(e);
    h = hash_combine(h, core::crc32(d.data(), d.size()));
  }
  return h;
}

/// Thrown out of the sweep's process hook on an unappliable event; caught
/// in run_guarded and converted back into the Expected error channel.
struct StepFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One journal line per *measured* step. Resumed runs replay already-measured
/// events without re-measuring, so replayed steps are never re-emitted — a
/// journal's chaos_step events after dedup by index are exactly the report's
/// steps (a mid-step kill can leave one duplicate index before the resume
/// marker; consumers keep the last occurrence).
void journal_step(const StepReport& s, std::uint64_t dur_ns,
                  const std::optional<bgp::DeltaStats>& delta) {
  if (obs::journal() == nullptr) return;
  using F = obs::JournalField;
  std::vector<F> fields{
      F::u64_field("index", s.index), F::str("event", s.event),
      F::u64_field("probes", s.probes), F::u64_field("routes_before", s.routes_before),
      F::u64_field("routes_after", s.routes_after), F::u64_field("moved", s.moved),
      F::u64_field("lost", s.lost), F::u64_field("gained", s.gained),
      F::u64_field("affected_probes", s.affected_probes),
      F::u64_field("still_served", s.still_served),
      F::u64_field("failover_in_region", s.failover_in_region),
      F::u64_field("cross_region", s.cross_region),
      F::f64_field("before_p50_ms", s.before_p50_ms),
      F::f64_field("before_p90_ms", s.before_p90_ms),
      F::f64_field("after_p50_ms", s.after_p50_ms),
      F::f64_field("after_p90_ms", s.after_p90_ms),
      F::u64_field("degraded_dns_answers", s.degraded_dns_answers),
      F::u64_field("lost_pings", s.lost_pings), F::u64_field("dur_ns", dur_ns)};
  // Delta-locality accounting, present only on steps re-solved through the
  // incremental path (the report format itself is delta-independent).
  if (delta) {
    fields.push_back(F::u64_field("delta_affected_ases", delta->affected_ases));
    fields.push_back(F::u64_field("delta_fallback_full", delta->full_regions));
    fields.push_back(F::u64_field("delta_regions", delta->delta_regions));
  }
  obs::journal_event("chaos_step", fields);
}

/// One journal line per measured step when traffic is on, right after the
/// step's chaos_step line (same dedup-by-index contract on resume).
void journal_traffic(const traffic::StepTraffic& t) {
  if (obs::journal() == nullptr) return;
  using F = obs::JournalField;
  obs::journal_event(
      "traffic_step",
      {F::u64_field("index", t.index), F::str("event", t.event),
       F::f64_field("offered_mbps", t.solve.offered_mbps),
       F::f64_field("served_mbps", t.solve.served_mbps),
       F::f64_field("shed_mbps", t.solve.shed_mbps),
       F::f64_field("dropped_mbps", t.solve.dropped_mbps),
       F::u64_field("flows_offered", t.solve.flows_offered),
       F::u64_field("flows_shed", t.solve.flows_shed),
       F::u64_field("flows_dropped", t.solve.flows_dropped),
       F::u64_field("flows_unrouted", t.solve.flows_unrouted),
       F::u64_field("overloaded_sites", t.solve.overloaded_sites),
       F::u64_field("tipped_sites", t.tipped_sites),
       F::u64_field("cascade_depth", t.cascade_depth),
       F::f64_field("max_utilization", t.solve.max_utilization),
       F::f64_field("mean_utilization", t.solve.mean_utilization),
       F::f64_field("queue_delay_p90_ms", t.solve.queue_delay_p90_ms),
       F::f64_field("inflated_p50_ms", t.inflated_p50_ms),
       F::f64_field("inflated_p90_ms", t.inflated_p90_ms)});
}

}  // namespace

/// What one probe saw during a measurement pass. Routes are captured by
/// value (origin site), never by pointer: a re-solve frees the routes of
/// the previous pass.
struct Engine::ProbeView {
  const atlas::Probe* probe{nullptr};
  lab::Lab::DnsAnswer answer{};
  bool routed{false};
  SiteId site{kInvalidSite};
  std::optional<Rtt> rtt{};
};

Engine::Engine(lab::Lab& laboratory, const lab::DeploymentHandle& handle)
    : lab_(laboratory), handle_(laboratory.handle_mut(handle)) {}

void Engine::enable_transient(const converge::Config& cfg) {
  transient_cfg_ = cfg;
  plane_.reset();
}

void Engine::enable_traffic(const traffic::TrafficConfig& cfg) {
  traffic_cfg_ = cfg;
  flow_cache_.reset();
  groups_built_ = false;
}

void Engine::enable_delta(const bgp::DeltaConfig& cfg) {
  lab_.set_delta_config(cfg);
  last_step_delta_.reset();
}

const traffic::FlowSet& Engine::current_flows() {
  if (!groups_built_) {
    probe_groups_ = atlas::group_probes(lab_.census().retained());
    groups_built_ = true;
  }
  // Demand only changes when a traffic_surge/_restore event moves the scale;
  // key the cache on the exact bits so equal scales never regenerate.
  const std::uint64_t key = std::bit_cast<std::uint64_t>(surge_scale_);
  if (!flow_cache_ || flow_cache_->first != key) {
    flow_cache_.emplace(key, traffic::generate_flows(probe_groups_, lab_.census().retained(),
                                                     *traffic_cfg_, surge_scale_));
  }
  return flow_cache_->second;
}

traffic::TrafficSolve Engine::solve_traffic(const std::vector<ProbeView>& views) {
  const traffic::FlowSet& flows = current_flows();
  const auto& dep = handle_->deployment;
  const std::size_t regions = dep.regions().size();
  const bool shed = traffic_cfg_->policy == traffic::OverloadPolicy::Shed;
  // Per-probe assignment is pure in (view, live routes): disjoint slots, so
  // the fan-out is worker-count independent like every other snapshot pass.
  std::vector<traffic::ProbeAssign> assign(views.size());
  exec::ThreadPool::global().parallel_for(views.size(), [&](std::size_t i) {
    const ProbeView& v = views[i];
    if (!v.routed) return;
    traffic::ProbeAssign pa;
    pa.site = v.site;
    if (shed) {
      // DNS can steer this client to any other regional prefix it still has
      // a route to; the shed targets are those prefixes' catchment sites
      // (region order — deterministic).
      for (std::size_t r2 = 0; r2 < regions; ++r2) {
        if (r2 == v.answer.region) continue;
        const bgp::Route* route = handle_->route_for(v.probe->asn, r2);
        if (route == nullptr || route->origin_site == v.site) continue;
        bool dup = false;
        for (SiteId existing : pa.alternates) dup = dup || existing == route->origin_site;
        if (!dup) pa.alternates.push_back(route->origin_site);
      }
    }
    assign[i] = std::move(pa);
  });
  return traffic::solve(flows, assign, dep.sites().size(), *traffic_cfg_);
}

void Engine::ensure_plane() {
  if (!transient_cfg_ || plane_ != nullptr || handle_ == nullptr) return;
  // Cold-start on whatever the lab looks like right now — before the first
  // step of a fresh run, or after a resume's fast-forward replay. Either
  // way the plane quiesces onto the unique stable state of the current
  // topology, so the transients of the remaining steps are byte-identical
  // to an uninterrupted run's.
  plane_ = std::make_unique<converge::Plane>(lab_, *handle_, *transient_cfg_);
  plane_->rebuild();
}

void Engine::snapshot(std::vector<ProbeView>& out) const {
  const auto retained = lab_.census().retained();
  out.clear();
  out.resize(retained.size());
  // Each probe's view is pure in (probe, deployment state), so the fan-out
  // writes disjoint slots and the snapshot is identical for any worker count.
  exec::ThreadPool::global().parallel_for(retained.size(), [&](std::size_t i) {
    const atlas::Probe* p = retained[i];
    ProbeView view;
    view.probe = p;
    view.answer = lab_.dns_lookup(*p, *handle_, dns::QueryMode::Ldns);
    const bgp::Route* route = handle_->route_for(p->asn, view.answer.region);
    if (route != nullptr) {
      view.routed = true;
      view.site = route->origin_site;
      view.rtt = lab_.ping(*p, view.answer.address);
    }
    out[i] = std::move(view);
  });
}

std::string Engine::apply(const FaultEvent& e) {
  cdn::Deployment& dep = handle_->deployment;
  const auto sites = handle_->deployment.sites().size();
  const auto regions = handle_->deployment.regions().size();
  bool reroute = true;  // most faults change routing; geo-DB/measurement don't
  last_step_delta_.reset();
  // Incremental path: describe the mutation to the solver instead of only
  // performing it. Origin sets are captured around the switch (works for
  // every fault kind uniformly); link-state faults also record the toggled
  // adjacencies.
  const bool delta_on = lab_.delta_config().enabled;
  bgp::SolveDelta delta;
  std::vector<std::vector<bgp::OriginAttachment>> origins_before;
  if (delta_on) origins_before = converge::origins_by_region(dep);
  switch (e.kind) {
    case FaultKind::SiteWithdraw: {
      if (value(e.site) >= sites) return "unknown site " + std::to_string(value(e.site));
      if (withdrawn_sites_.count(value(e.site)) != 0) {
        return "site " + std::to_string(value(e.site)) + " is already withdrawn";
      }
      withdrawn_sites_[value(e.site)] = dep.withdraw_site(e.site);
      break;
    }
    case FaultKind::SiteRestore: {
      const auto it = withdrawn_sites_.find(value(e.site));
      if (it == withdrawn_sites_.end()) {
        return "site " + std::to_string(value(e.site)) + " was not withdrawn";
      }
      dep.restore_site(e.site, std::move(it->second));
      withdrawn_sites_.erase(it);
      break;
    }
    case FaultKind::SiteLinkDown:
    case FaultKind::SiteLinkUp: {
      if (value(e.site) >= sites) return "unknown site " + std::to_string(value(e.site));
      if (!dep.set_attachment_state(e.site, e.attachment, e.kind == FaultKind::SiteLinkUp)) {
        return "site " + std::to_string(value(e.site)) + " has no attachment " +
               std::to_string(e.attachment);
      }
      break;
    }
    case FaultKind::LinkDown:
    case FaultKind::LinkUp: {
      const bool up = e.kind == FaultKind::LinkUp;
      if (!lab_.graph_mut().set_link_state(e.a, e.b, up)) {
        return "no adjacency between AS" + std::to_string(value(e.a)) + " and AS" +
               std::to_string(value(e.b));
      }
      if (delta_on) delta.links.push_back(bgp::LinkDelta{e.a, e.b, up});
      break;
    }
    case FaultKind::RouteServerDown:
    case FaultKind::RouteServerUp: {
      if (e.ixp >= lab_.world().graph.ixps().size()) {
        return "unknown IXP " + std::to_string(e.ixp);
      }
      const bool up = e.kind == FaultKind::RouteServerUp;
      lab_.graph_mut().set_route_server_state(e.ixp, up);
      if (delta_on) {
        for (const auto& [a, b] : lab_.world().graph.route_server_peerings(e.ixp)) {
          delta.links.push_back(bgp::LinkDelta{a, b, up});
        }
      }
      break;
    }
    case FaultKind::RegionWithdraw: {
      if (e.region >= regions) return "unknown region " + std::to_string(e.region);
      if (withdrawn_regions_.count(e.region) != 0) {
        return "region " + std::to_string(e.region) + " is already withdrawn";
      }
      withdrawn_regions_[e.region] = dep.withdraw_region(e.region);
      break;
    }
    case FaultKind::RegionRestore: {
      const auto it = withdrawn_regions_.find(e.region);
      if (it == withdrawn_regions_.end()) {
        return "region " + std::to_string(e.region) + " was not withdrawn";
      }
      dep.restore_region(e.region, it->second);
      withdrawn_regions_.erase(it);
      break;
    }
    case FaultKind::GeoDbStale: {
      if (e.db >= 3) return "unknown geolocation database " + std::to_string(e.db);
      if (e.magnitude < 0.0 || e.magnitude > 1.0) {
        return "geodb_stale magnitude must be a probability in [0,1]";
      }
      auto fault = lab_.db_mut(e.db).fault();
      fault.extra_wrong_country_prob = e.magnitude;
      lab_.db_mut(e.db).set_fault(fault);
      reroute = false;
      break;
    }
    case FaultKind::GeoDbOutage: {
      if (e.db >= 3) return "unknown geolocation database " + std::to_string(e.db);
      auto fault = lab_.db_mut(e.db).fault();
      fault.outage = true;
      lab_.db_mut(e.db).set_fault(fault);
      reroute = false;
      break;
    }
    case FaultKind::GeoDbRestore: {
      if (e.db >= 3) return "unknown geolocation database " + std::to_string(e.db);
      lab_.db_mut(e.db).clear_fault();
      reroute = false;
      break;
    }
    case FaultKind::MeasurementDegrade: {
      const auto& f = e.faults;
      if (f.ping_loss_prob < 0.0 || f.ping_loss_prob > 1.0 || f.dns_timeout_prob < 0.0 ||
          f.dns_timeout_prob > 1.0) {
        return "measurement fault probabilities must be in [0,1]";
      }
      if (f.max_retries < 0) return "max_retries must be non-negative";
      lab_.set_measurement_faults(f);
      reroute = false;
      break;
    }
    case FaultKind::MeasurementRestore:
      lab_.set_measurement_faults(std::nullopt);
      reroute = false;
      break;
    case FaultKind::TrafficSurge:
      // Appliable with or without the traffic plane (so resume fast-forward
      // replays it unconditionally); without the plane it is a routing no-op.
      if (!std::isfinite(e.magnitude) || e.magnitude <= 0.0) {
        return "traffic_surge scale must be positive and finite";
      }
      surge_scale_ = e.magnitude;
      reroute = false;
      break;
    case FaultKind::TrafficRestore:
      surge_scale_ = 1.0;
      reroute = false;
      break;
  }
  if (reroute) {
    if (delta_on) {
      const auto origins_after = converge::origins_by_region(dep);
      delta.origins.resize(origins_after.size());
      for (std::size_t r = 0; r < origins_after.size(); ++r) {
        delta.origins[r] = bgp::diff_origin_changes(origins_before[r], origins_after[r]);
      }
      const bgp::DeltaStats stats = lab_.resolve_delta(*handle_, delta);
      last_step_delta_ = stats;
      if (obs::enabled()) {
        auto& reg = metrics();
        reg.counter("chaos.delta.steps").add(1);
        reg.counter("chaos.delta.affected_ases").add(stats.affected_ases);
        reg.counter("chaos.delta.fallback_full").add(stats.full_regions);
        reg.histogram("chaos.delta.affected_ases")
            .record(static_cast<double>(stats.affected_ases));
      }
    } else {
      lab_.resolve(*handle_);
    }
  }
  return "";
}

core::Expected<StepReport, std::string> Engine::execute_step(
    const FaultPlan& plan, std::size_t index, std::vector<ProbeView>& before,
    std::vector<ProbeView>& after, std::vector<converge::StepTransient>* transient_out,
    std::vector<traffic::StepTraffic>* traffic_out) {
  static obs::Counter& steps_counter = metrics().counter("chaos.steps");
  static obs::Histogram& step_us = metrics().histogram("chaos.step.total_us");
  const FaultEvent& event = plan.events[index];
  obs::Span span("chaos.step");
  obs::ScopedTimer timer(step_us);
  steps_counter.add();
  const std::uint64_t step_start_ns = obs::trace_now_ns();

  const auto& gaz = geo::Gazetteer::world();
  const auto& dep = handle_->deployment;

  const bool transient = transient_cfg_.has_value() && transient_out != nullptr;
  std::vector<std::vector<bgp::OriginAttachment>> origins_before;
  if (transient) {
    ensure_plane();  // baseline must quiesce on the pre-fault state
    origins_before = converge::origins_by_region(dep);
  }

  snapshot(before);
  const bool traffic_on = traffic_cfg_.has_value() && traffic_out != nullptr;
  traffic::TrafficSolve before_solve;
  if (traffic_on) {
    // Solved pre-apply: the shed alternates come from route_for, which the
    // fault's re-solve is about to invalidate.
    before_solve = solve_traffic(before);
  }
  if (const std::string err = apply(event); !err.empty()) {
    return core::unexpected("step " + std::to_string(index) + " (" + describe(event) +
                            "): " + err);
  }
  snapshot(after);

  StepReport step;
  step.index = index;
  step.event = describe(event);
  step.probes = before.size();

  std::vector<double> before_ms, after_ms;
  for (std::size_t p = 0; p < before.size(); ++p) {
    const ProbeView& b = before[p];
    const ProbeView& a = after[p];
    if (b.routed) ++step.routes_before;
    if (a.routed) ++step.routes_after;
    if (a.answer.degraded) ++step.degraded_dns_answers;
    if (a.routed && !a.rtt) ++step.lost_pings;
    const bool moved = b.routed && a.routed && b.site != a.site;
    const bool lost = b.routed && !a.routed;
    if (moved) ++step.moved;
    if (lost) ++step.lost;
    if (!b.routed && a.routed) ++step.gained;

    // The affected subset: the failed element's own clients for the
    // withdrawal kinds (resilience::fail_site semantics), otherwise any
    // probe whose catchment changed.
    bool affected = false;
    switch (event.kind) {
      case FaultKind::SiteWithdraw:
        affected = b.routed && b.site == event.site;
        break;
      case FaultKind::RegionWithdraw:
        affected = b.routed && b.answer.region == event.region;
        break;
      default:
        affected = moved || lost;
        break;
    }
    if (!affected) continue;
    ++step.affected_probes;
    if (b.rtt) before_ms.push_back(b.rtt->ms);

    if (!a.routed) {
      // The answered region is unreachable. The service survives if some
      // other region's prefix — globally announced — still has a route
      // (§4.5); the client lands cross-region on the nearest one.
      std::optional<Rtt> best;
      for (std::size_t r2 = 0; r2 < dep.regions().size(); ++r2) {
        if (r2 == a.answer.region) continue;
        if (handle_->route_for(b.probe->asn, r2) == nullptr) continue;
        const auto rtt = lab_.ping(*b.probe, dep.regions()[r2].service_ip);
        if (rtt && (!best || *rtt < *best)) best = rtt;
      }
      if (!best) continue;  // truly unreachable
      ++step.still_served;
      ++step.cross_region;
      after_ms.push_back(best->ms);
      continue;
    }
    ++step.still_served;
    if (a.rtt) after_ms.push_back(a.rtt->ms);
    const cdn::Site& landed = dep.site(a.site);
    if (landed.announces(a.answer.region) && b.site != kInvalidSite) {
      if (gaz.area_of_city(landed.city) == gaz.area_of_city(dep.site(b.site).city)) {
        ++step.failover_in_region;
      }
    }
  }
  step.before_p50_ms = analysis::percentile(before_ms, 50);
  step.before_p90_ms = analysis::percentile(before_ms, 90);
  step.after_p50_ms = analysis::percentile(after_ms, 50);
  step.after_p90_ms = analysis::percentile(after_ms, 90);

  if (transient) {
    const auto deltas = converge::diff_origins(origins_before, converge::origins_by_region(dep));
    // Probes enter the transient rollup from the pre-fault view: the AS they
    // measure from and the regional prefix they were being served from when
    // the fault hit — that prefix's convergence is their outage.
    std::vector<converge::ProbeRef> refs;
    refs.reserve(before.size());
    for (const ProbeView& b : before) {
      refs.push_back(converge::ProbeRef{b.probe->asn, b.answer.region});
    }
    transient_out->push_back(plane_->step(index, describe(event), deltas, refs));
  }

  if (traffic_on) {
    static obs::Gauge& util_max = metrics().gauge("traffic.max_utilization");
    static obs::Gauge& util_mean = metrics().gauge("traffic.mean_utilization");
    static obs::Counter& shed_flows = metrics().counter("traffic.flows_shed");
    static obs::Counter& dropped_flows = metrics().counter("traffic.flows_dropped");
    static obs::Histogram& delay_hist = metrics().histogram("traffic.queue_delay_ms");
    traffic::StepTraffic t;
    t.index = index;
    t.event = describe(event);
    t.solve = solve_traffic(after);
    t.before_max_utilization = before_solve.max_utilization;
    t.before_mean_utilization = before_solve.mean_utilization;
    const double threshold = traffic_cfg_->admission_threshold;
    const std::size_t site_count =
        std::min(before_solve.sites.size(), t.solve.sites.size());
    for (std::size_t s = 0; s < site_count; ++s) {
      const traffic::SiteLoad& b = before_solve.sites[s];
      const traffic::SiteLoad& a = t.solve.sites[s];
      if (a.capacity_mbps > 0.0 && b.utilization <= threshold && a.utilization > threshold) {
        ++t.tipped_sites;
      }
    }
    // Depth 0: absorbed. 1: the fault itself tipped sites. >1: shedding off
    // the tipped sites overloaded further neighbors in turn.
    t.cascade_depth = (t.tipped_sites > 0 ? 1 : 0) + t.solve.cascade_depth;
    std::vector<double> inflated;
    inflated.reserve(after.size());
    for (const ProbeView& a : after) {
      if (!a.routed || !a.rtt) continue;
      const std::size_t s = value(a.site);
      const double wait =
          s < t.solve.sites.size() ? t.solve.sites[s].queue_delay_ms : 0.0;
      inflated.push_back(a.rtt->ms + wait);
      delay_hist.record(wait);
    }
    t.inflated_p50_ms = analysis::percentile(inflated, 50);
    t.inflated_p90_ms = analysis::percentile(inflated, 90);
    util_max.set(t.solve.max_utilization);
    util_mean.set(t.solve.mean_utilization);
    shed_flows.add(t.solve.flows_shed);
    dropped_flows.add(t.solve.flows_dropped);
    traffic_out->push_back(std::move(t));
  }
  journal_step(step, obs::trace_now_ns() - step_start_ns, last_step_delta_);
  if (traffic_on) journal_traffic(traffic_out->back());
  return step;
}

core::Expected<ChaosReport, std::string> Engine::run(const FaultPlan& plan) {
  if (handle_ == nullptr) {
    return core::unexpected(std::string("deployment handle is not registered in this lab"));
  }
  obs::Span run_span("chaos.run");
  static obs::Counter& plans = metrics().counter("chaos.plans");
  plans.add();

  ChaosReport report;
  report.plan = plan.name;
  report.deployment = handle_->deployment.name();
  report.seed = lab_.config().seed;
  report.probes = lab_.census().retained().size();
  report.planned_steps = plan.events.size();

  std::vector<ProbeView> before, after;
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    auto step = execute_step(plan, i, before, after, &report.transient, &report.traffic);
    if (!step) return core::unexpected(std::move(step).error());
    report.steps.push_back(std::move(*step));
    report.completed_steps = i + 1;
  }
  return report;
}

core::Expected<GuardedChaosRun, std::string> Engine::run_guarded(
    const FaultPlan& plan, guard::Supervisor& supervisor,
    const guard::CheckpointPolicy& policy) {
  if (handle_ == nullptr) {
    return core::unexpected(std::string("deployment handle is not registered in this lab"));
  }
  obs::Span run_span("chaos.run_guarded");
  static obs::Counter& plans = metrics().counter("chaos.plans");
  plans.add();

  GuardedChaosRun out;
  ChaosReport& report = out.report;
  report.plan = plan.name;
  report.deployment = handle_->deployment.name();
  report.seed = lab_.config().seed;
  report.probes = lab_.census().retained().size();
  report.planned_steps = plan.events.size();

  std::uint64_t fingerprint = run_fingerprint(lab_, handle_->deployment, plan);
  // A transient run's checkpoints are a different experiment from a
  // steady-only run's (and from a transient run under other timers).
  if (transient_cfg_) {
    fingerprint = hash_combine(fingerprint, converge::fingerprint(*transient_cfg_));
  }
  // Same for traffic: demand, capacities and policy are part of the
  // experiment's identity.
  if (traffic_cfg_) {
    fingerprint = hash_combine(fingerprint, traffic::fingerprint(*traffic_cfg_));
  }

  std::vector<ProbeView> before, after;
  guard::SweepHooks hooks;
  hooks.process = [&](std::size_t i) {
    auto step = execute_step(plan, i, before, after, &report.transient, &report.traffic);
    if (!step) throw StepFailure(std::move(step).error());
    report.steps.push_back(std::move(*step));
  };
  hooks.save = [&](guard::ByteWriter& w) {
    w.u64(report.steps.size());
    for (const StepReport& s : report.steps) write_step(w, s);
    if (transient_cfg_) {
      w.u64(report.transient.size());
      for (const converge::StepTransient& t : report.transient) write_transient(w, t);
    }
    if (traffic_cfg_) {
      w.u64(report.traffic.size());
      for (const traffic::StepTraffic& t : report.traffic) write_traffic(w, t);
    }
  };
  hooks.load = [&](guard::ByteReader& r) {
    const std::uint64_t count = r.u64();
    if (!r.ok() || count > plan.events.size()) return false;
    report.steps.clear();
    report.steps.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) report.steps.push_back(read_step(r));
    if (!r.ok()) return false;
    if (transient_cfg_) {
      const std::uint64_t tcount = r.u64();
      if (!r.ok() || tcount != count) return false;
      report.transient.clear();
      report.transient.reserve(tcount);
      for (std::uint64_t i = 0; i < tcount; ++i) report.transient.push_back(read_transient(r));
      // An oscillation-truncated step leaves the convergence plane in a
      // mid-flight state that the *next* step repairs with an in-step
      // re-flood. A resumed plane cold-starts onto the stable state instead
      // and would not replay those repair events, so a history containing an
      // oscillation cannot be resumed byte-identically — reject it.
      for (const converge::StepTransient& t : report.transient) {
        if (t.oscillating) return false;
      }
    }
    if (traffic_cfg_) {
      const std::uint64_t tcount = r.u64();
      if (!r.ok() || tcount != count) return false;
      report.traffic.clear();
      report.traffic.reserve(tcount);
      for (std::uint64_t i = 0; i < tcount; ++i) report.traffic.push_back(read_traffic(r));
      // The surge scale and flow cache are rebuilt by the fast-forward
      // replay below (traffic_surge events are appliable mutations like any
      // other fault), so no traffic-plane state travels outside the steps.
      flow_cache_.reset();
    }
    if (!r.ok() || !r.at_end()) return false;
    // The plane (if any) must cold-start after the replay below, on the
    // checkpoint's topology, not before it.
    plane_.reset();
    // Fast-forward: re-apply the already-measured events so the lab reaches
    // the exact state the checkpoint was taken in. No re-measurement — the
    // measurement passes read lab state but never change it, so mutations
    // alone (with the original tie-break salts inside resolve()) are enough.
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!apply(plan.events[i]).empty()) return false;
    }
    return true;
  };

  try {
    auto swept = guard::run_sweep(plan.events.size(), fingerprint, supervisor, policy, hooks);
    if (!swept) return core::unexpected(swept.error().to_string());
    out.sweep = *swept;
  } catch (const StepFailure& failure) {
    return core::unexpected(std::string(failure.what()));
  }
  // The checkpoint's cursor and step list must agree: completed = cursor +
  // newly-measured steps, so a payload whose step count diverged from its
  // cursor shows up as a size mismatch here.
  if (report.steps.size() != out.sweep.completed) {
    return core::unexpected(policy.path +
                            ": checkpoint cursor disagrees with its step list");
  }
  if (transient_cfg_ && report.transient.size() != report.steps.size()) {
    return core::unexpected(policy.path +
                            ": transient records disagree with the step list");
  }
  if (traffic_cfg_ && report.traffic.size() != report.steps.size()) {
    return core::unexpected(policy.path +
                            ": traffic records disagree with the step list");
  }
  report.completed_steps = out.sweep.completed;
  report.truncated = !out.sweep.complete();
  return out;
}

}  // namespace ranycast::chaos
