#include "ranycast/chaos/scenario.hpp"

#include <cmath>

#include "ranycast/converge/report.hpp"
#include "ranycast/traffic/config.hpp"

namespace ranycast::chaos {

namespace {

io::ConfigError field_error(std::string_view file, std::string field, std::string message) {
  io::ConfigError err;
  err.file = std::string(file);
  err.field = std::move(field);
  err.message = std::move(message);
  return err;
}

/// Scenario "type" strings. Flap types expand into a down+up event pair so
/// the engine still emits one report per step.
struct KindSpec {
  std::string_view type;
  FaultKind kind;
  bool flap{false};
};

constexpr KindSpec kKinds[] = {
    {"site_withdraw", FaultKind::SiteWithdraw},
    {"site_restore", FaultKind::SiteRestore},
    {"site_link_down", FaultKind::SiteLinkDown},
    {"site_link_up", FaultKind::SiteLinkUp},
    {"site_link_flap", FaultKind::SiteLinkDown, true},
    {"link_down", FaultKind::LinkDown},
    {"link_up", FaultKind::LinkUp},
    {"link_flap", FaultKind::LinkDown, true},
    {"route_server_down", FaultKind::RouteServerDown},
    {"route_server_up", FaultKind::RouteServerUp},
    {"region_withdraw", FaultKind::RegionWithdraw},
    {"region_restore", FaultKind::RegionRestore},
    {"geodb_stale", FaultKind::GeoDbStale},
    {"geodb_outage", FaultKind::GeoDbOutage},
    {"geodb_restore", FaultKind::GeoDbRestore},
    {"measurement_degrade", FaultKind::MeasurementDegrade},
    {"measurement_restore", FaultKind::MeasurementRestore},
    {"traffic_surge", FaultKind::TrafficSurge},
    {"traffic_restore", FaultKind::TrafficRestore},
};

/// The matching *Up kind for a flap's second half.
FaultKind flap_partner(FaultKind down) {
  return down == FaultKind::SiteLinkDown ? FaultKind::SiteLinkUp : FaultKind::LinkUp;
}

/// Read a required non-negative integer member.
core::Expected<std::int64_t, io::ConfigError> required_int(const io::Json& obj,
                                                           std::string_view file,
                                                           const std::string& base,
                                                           std::string_view key) {
  const io::Json* member = obj.find(key);
  if (member == nullptr || !member->is_number()) {
    return core::unexpected(
        field_error(file, base + std::string(key), "required integer member is missing"));
  }
  const double v = member->as_number();
  if (v < 0 || v != static_cast<double>(static_cast<std::int64_t>(v))) {
    return core::unexpected(
        field_error(file, base + std::string(key), "must be a non-negative integer"));
  }
  return static_cast<std::int64_t>(v);
}

core::Expected<FaultEvent, io::ConfigError> event_from_json(const io::Json& obj,
                                                            std::string_view file,
                                                            const std::string& base) {
  if (!obj.is_object()) {
    return core::unexpected(field_error(file, base + "*", "event must be a JSON object"));
  }
  const std::string type = obj.string_or("type", "");
  if (type.empty()) {
    return core::unexpected(field_error(file, base + "type", "required member is missing"));
  }
  const KindSpec* spec = nullptr;
  for (const KindSpec& k : kKinds) {
    if (k.type == type) spec = &k;
  }
  if (spec == nullptr) {
    return core::unexpected(
        field_error(file, base + "type", "unknown event type '" + type + "'"));
  }

  FaultEvent event;
  event.kind = spec->kind;
  event.label = obj.string_or("label", "");
  switch (spec->kind) {
    case FaultKind::SiteWithdraw:
    case FaultKind::SiteRestore: {
      auto site = required_int(obj, file, base, "site");
      if (!site) return core::unexpected(std::move(site).error());
      event.site = SiteId{static_cast<std::uint16_t>(*site)};
      break;
    }
    case FaultKind::SiteLinkDown:
    case FaultKind::SiteLinkUp: {
      auto site = required_int(obj, file, base, "site");
      if (!site) return core::unexpected(std::move(site).error());
      event.site = SiteId{static_cast<std::uint16_t>(*site)};
      event.attachment = static_cast<std::size_t>(obj.int_or("attachment", 0));
      break;
    }
    case FaultKind::LinkDown:
    case FaultKind::LinkUp: {
      auto a = required_int(obj, file, base, "a");
      if (!a) return core::unexpected(std::move(a).error());
      auto b = required_int(obj, file, base, "b");
      if (!b) return core::unexpected(std::move(b).error());
      event.a = Asn{static_cast<std::uint32_t>(*a)};
      event.b = Asn{static_cast<std::uint32_t>(*b)};
      break;
    }
    case FaultKind::RouteServerDown:
    case FaultKind::RouteServerUp: {
      auto ixp = required_int(obj, file, base, "ixp");
      if (!ixp) return core::unexpected(std::move(ixp).error());
      event.ixp = static_cast<std::size_t>(*ixp);
      break;
    }
    case FaultKind::RegionWithdraw:
    case FaultKind::RegionRestore: {
      auto region = required_int(obj, file, base, "region");
      if (!region) return core::unexpected(std::move(region).error());
      event.region = static_cast<std::size_t>(*region);
      break;
    }
    case FaultKind::GeoDbStale:
    case FaultKind::GeoDbOutage:
    case FaultKind::GeoDbRestore: {
      event.db = static_cast<std::size_t>(obj.int_or("db", 0));
      event.magnitude = obj.number_or("extra_wrong_country_prob", 0.0);
      if (event.db >= 3) {
        return core::unexpected(
            field_error(file, base + "db", "geolocation database index must be 0..2"));
      }
      if (event.magnitude < 0.0 || event.magnitude > 1.0) {
        return core::unexpected(field_error(file, base + "extra_wrong_country_prob",
                                            "must be a probability in [0,1]"));
      }
      break;
    }
    case FaultKind::MeasurementDegrade: {
      lab::MeasurementFaults f;
      f.ping_loss_prob = obj.number_or("ping_loss_prob", 0.0);
      f.dns_timeout_prob = obj.number_or("dns_timeout_prob", 0.0);
      f.max_retries = static_cast<int>(obj.int_or("max_retries", f.max_retries));
      f.backoff_base_ms = obj.number_or("backoff_base_ms", f.backoff_base_ms);
      f.seed = static_cast<std::uint64_t>(obj.int_or("seed", static_cast<std::int64_t>(f.seed)));
      if (f.ping_loss_prob < 0.0 || f.ping_loss_prob > 1.0) {
        return core::unexpected(
            field_error(file, base + "ping_loss_prob", "must be a probability in [0,1]"));
      }
      if (f.dns_timeout_prob < 0.0 || f.dns_timeout_prob > 1.0) {
        return core::unexpected(
            field_error(file, base + "dns_timeout_prob", "must be a probability in [0,1]"));
      }
      if (f.max_retries < 0) {
        return core::unexpected(
            field_error(file, base + "max_retries", "must be non-negative"));
      }
      if (f.backoff_base_ms < 0.0) {
        return core::unexpected(
            field_error(file, base + "backoff_base_ms", "must be non-negative"));
      }
      event.faults = f;
      break;
    }
    case FaultKind::MeasurementRestore:
      break;
    case FaultKind::TrafficSurge: {
      event.magnitude = obj.number_or("scale", 0.0);
      if (!(event.magnitude > 0.0) || !std::isfinite(event.magnitude)) {
        return core::unexpected(
            field_error(file, base + "scale", "surge scale must be positive and finite"));
      }
      break;
    }
    case FaultKind::TrafficRestore:
      break;
  }
  return event;
}

}  // namespace

core::Expected<FaultPlan, io::ConfigError> plan_from_json(const io::Json& json,
                                                          std::string_view file) {
  if (!json.is_object()) {
    return core::unexpected(field_error(file, "", "scenario must be a JSON object"));
  }
  FaultPlan plan;
  plan.name = json.string_or("name", "unnamed");
  const io::Json* events = json.find("events");
  if (events == nullptr || !events->is_array()) {
    return core::unexpected(field_error(file, "events", "required array member is missing"));
  }
  const auto& arr = events->as_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const std::string base = "events[" + std::to_string(i) + "].";
    auto event = event_from_json(arr[i], file, base);
    if (!event) return core::unexpected(std::move(event).error());
    const std::string type = arr[i].string_or("type", "");
    const bool flap = type == "site_link_flap" || type == "link_flap";
    if (flap) {
      FaultEvent up = *event;
      up.kind = flap_partner(event->kind);
      if (event->label.empty()) {
        event->label = "flap: down";
        up.label = "flap: up";
      }
      plan.events.push_back(std::move(*event));
      plan.events.push_back(std::move(up));
    } else {
      plan.events.push_back(std::move(*event));
    }
  }
  if (plan.events.empty()) {
    return core::unexpected(field_error(file, "events", "plan has no events"));
  }
  return plan;
}

core::Expected<FaultPlan, io::ConfigError> load_plan(const std::string& path) {
  auto json = io::load_json(path);
  if (!json) return core::unexpected(std::move(json).error());
  return plan_from_json(*json, path);
}

io::Json report_to_json(const ChaosReport& report) {
  io::JsonArray steps;
  for (const StepReport& s : report.steps) {
    steps.push_back(io::Json(io::JsonObject{
        {"index", io::Json(static_cast<std::int64_t>(s.index))},
        {"event", io::Json(s.event)},
        {"probes", io::Json(static_cast<std::int64_t>(s.probes))},
        {"routes_before", io::Json(static_cast<std::int64_t>(s.routes_before))},
        {"routes_after", io::Json(static_cast<std::int64_t>(s.routes_after))},
        {"moved", io::Json(static_cast<std::int64_t>(s.moved))},
        {"lost", io::Json(static_cast<std::int64_t>(s.lost))},
        {"gained", io::Json(static_cast<std::int64_t>(s.gained))},
        {"churn", io::Json(s.churn())},
        {"affected_probes", io::Json(static_cast<std::int64_t>(s.affected_probes))},
        {"still_served", io::Json(static_cast<std::int64_t>(s.still_served))},
        {"survival_rate", io::Json(s.survival_rate())},
        {"failover_in_region", io::Json(static_cast<std::int64_t>(s.failover_in_region))},
        {"cross_region", io::Json(static_cast<std::int64_t>(s.cross_region))},
        {"before_p50_ms", io::Json(s.before_p50_ms)},
        {"before_p90_ms", io::Json(s.before_p90_ms)},
        {"after_p50_ms", io::Json(s.after_p50_ms)},
        {"after_p90_ms", io::Json(s.after_p90_ms)},
        {"degraded_dns_answers", io::Json(static_cast<std::int64_t>(s.degraded_dns_answers))},
        {"lost_pings", io::Json(static_cast<std::int64_t>(s.lost_pings))},
    }));
  }
  io::JsonObject out{
      {"plan", io::Json(report.plan)},
      {"deployment", io::Json(report.deployment)},
      {"seed", io::Json(static_cast<std::int64_t>(report.seed))},
      {"probes", io::Json(static_cast<std::int64_t>(report.probes))},
      {"planned_steps", io::Json(static_cast<std::int64_t>(report.planned_steps))},
      {"completed_steps", io::Json(static_cast<std::int64_t>(report.completed_steps))},
      {"truncated", io::Json(report.truncated)},
      {"steps", io::Json(std::move(steps))},
  };
  if (!report.transient.empty()) {
    io::JsonArray transient;
    transient.reserve(report.transient.size());
    for (const converge::StepTransient& t : report.transient) {
      transient.push_back(converge::transient_to_json(t));
    }
    out["transient"] = io::Json(std::move(transient));
  }
  if (!report.traffic.empty()) {
    io::JsonArray traffic;
    traffic.reserve(report.traffic.size());
    for (const traffic::StepTraffic& t : report.traffic) {
      traffic.push_back(traffic::step_to_json(t));
    }
    out["traffic"] = io::Json(std::move(traffic));
  }
  return io::Json(std::move(out));
}

core::Expected<std::optional<traffic::TrafficConfig>, io::ConfigError> traffic_from_scenario(
    const io::Json& json, std::string_view file) {
  if (!json.is_object()) {
    return core::unexpected(field_error(file, "", "scenario must be a JSON object"));
  }
  const io::Json* block = json.find("traffic");
  if (block == nullptr) return std::optional<traffic::TrafficConfig>{};
  auto cfg = traffic::config_from_json(*block, file, "traffic.");
  if (!cfg) return core::unexpected(std::move(cfg).error());
  return std::optional<traffic::TrafficConfig>{std::move(*cfg)};
}

}  // namespace ranycast::chaos
