#include "ranycast/chaos/plan.hpp"

#include <cstdio>

namespace ranycast::chaos {

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::SiteWithdraw: return "site_withdraw";
    case FaultKind::SiteRestore: return "site_restore";
    case FaultKind::SiteLinkDown: return "site_link_down";
    case FaultKind::SiteLinkUp: return "site_link_up";
    case FaultKind::LinkDown: return "link_down";
    case FaultKind::LinkUp: return "link_up";
    case FaultKind::RouteServerDown: return "route_server_down";
    case FaultKind::RouteServerUp: return "route_server_up";
    case FaultKind::RegionWithdraw: return "region_withdraw";
    case FaultKind::RegionRestore: return "region_restore";
    case FaultKind::GeoDbStale: return "geodb_stale";
    case FaultKind::GeoDbOutage: return "geodb_outage";
    case FaultKind::GeoDbRestore: return "geodb_restore";
    case FaultKind::MeasurementDegrade: return "measurement_degrade";
    case FaultKind::MeasurementRestore: return "measurement_restore";
    case FaultKind::TrafficSurge: return "traffic_surge";
    case FaultKind::TrafficRestore: return "traffic_restore";
  }
  return "unknown";
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string describe(const FaultEvent& e) {
  std::string out{to_string(e.kind)};
  switch (e.kind) {
    case FaultKind::SiteWithdraw:
    case FaultKind::SiteRestore:
      out += " site=" + std::to_string(value(e.site));
      break;
    case FaultKind::SiteLinkDown:
    case FaultKind::SiteLinkUp:
      out += " site=" + std::to_string(value(e.site)) +
             " attachment=" + std::to_string(e.attachment);
      break;
    case FaultKind::LinkDown:
    case FaultKind::LinkUp:
      out += " " + std::to_string(value(e.a)) + "<->" + std::to_string(value(e.b));
      break;
    case FaultKind::RouteServerDown:
    case FaultKind::RouteServerUp:
      out += " ixp=" + std::to_string(e.ixp);
      break;
    case FaultKind::RegionWithdraw:
    case FaultKind::RegionRestore:
      out += " region=" + std::to_string(e.region);
      break;
    case FaultKind::GeoDbStale:
      out += " db=" + std::to_string(e.db) + " extra_wrong_country_prob=" + fmt(e.magnitude);
      break;
    case FaultKind::GeoDbOutage:
    case FaultKind::GeoDbRestore:
      out += " db=" + std::to_string(e.db);
      break;
    case FaultKind::MeasurementDegrade:
      out += " ping_loss=" + fmt(e.faults.ping_loss_prob) +
             " dns_timeout=" + fmt(e.faults.dns_timeout_prob) +
             " max_retries=" + std::to_string(e.faults.max_retries);
      break;
    case FaultKind::MeasurementRestore:
      break;
    case FaultKind::TrafficSurge:
      out += " scale=" + fmt(e.magnitude);
      break;
    case FaultKind::TrafficRestore:
      break;
  }
  if (!e.label.empty()) out += " '" + e.label + "'";
  return out;
}

FaultPlan single_site_withdrawal(SiteId site) {
  FaultEvent event;
  event.kind = FaultKind::SiteWithdraw;
  event.site = site;
  return FaultPlan{"single-site-withdrawal", {std::move(event)}};
}

}  // namespace ranycast::chaos
