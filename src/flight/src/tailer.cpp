#include <fstream>

#include "ranycast/flight/flight.hpp"

namespace ranycast::flight {

core::Expected<JournalTailer::Poll, std::string> JournalTailer::poll() {
  Poll out;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return out;  // not created yet: an empty poll, not an error
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size < offset_) {
    // The file shrank under us: rotated or truncated. Restart from byte 0 —
    // surfacing the new file's lines beats silently waiting past its end.
    out.rotated = true;
    offset_ = 0;
  }
  if (size == offset_) return out;
  in.seekg(static_cast<std::streamoff>(offset_), std::ios::beg);
  std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  if (in.gcount() <= 0) {
    return core::unexpected("cannot read journal '" + path_ + "' at offset " +
                            std::to_string(offset_));
  }
  chunk.resize(static_cast<std::size_t>(in.gcount()));

  // Consume only newline-terminated lines. Anything after the last newline
  // is a line the writer has not committed yet (mid-append, or the torn
  // final write of a killed process): leave it for the next poll, where it
  // is either completed or — if the writer is truly gone — stays pending
  // for a final load_journal to account as a kill-cut tail.
  std::size_t consumed = 0;
  for (;;) {
    const std::size_t nl = chunk.find('\n', consumed);
    if (nl == std::string::npos) break;
    const std::string line = chunk.substr(consumed, nl - consumed);
    consumed = nl + 1;
    if (line.empty()) continue;
    JournalEvent e;
    switch (parse_journal_line(line, e)) {
      case LineStatus::Corrupt:
        ++out.corrupt_lines;
        break;
      case LineStatus::Malformed:
        ++out.malformed_lines;
        break;
      case LineStatus::Event:
        out.events.push_back(std::move(e));
        break;
    }
  }
  offset_ += consumed;
  return out;
}

}  // namespace ranycast::flight
