#include <cstdlib>
#include <fstream>
#include <map>

#include "ranycast/core/crc32.hpp"
#include "ranycast/flight/flight.hpp"
#include "ranycast/obs/journal.hpp"

namespace ranycast::flight {

namespace {

enum class CrcCheck { NoTag, Valid, Mismatch };

/// Validate the writer's fixed-width `,"crc":"xxxxxxxx"}` line tail (see
/// obs::kJournalCrcTagSize): CRC-32 over every byte before the tag.
CrcCheck check_line_crc(const std::string& line) {
  constexpr std::size_t kTag = obs::kJournalCrcTagSize;
  if (line.size() < kTag + 2) return CrcCheck::NoTag;
  const std::size_t tag_at = line.size() - kTag;
  if (line.compare(tag_at, 8, ",\"crc\":\"") != 0 ||
      line.compare(line.size() - 2, 2, "\"}") != 0) {
    return CrcCheck::NoTag;
  }
  const std::string hex = line.substr(tag_at + 8, 8);
  if (hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return CrcCheck::NoTag;
  }
  const auto stored = static_cast<std::uint32_t>(std::strtoul(hex.c_str(), nullptr, 16));
  const std::uint32_t computed = core::crc32(line.data(), tag_at);
  return stored == computed ? CrcCheck::Valid : CrcCheck::Mismatch;
}

}  // namespace

LineStatus parse_journal_line(const std::string& line, JournalEvent& out) {
  // The CRC tag is checked before parsing: flipped bytes can still yield
  // valid JSON with a silently wrong value, and only the checksum knows.
  if (check_line_crc(line) == CrcCheck::Mismatch) return LineStatus::Corrupt;
  auto parsed = io::parse_json(line);
  if (std::holds_alternative<io::JsonParseError>(parsed) ||
      !std::get<io::Json>(parsed).is_object()) {
    return LineStatus::Malformed;
  }
  out.fields = std::move(std::get<io::Json>(parsed));
  out.type = out.fields.string_or("type", "");
  out.ts_ns = static_cast<std::uint64_t>(out.fields.number_or("ts_ns", 0.0));
  return LineStatus::Event;
}

core::Expected<JournalFile, std::string> load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::unexpected("cannot read journal '" + path + "'");
  JournalFile out;
  std::string line;
  bool last_was_malformed = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    last_was_malformed = false;
    JournalEvent e;
    switch (parse_journal_line(line, e)) {
      case LineStatus::Corrupt:
        ++out.corrupt_lines;
        continue;
      case LineStatus::Malformed:
        // A SIGKILL can cut the last line short; count and move on so the
        // journal stays readable up to the last completed step.
        ++out.malformed_lines;
        last_was_malformed = true;
        continue;
      case LineStatus::Event:
        break;
    }
    if (e.type == "resumed") ++out.resume_markers;
    out.events.push_back(std::move(e));
  }
  // A malformed FINAL line is the expected signature of a kill-cut tail;
  // malformed lines elsewhere are genuine damage (see JournalFile::damaged).
  out.truncated_tail = last_was_malformed;
  return out;
}

core::Expected<std::vector<obs::FlightThreadSnapshot>, std::string> load_flight_dump(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::unexpected("cannot read flight dump '" + path + "'");
  std::vector<obs::FlightThreadSnapshot> threads;
  std::map<std::uint64_t, std::size_t> by_tid;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = io::parse_json(line);
    if (std::holds_alternative<io::JsonParseError>(parsed) ||
        !std::get<io::Json>(parsed).is_object()) {
      continue;  // tolerate a cut tail, same as journals
    }
    const io::Json& j = std::get<io::Json>(parsed);
    obs::TraceEvent e;
    e.name = j.string_or("name", "");
    e.parent = j.string_or("parent", "");
    e.depth = static_cast<std::uint32_t>(j.number_or("depth", 0.0));
    e.start_ns = static_cast<std::uint64_t>(j.number_or("start_ns", 0.0));
    e.dur_ns = static_cast<std::uint64_t>(j.number_or("dur_ns", 0.0));
    e.seq = static_cast<std::uint64_t>(j.number_or("seq", 0.0));
    e.tid = static_cast<std::uint64_t>(j.number_or("tid", 0.0));
    const auto [it, inserted] = by_tid.try_emplace(e.tid, threads.size());
    if (inserted) {
      obs::FlightThreadSnapshot t;
      t.slot = static_cast<std::uint32_t>(threads.size());
      t.os_tid = e.tid;
      t.name = j.string_or("thread", "thread-" + std::to_string(threads.size()));
      threads.push_back(std::move(t));
    }
    obs::FlightThreadSnapshot& t = threads[it->second];
    t.events.push_back(std::move(e));
    ++t.recorded;
  }
  return threads;
}

}  // namespace ranycast::flight
