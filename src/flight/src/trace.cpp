#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "ranycast/flight/flight.hpp"

namespace ranycast::flight {

namespace {

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

io::Json base_event(const char* ph, std::string name, double ts, std::uint64_t pid,
                    std::uint64_t tid) {
  io::JsonObject o;
  o["ph"] = io::Json(ph);
  o["name"] = io::Json(std::move(name));
  o["ts"] = io::Json(ts);
  o["pid"] = io::Json(static_cast<std::int64_t>(pid));
  o["tid"] = io::Json(static_cast<std::int64_t>(tid));
  return io::Json(std::move(o));
}

void add_metadata(io::JsonArray& out, const char* kind, std::string value,
                  std::uint64_t pid, std::uint64_t tid) {
  io::Json e = base_event("M", kind, 0.0, pid, tid);
  io::JsonObject args;
  args["name"] = io::Json(std::move(value));
  e.as_object()["args"] = io::Json(std::move(args));
  out.push_back(std::move(e));
}

/// Async begin/end pair synthesized from a completed interval — balanced by
/// construction, even when the journal was cut mid-run.
void add_async_pair(io::JsonArray& out, std::string cat, std::string name,
                    double begin_us, double end_us, std::uint64_t id,
                    std::uint64_t pid) {
  for (const char* ph : {"b", "e"}) {
    io::Json e = base_event(ph, name, ph[0] == 'b' ? begin_us : std::max(begin_us, end_us),
                            pid, 0);
    e.as_object()["cat"] = io::Json(cat);
    e.as_object()["id"] = io::Json(static_cast<std::int64_t>(id));
    out.push_back(std::move(e));
  }
}

void add_counter(io::JsonArray& out, const char* name, const char* key, double value,
                 double ts_us, std::uint64_t pid) {
  io::Json e = base_event("C", name, ts_us, pid, 0);
  io::JsonObject args;
  args[key] = io::Json(value);
  e.as_object()["args"] = io::Json(std::move(args));
  out.push_back(std::move(e));
}

}  // namespace

std::string chrome_trace(const JournalFile& journal,
                         const std::vector<obs::FlightThreadSnapshot>& threads,
                         const TraceOptions& options) {
  const std::uint64_t pid =
      options.pid != 0 ? options.pid : static_cast<std::uint64_t>(::getpid());
  io::JsonArray out;

  add_metadata(out, "process_name", "ranycast", pid, 0);
  add_metadata(out, "thread_name", "journal", pid, 0);
  for (const obs::FlightThreadSnapshot& t : threads) {
    if (t.os_tid != 0) add_metadata(out, "thread_name", t.name, pid, t.os_tid);
  }

  // Flight spans: complete ("X") events on their real thread.
  for (const obs::FlightThreadSnapshot& t : threads) {
    for (const obs::TraceEvent& e : t.events) {
      io::Json x = base_event("X", e.name, to_us(e.start_ns), pid, e.tid);
      x.as_object()["cat"] = io::Json("span");
      x.as_object()["dur"] = io::Json(to_us(e.dur_ns));
      io::JsonObject args;
      args["parent"] = io::Json(e.parent);
      args["depth"] = io::Json(static_cast<std::int64_t>(e.depth));
      args["seq"] = io::Json(static_cast<std::int64_t>(e.seq));
      x.as_object()["args"] = io::Json(std::move(args));
      out.push_back(std::move(x));
    }
  }

  for (const JournalEvent& e : journal.events) {
    const double ts_us = to_us(e.ts_ns);
    if (e.type == "chaos_step") {
      // Emitted when the step completes; reconstruct [start, end] from dur.
      const double dur_us = e.fields.number_or("dur_ns", 0.0) / 1000.0;
      const auto index =
          static_cast<std::uint64_t>(e.fields.number_or("index", 0.0));
      add_async_pair(out, "chaos", e.fields.string_or("event", "step"),
                     ts_us - dur_us, ts_us, index, pid);
      add_counter(out, "chaos.step_ms", "ms", dur_us / 1000.0, ts_us, pid);
      continue;
    }
    if (e.type == "transient_window") {
      // Blackhole windows run in the convergence plane's virtual time;
      // render them schematically, anchored at the journal timestamp.
      const auto index =
          static_cast<std::uint64_t>(e.fields.number_or("index", 0.0));
      if (const io::Json* regions = e.fields.find("regions");
          regions != nullptr && regions->is_array()) {
        for (const io::Json& r : regions->as_array()) {
          const double dark_us = r.number_or("max_blackhole_us", 0.0);
          if (dark_us <= 0.0) continue;
          const auto region = static_cast<std::uint64_t>(r.number_or("region", 0.0));
          add_async_pair(out, "blackhole",
                         "blackhole r" + std::to_string(region), ts_us,
                         ts_us + dark_us, (index << 8) | region, pid);
        }
      }
      continue;
    }
    // Everything else — manifest, phases, checkpoint, resumed, stopped,
    // bench_sample — is an instant marker on the journal track.
    io::Json i = base_event("i", e.type, ts_us, pid, 0);
    i.as_object()["s"] = io::Json("g");
    i.as_object()["args"] = e.fields;
    out.push_back(std::move(i));
    if (const io::Json* rss = e.fields.find("rss_hwm_kb");
        rss != nullptr && rss->is_number()) {
      add_counter(out, "process.rss_hwm_kb", "kb", rss->as_number(), ts_us, pid);
    }
  }

  io::JsonObject doc;
  doc["traceEvents"] = io::Json(std::move(out));
  doc["displayTimeUnit"] = io::Json("ms");
  return io::Json(std::move(doc)).dump();
}

std::string summarize(const JournalFile& journal) {
  std::map<std::string, std::size_t> by_type;
  std::set<std::uint64_t> step_indexes;
  std::string stop_reason;
  // Delta-locality rollup over the chaos_step events that carry the
  // incremental-resolve fields (runs with --delta): how local each fault
  // actually was, and how often the frontier fell back to a full solve.
  std::size_t delta_steps = 0;
  std::uint64_t delta_affected = 0;
  std::uint64_t delta_fallbacks = 0;
  for (const JournalEvent& e : journal.events) {
    ++by_type[e.type.empty() ? "<untyped>" : e.type];
    if (e.type == "chaos_step") {
      step_indexes.insert(static_cast<std::uint64_t>(e.fields.number_or("index", 0.0)));
      if (e.fields.find("delta_affected_ases") != nullptr) {
        ++delta_steps;
        delta_affected +=
            static_cast<std::uint64_t>(e.fields.number_or("delta_affected_ases", 0.0));
        delta_fallbacks +=
            static_cast<std::uint64_t>(e.fields.number_or("delta_fallback_full", 0.0));
      }
    }
    if (e.type == "stopped") stop_reason = e.fields.string_or("reason", "unknown");
  }
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "events: %zu (%zu malformed line%s, %zu corrupt)\n",
                journal.events.size(), journal.malformed_lines,
                journal.malformed_lines == 1 ? "" : "s", journal.corrupt_lines);
  out += buf;
  if (journal.truncated_tail) out += "  (final line truncated: kill-cut tail)\n";
  for (const auto& [type, count] : by_type) {
    std::snprintf(buf, sizeof buf, "  %-18s %zu\n", type.c_str(), count);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "chaos steps: %zu distinct\n", step_indexes.size());
  out += buf;
  if (delta_steps > 0) {
    std::snprintf(buf, sizeof buf,
                  "delta re-solves: %zu steps, %llu affected ASes (mean %.1f/step), "
                  "%llu full fallbacks\n",
                  delta_steps, static_cast<unsigned long long>(delta_affected),
                  static_cast<double>(delta_affected) / static_cast<double>(delta_steps),
                  static_cast<unsigned long long>(delta_fallbacks));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "resume markers: %zu\n", journal.resume_markers);
  out += buf;
  if (!stop_reason.empty()) out += "stopped: " + stop_reason + "\n";
  return out;
}

std::string render_event(const JournalEvent& event) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%12.3fms  ", to_us(event.ts_ns) / 1000.0);
  return std::string(buf) + event.fields.dump();
}

std::string tail(const JournalFile& journal, std::size_t n) {
  std::string out;
  const std::size_t begin = journal.events.size() > n ? journal.events.size() - n : 0;
  for (std::size_t i = begin; i < journal.events.size(); ++i) {
    out += render_event(journal.events[i]);
    out += '\n';
  }
  return out;
}

}  // namespace ranycast::flight
