// Reading run journals and flight-recorder dumps back, and converting them
// into Chrome `traceEvents` JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// This sits above ranycast::io (it parses JSON); the write side lives in
// ranycast::obs, which sits below io and only emits. The split keeps obs
// linkable from the innermost layers while forensics tooling gets a real
// parser.
//
// Export mapping (see docs/observability.md for the walkthrough):
//   flight spans        -> "X" complete events, keyed by the real OS tid
//   chaos_step          -> async "b"/"e" pair on the journal track (id=index)
//   transient_window    -> async "b"/"e" blackhole window per affected region
//                          (virtual converge time, rendered schematically)
//   other journal lines -> "i" instant events (manifest, phases, checkpoint,
//                          resumed, stopped, bench_sample)
//   step duration / RSS -> "C" counter samples
// All ts/dur are microseconds since the process trace epoch. Async pairs are
// synthesized from (ts_ns, dur_ns) of completed events, so they are balanced
// by construction even for journals cut short by SIGKILL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ranycast/core/expected.hpp"
#include "ranycast/io/json.hpp"
#include "ranycast/obs/flight.hpp"

namespace ranycast::flight {

/// One parsed journal line.
struct JournalEvent {
  std::string type;
  std::uint64_t ts_ns{0};
  io::Json fields;  ///< the whole line as a JSON object
};

struct JournalFile {
  std::vector<JournalEvent> events;  ///< in file order
  std::size_t malformed_lines{0};    ///< unparseable lines (a SIGKILL can cut the tail)
  std::size_t corrupt_lines{0};      ///< lines whose CRC-32 tag failed validation
  bool truncated_tail{false};        ///< the FINAL line was malformed (kill-cut)
  std::size_t resume_markers{0};     ///< "resumed" events seen

  /// Whether this journal shows damage beyond a benign kill-cut tail: any
  /// CRC failure, or a malformed line that is not the final one.
  bool damaged() const noexcept {
    return corrupt_lines > 0 ||
           malformed_lines > static_cast<std::size_t>(truncated_tail ? 1 : 0);
  }
};

/// Reads an NDJSON journal. Damaged lines are skipped and counted, not
/// fatal — the journal of a killed run must stay readable up to the last
/// completed step. Lines carrying the writer's `,"crc":"xxxxxxxx"}` tag are
/// CRC-checked first: a mismatch (mid-file bit rot, spliced garbage) counts
/// as corrupt_lines even when the damaged line still parses as JSON.
/// Tag-less parseable lines are legacy journals and accepted. Fails only
/// when the file cannot be read at all.
core::Expected<JournalFile, std::string> load_journal(const std::string& path);

/// Reads an obs::flight_ndjson() dump back into per-thread snapshots
/// (grouped by tid, thread names preserved, events in file order).
core::Expected<std::vector<obs::FlightThreadSnapshot>, std::string> load_flight_dump(
    const std::string& path);

struct TraceOptions {
  std::uint64_t pid{0};  ///< 0: use the current process id
};

/// Converts a journal plus flight-recorder threads into one Chrome
/// `{"traceEvents":[...]}` JSON document. Either input may be empty.
std::string chrome_trace(const JournalFile& journal,
                         const std::vector<obs::FlightThreadSnapshot>& threads,
                         const TraceOptions& options = {});

/// Human-oriented rollup of a journal: events per type, chaos step count
/// (after last-wins dedup by index), resume markers, stop reason if any.
std::string summarize(const JournalFile& journal);

/// The last `n` journal events, one rendered line each (most recent last).
std::string tail(const JournalFile& journal, std::size_t n);

}  // namespace ranycast::flight
