// Reading run journals and flight-recorder dumps back, and converting them
// into Chrome `traceEvents` JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// This sits above ranycast::io (it parses JSON); the write side lives in
// ranycast::obs, which sits below io and only emits. The split keeps obs
// linkable from the innermost layers while forensics tooling gets a real
// parser.
//
// Export mapping (see docs/observability.md for the walkthrough):
//   flight spans        -> "X" complete events, keyed by the real OS tid
//   chaos_step          -> async "b"/"e" pair on the journal track (id=index)
//   transient_window    -> async "b"/"e" blackhole window per affected region
//                          (virtual converge time, rendered schematically)
//   other journal lines -> "i" instant events (manifest, phases, checkpoint,
//                          resumed, stopped, bench_sample)
//   step duration / RSS -> "C" counter samples
// All ts/dur are microseconds since the process trace epoch. Async pairs are
// synthesized from (ts_ns, dur_ns) of completed events, so they are balanced
// by construction even for journals cut short by SIGKILL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ranycast/core/expected.hpp"
#include "ranycast/io/json.hpp"
#include "ranycast/obs/flight.hpp"

namespace ranycast::flight {

/// One parsed journal line.
struct JournalEvent {
  std::string type;
  std::uint64_t ts_ns{0};
  io::Json fields;  ///< the whole line as a JSON object
};

struct JournalFile {
  std::vector<JournalEvent> events;  ///< in file order
  std::size_t malformed_lines{0};    ///< unparseable lines (a SIGKILL can cut the tail)
  std::size_t corrupt_lines{0};      ///< lines whose CRC-32 tag failed validation
  bool truncated_tail{false};        ///< the FINAL line was malformed (kill-cut)
  std::size_t resume_markers{0};     ///< "resumed" events seen

  /// Whether this journal shows damage beyond a benign kill-cut tail: any
  /// CRC failure, or a malformed line that is not the final one.
  bool damaged() const noexcept {
    return corrupt_lines > 0 ||
           malformed_lines > static_cast<std::size_t>(truncated_tail ? 1 : 0);
  }
};

/// How one journal line classified during parsing.
enum class LineStatus {
  Event,      ///< parsed (and CRC-validated when tagged)
  Corrupt,    ///< carries a CRC tag that does not match the bytes
  Malformed,  ///< not parseable JSON (e.g. a kill-cut or mid-append tail)
};

/// Classify and parse one journal line. The CRC tag is checked before the
/// JSON parse (flipped bytes can still be valid JSON); `out` is filled only
/// when the result is LineStatus::Event. Shared by load_journal and
/// JournalTailer so both agree on what a committed line is.
LineStatus parse_journal_line(const std::string& line, JournalEvent& out);

/// Reads an NDJSON journal. Damaged lines are skipped and counted, not
/// fatal — the journal of a killed run must stay readable up to the last
/// completed step. Lines carrying the writer's `,"crc":"xxxxxxxx"}` tag are
/// CRC-checked first: a mismatch (mid-file bit rot, spliced garbage) counts
/// as corrupt_lines even when the damaged line still parses as JSON.
/// Tag-less parseable lines are legacy journals and accepted. Fails only
/// when the file cannot be read at all.
core::Expected<JournalFile, std::string> load_journal(const std::string& path);

/// Reads an obs::flight_ndjson() dump back into per-thread snapshots
/// (grouped by tid, thread names preserved, events in file order).
core::Expected<std::vector<obs::FlightThreadSnapshot>, std::string> load_flight_dump(
    const std::string& path);

struct TraceOptions {
  std::uint64_t pid{0};  ///< 0: use the current process id
};

/// Converts a journal plus flight-recorder threads into one Chrome
/// `{"traceEvents":[...]}` JSON document. Either input may be empty.
std::string chrome_trace(const JournalFile& journal,
                         const std::vector<obs::FlightThreadSnapshot>& threads,
                         const TraceOptions& options = {});

/// Human-oriented rollup of a journal: events per type, chaos step count
/// (after last-wins dedup by index), resume markers, stop reason if any.
std::string summarize(const JournalFile& journal);

/// The last `n` journal events, one rendered line each (most recent last).
std::string tail(const JournalFile& journal, std::size_t n);

/// One journal event rendered the way `tail` renders it (ts, type, fields).
std::string render_event(const JournalEvent& event);

/// Incremental reader for a journal a live writer is still appending to.
///
/// Each poll() reads the bytes appended since the last poll and consumes
/// ONLY newline-terminated lines: a partial tail — the writer caught
/// mid-append, or the torn final write of a killed process that might still
/// be completed by a retrying vfs write loop — is left unconsumed and
/// retried on the next poll instead of being miscounted as malformed. The
/// byte offset only ever advances past committed lines, so every committed
/// line is surfaced exactly once across any interleaving with the writer.
/// A file that shrank below the committed offset (rotation / truncation)
/// resets the reader to the start and is reported via Poll::rotated.
class JournalTailer {
 public:
  explicit JournalTailer(std::string path) : path_(std::move(path)) {}

  struct Poll {
    std::vector<JournalEvent> events;  ///< newly committed lines, file order
    std::size_t corrupt_lines{0};      ///< committed lines failing their CRC tag
    std::size_t malformed_lines{0};    ///< committed but unparseable lines
    bool rotated{false};               ///< file shrank; reader restarted at 0
  };

  /// Never fails on a missing file (a writer may not have created it yet):
  /// that is an empty poll. Fails only on a read error.
  core::Expected<Poll, std::string> poll();

  /// Committed byte offset: everything before it has been surfaced.
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::string path_;
  std::uint64_t offset_{0};
};

}  // namespace ranycast::flight
