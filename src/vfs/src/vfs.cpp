#include "ranycast/vfs/vfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "fault_state.hpp"

namespace ranycast::vfs {

namespace {

using detail::FaultKind;

IoError make_error(const char* op, const std::string& path, int err,
                   bool injected = false) {
  IoError e;
  e.op = op;
  e.path = path;
  e.err = err;
  e.injected = injected;
  return e;
}

core::Unexpected<IoError> fail(const char* op, const std::string& path, int err,
                               bool injected = false) {
  return core::unexpected(make_error(op, path, err, injected));
}

std::string parent_dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Result<File> detail_open_with(const std::string& path, int flags, const char* op) {
  if (detail::should_inject(FaultKind::OpenFail, path)) {
    return fail(op, path, EIO, /*injected=*/true);
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return fail(op, path, errno);
  return File(fd, path);
}

bool IoError::retryable() const noexcept {
  return err == EINTR || err == EAGAIN || err == ENOSPC || err == EIO;
}

std::string IoError::to_string() const {
  std::string out = op;
  if (!path.empty()) {
    out += ' ';
    out += path;
  }
  out += ": ";
  out += std::strerror(err);
  if (injected) out += " [injected]";
  return out;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<File> File::create(const std::string& path) {
  return detail_open_with(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, "open");
}

Result<File> File::open_append(const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  return detail_open_with(path, flags, "open");
}

Result<File> File::open_read(const std::string& path) {
  return detail_open_with(path, O_RDONLY | O_CLOEXEC, "open");
}

Result<std::monostate> File::write_all(std::span<const std::uint8_t> data) {
  if (fd_ < 0) return fail("write", path_, EBADF);
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t want = data.size() - off;
    // Injected damage, in escalating order: an interrupted syscall (the
    // loop must retry), a hard device error, a full disk (which tears the
    // file at a REAL byte boundary — the prefix is genuinely on disk), and
    // a short write (the loop must finish the remainder).
    if (detail::should_inject(FaultKind::Eintr, path_)) continue;
    if (detail::should_inject(FaultKind::WriteFail, path_)) {
      return fail("write", path_, EIO, /*injected=*/true);
    }
    bool enospc = false;
    std::size_t allow = detail::write_allowance(want, path_, &enospc);
    if (enospc && allow == 0) return fail("write", path_, ENOSPC, /*injected=*/true);
    if (!enospc && allow > 1 && detail::should_inject(FaultKind::ShortWrite, path_)) {
      allow = (allow + 1) / 2;
    }
    const ssize_t n = ::write(fd_, data.data() + off, allow);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write", path_, errno);
    }
    off += static_cast<std::size_t>(n);
    if (enospc) return fail("write", path_, ENOSPC, /*injected=*/true);
  }
  return std::monostate{};
}

Result<std::monostate> File::write_all(std::string_view data) {
  return write_all(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Result<std::monostate> File::sync() {
  if (fd_ < 0) return fail("fsync", path_, EBADF);
  if (detail::should_inject(FaultKind::FsyncFail, path_)) {
    return fail("fsync", path_, EIO, /*injected=*/true);
  }
  if (::fsync(fd_) != 0) return fail("fsync", path_, errno);
  return std::monostate{};
}

Result<std::vector<std::uint8_t>> File::read_all() {
  if (fd_ < 0) return fail("read", path_, EBADF);
  if (detail::should_inject(FaultKind::ReadFail, path_)) {
    return fail("read", path_, EIO, /*injected=*/true);
  }
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("read", path_, errno);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  if (!out.empty() && detail::should_inject(FaultKind::BitflipRead, path_)) {
    const std::uint64_t bit = detail::draw(path_) % (out.size() * 8);
    out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  return out;
}

Result<std::monostate> File::close() {
  if (fd_ < 0) return std::monostate{};
  const int fd = fd_;
  fd_ = -1;
  const bool injected = detail::should_inject(FaultKind::CloseFail, path_);
  // Close the real descriptor either way — an injected failure simulates a
  // deferred writeback error, not a leaked fd.
  const int rc = ::close(fd);
  if (injected) return fail("close", path_, EIO, /*injected=*/true);
  if (rc != 0) return fail("close", path_, errno);
  return std::monostate{};
}

Result<std::monostate> fsync_dir(const std::string& dir) {
  if (detail::should_inject(FaultKind::FsyncFail, dir)) {
    return fail("fsync_dir", dir, EIO, /*injected=*/true);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return fail("fsync_dir", dir, errno);
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) return fail("fsync_dir", dir, saved);
  return std::monostate{};
}

Result<std::monostate> fsync_parent_dir(const std::string& path) {
  return fsync_dir(parent_dir_of(path));
}

Result<std::monostate> rename_file(const std::string& from, const std::string& to) {
  if (detail::should_inject(FaultKind::RenameFail, to)) {
    return fail("rename", to, EIO, /*injected=*/true);
  }
  const bool torn = detail::should_inject(FaultKind::TornRename, to);
  if (::rename(from.c_str(), to.c_str()) != 0) return fail("rename", to, errno);
  if (torn) {
    // Simulated crash window: the directory entry survived, the data blocks
    // did not (rename without a parent-directory fsync on a journaling FS).
    // The caller sees success; only a validated read-back can catch this.
    struct stat st{};
    if (::stat(to.c_str(), &st) == 0 && st.st_size > 0) {
      const auto keep = static_cast<off_t>(
          detail::draw(to) % static_cast<std::uint64_t>(st.st_size));
      (void)::truncate(to.c_str(), keep);
    }
  }
  return std::monostate{};
}

Result<std::monostate> remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return fail("unlink", path, errno);
  }
  return std::monostate{};
}

bool exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  auto file = File::open_read(path);
  if (!file) return core::unexpected(std::move(file).error());
  auto bytes = file->read_all();
  if (!bytes) return core::unexpected(std::move(bytes).error());
  return std::move(*bytes);
}

Result<std::monostate> write_file_atomic(const std::string& path,
                                         std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  auto cleanup_fail = [&](IoError err) -> Result<std::monostate> {
    (void)::unlink(tmp.c_str());
    return core::unexpected(std::move(err));
  };
  auto file = File::create(tmp);
  if (!file) return cleanup_fail(std::move(file).error());
  if (auto written = file->write_all(bytes); !written) {
    (void)file->close();
    return cleanup_fail(std::move(written).error());
  }
  if (auto synced = file->sync(); !synced) {
    (void)file->close();
    return cleanup_fail(std::move(synced).error());
  }
  // A failed close is a failed write (deferred writeback errors surface
  // here) — never rename a file the kernel would not vouch for.
  if (auto closed = file->close(); !closed) return cleanup_fail(std::move(closed).error());
  if (auto renamed = rename_file(tmp, path); !renamed) {
    return cleanup_fail(std::move(renamed).error());
  }
  // The rename itself is not durable until the parent directory is synced:
  // without this, a crash can roll `path` back to its previous contents.
  return fsync_parent_dir(path);
}

Result<std::monostate> write_file_atomic(const std::string& path, std::string_view text) {
  return write_file_atomic(path, std::span<const std::uint8_t>(
                                     reinterpret_cast<const std::uint8_t*>(text.data()),
                                     text.size()));
}

}  // namespace ranycast::vfs
