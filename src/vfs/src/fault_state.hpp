// Internal fault-injection hooks shared between fault.cpp (the state and
// decision stream) and vfs.cpp (the primitives that consult it). Not part
// of the public vfs API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ranycast::vfs::detail {

enum class FaultKind : std::uint8_t {
  OpenFail,
  Eintr,
  ShortWrite,
  WriteFail,
  Enospc,
  FsyncFail,
  RenameFail,
  TornRename,
  ReadFail,
  BitflipRead,
  CloseFail,
};

inline constexpr std::size_t kFaultKindCount = 11;

/// Whether this fault fires for `path` now (consumes one decision from the
/// deterministic stream; always false with no plan installed).
bool should_inject(FaultKind kind, const std::string& path);

/// One auxiliary 64-bit draw (tear fractions, bit positions). 0 with no
/// plan installed.
std::uint64_t draw(const std::string& path);

/// ENOSPC budget: how many of `want` bytes the "disk" still accepts.
/// Sets *enospc when the full amount could not be granted. Returns `want`
/// unchanged when no budget-limited plan is active.
std::size_t write_allowance(std::size_t want, const std::string& path, bool* enospc);

}  // namespace ranycast::vfs::detail
