#include "ranycast/vfs/fault.hpp"

#include <atomic>
#include <cassert>

#include "fault_state.hpp"

namespace ranycast::vfs {

namespace detail {

namespace {

/// The installed plan. Written only by ScopedFaultPlan's constructor and
/// destructor (nesting asserts), read by every vfs primitive.
struct FaultState {
  FaultPlan plan;
  std::atomic<std::uint64_t> op_index{0};
  std::atomic<std::int64_t> byte_budget{0};

  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> counts[kFaultKindCount]{};
};

std::atomic<FaultState*> g_state{nullptr};

/// splitmix64: one independent 64-bit draw per (seed, op index, kind).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double probability_of(const FaultPlan& plan, FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::OpenFail: return plan.p_open_fail;
    case FaultKind::Eintr: return plan.p_eintr;
    case FaultKind::ShortWrite: return plan.p_short_write;
    case FaultKind::WriteFail: return plan.p_write_fail;
    case FaultKind::FsyncFail: return plan.p_fsync_fail;
    case FaultKind::RenameFail: return plan.p_rename_fail;
    case FaultKind::TornRename: return plan.p_torn_rename;
    case FaultKind::ReadFail: return plan.p_read_fail;
    case FaultKind::BitflipRead: return plan.p_bitflip_read;
    case FaultKind::CloseFail: return plan.p_close_fail;
    case FaultKind::Enospc: break;  // budget-driven, not probability-driven
  }
  return 0.0;
}

bool path_matches(const FaultPlan& plan, const std::string& path) noexcept {
  return plan.path_filter.empty() || path.find(plan.path_filter) != std::string::npos;
}

}  // namespace

bool should_inject(FaultKind kind, const std::string& path) {
  FaultState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr || !path_matches(s->plan, path)) return false;
  const double p = probability_of(s->plan, kind);
  if (p <= 0.0) return false;
  s->decisions.fetch_add(1, std::memory_order_relaxed);
  // Counter-indexed stream: op N's decision depends only on (seed, N, kind),
  // never on wall time or address-space layout.
  const std::uint64_t idx = s->op_index.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      mix(s->plan.seed ^ mix(idx) ^ (static_cast<std::uint64_t>(kind) * 0xD6E8FEB86659FD93ull));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= p) return false;
  s->counts[static_cast<std::size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t draw(const std::string& path) {
  FaultState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr) return 0;
  (void)path;
  const std::uint64_t idx = s->op_index.fetch_add(1, std::memory_order_relaxed);
  return mix(s->plan.seed ^ mix(idx ^ 0xA5A5A5A5A5A5A5A5ull));
}

std::size_t write_allowance(std::size_t want, const std::string& path, bool* enospc) {
  *enospc = false;
  FaultState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr || s->plan.enospc_after_bytes < 0 || !path_matches(s->plan, path)) {
    return want;
  }
  // Claim bytes from the shared budget; whatever cannot be claimed is the
  // part of the write the "full disk" refuses.
  std::int64_t before = s->byte_budget.load(std::memory_order_relaxed);
  std::int64_t grant;
  do {
    grant = before < static_cast<std::int64_t>(want) ? before
                                                     : static_cast<std::int64_t>(want);
    if (grant < 0) grant = 0;
  } while (!s->byte_budget.compare_exchange_weak(before, before - grant,
                                                 std::memory_order_relaxed));
  if (grant < static_cast<std::int64_t>(want)) {
    *enospc = true;
    s->counts[static_cast<std::size_t>(FaultKind::Enospc)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(grant);
}

}  // namespace detail

FaultPlan FaultPlan::storm(std::uint64_t seed, double intensity) {
  if (intensity < 0.0) intensity = 0.0;
  if (intensity > 1.0) intensity = 1.0;
  FaultPlan plan;
  plan.seed = seed;
  // Scaled so intensity 1.0 disturbs roughly every other opportunity while
  // keeping each class individually observable at moderate intensities.
  plan.p_open_fail = 0.02 * intensity;
  plan.p_eintr = 0.10 * intensity;
  plan.p_short_write = 0.10 * intensity;
  plan.p_write_fail = 0.04 * intensity;
  plan.p_fsync_fail = 0.06 * intensity;
  plan.p_rename_fail = 0.04 * intensity;
  plan.p_torn_rename = 0.06 * intensity;
  plan.p_read_fail = 0.03 * intensity;
  plan.p_bitflip_read = 0.08 * intensity;
  plan.p_close_fail = 0.02 * intensity;
  return plan;
}

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan) {
  assert(detail::g_state.load() == nullptr && "fault plans do not nest");
  auto* state = new detail::FaultState;
  state->plan = plan;
  state->byte_budget.store(plan.enospc_after_bytes, std::memory_order_relaxed);
  detail::g_state.store(state, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  detail::FaultState* state = detail::g_state.exchange(nullptr, std::memory_order_acq_rel);
  delete state;
}

FaultStats ScopedFaultPlan::stats() const {
  FaultStats out;
  detail::FaultState* s = detail::g_state.load(std::memory_order_acquire);
  if (s == nullptr) return out;
  using detail::FaultKind;
  const auto count = [&](FaultKind k) {
    return s->counts[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
  };
  out.decisions = s->decisions.load(std::memory_order_relaxed);
  out.open_fail = count(FaultKind::OpenFail);
  out.eintr = count(FaultKind::Eintr);
  out.short_write = count(FaultKind::ShortWrite);
  out.write_fail = count(FaultKind::WriteFail);
  out.enospc = count(FaultKind::Enospc);
  out.fsync_fail = count(FaultKind::FsyncFail);
  out.rename_fail = count(FaultKind::RenameFail);
  out.torn_rename = count(FaultKind::TornRename);
  out.read_fail = count(FaultKind::ReadFail);
  out.bitflip_read = count(FaultKind::BitflipRead);
  out.close_fail = count(FaultKind::CloseFail);
  return out;
}

bool faults_active() noexcept {
  return detail::g_state.load(std::memory_order_acquire) != nullptr;
}

}  // namespace ranycast::vfs
