// The durability-critical I/O layer: POSIX primitives with typed errors and
// deterministic fault injection.
//
// Everything the repo must not lose on a crash — guard checkpoints, the run
// journal, bench reports — goes through this API instead of raw
// fopen/write/rename. That buys three things:
//
//   1. One hardened implementation of the boring-but-subtle loops: write_all
//      retries EINTR and short writes, write_file_atomic stages through a
//      tmp file, fsyncs the data AND the parent directory after the rename
//      (without the directory fsync, ext4/btrfs may forget the rename on
//      power loss — the classic atomic-rename pitfall from "All File
//      Systems Are Not Created Equal"), and propagates close() failure
//      instead of swallowing it.
//   2. Typed, retry-classified errors: IoError carries the errno, the
//      operation and the path; retryable() tells guard whether bounded
//      backoff (ENOSPC clearing, transient EIO) is worth attempting.
//   3. A seeded fault plan (see fault.hpp) can be injected underneath every
//      primitive, so the crash-safety story is exercised against short
//      writes, failed fsyncs, ENOSPC, torn renames and bit-rot — not just
//      clean SIGKILLs on a healthy filesystem.
//
// vfs sits below ranycast::obs (the journal writes through it) and depends
// only on ranycast::core.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ranycast/core/expected.hpp"

namespace ranycast::vfs {

/// A failed I/O primitive: which operation, on which path, with which errno.
/// `injected` marks faults produced by the active fault plan, so logs can
/// distinguish simulated storms from real disk trouble.
struct IoError {
  std::string op;    ///< "open", "write", "fsync", "rename", "read", "close", "fsync_dir"
  std::string path;
  int err{0};        ///< errno value
  bool injected{false};

  /// Errors worth a bounded-backoff retry of the whole operation: EINTR,
  /// EAGAIN, ENOSPC (space can be freed) and EIO (transient device hiccup).
  /// Note a *failed fsync* is only retryable as a from-scratch rewrite of
  /// the file — the kernel may have dropped the dirty pages — which is how
  /// guard uses it (the checkpoint writer always rewrites the whole tmp
  /// file on retry).
  bool retryable() const noexcept;

  /// "write ck.tmp: No space left on device [injected]"
  std::string to_string() const;
};

template <typename T>
using Result = core::Expected<T, IoError>;

/// Move-only owned file descriptor with checked primitives. All methods
/// consult the active fault plan (if any) before touching the real fd.
class File {
 public:
  File() = default;
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;

  /// Open for writing, truncating any existing file.
  static Result<File> create(const std::string& path);
  /// Open (creating if needed) for O_APPEND writes; truncates first when
  /// `truncate` (a fresh journal) and appends otherwise (--resume).
  static Result<File> open_append(const std::string& path, bool truncate);
  static Result<File> open_read(const std::string& path);

  bool is_open() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  const std::string& path() const noexcept { return path_; }

  /// Write every byte, looping over EINTR and short writes. On failure the
  /// file may hold a prefix of `data` — callers staging through a tmp file
  /// must discard it.
  Result<std::monostate> write_all(std::span<const std::uint8_t> data);
  Result<std::monostate> write_all(std::string_view data);

  /// fsync the fd.
  Result<std::monostate> sync();

  /// Read the remaining contents to EOF.
  Result<std::vector<std::uint8_t>> read_all();

  /// Close and propagate failure (NFS/quota errors surface at close; a
  /// swallowed close error is silent data loss). Idempotent; the destructor
  /// falls back to a best-effort close.
  Result<std::monostate> close();

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  friend Result<File> detail_open_with(const std::string&, int, const char*);

  int fd_{-1};
  std::string path_;
};

/// fsync a directory, making previously renamed/created entries durable.
Result<std::monostate> fsync_dir(const std::string& dir);

/// fsync the parent directory of `path` — required after std::rename for
/// the new name to survive a power loss on ext4/btrfs.
Result<std::monostate> fsync_parent_dir(const std::string& path);

Result<std::monostate> rename_file(const std::string& from, const std::string& to);

Result<std::monostate> remove_file(const std::string& path);

bool exists(const std::string& path) noexcept;

/// Slurp a whole file (fault plan may inject read failures or bit flips —
/// downstream CRCs must catch the latter).
Result<std::vector<std::uint8_t>> read_file(const std::string& path);

/// The one true atomic-write protocol: write "<path>.tmp", fsync it, close
/// it (checked), rename over `path`, fsync the parent directory. On any
/// failure the tmp file is unlinked and `path` still holds its previous
/// contents (or still does not exist).
Result<std::monostate> write_file_atomic(const std::string& path,
                                         std::span<const std::uint8_t> bytes);
Result<std::monostate> write_file_atomic(const std::string& path, std::string_view text);

}  // namespace ranycast::vfs
