// Deterministic I/O fault injection: a seeded plan of storage-level damage
// applied underneath every vfs primitive.
//
// A FaultPlan is a vector of per-operation probabilities plus an optional
// ENOSPC byte budget. While a ScopedFaultPlan is installed, each vfs
// primitive draws one decision per opportunity from a counter-indexed
// splitmix64 stream, so the same seed over the same operation sequence
// injects exactly the same faults — runs are replayable, and the torture
// soak can bisect a failing seed.
//
// The injected fault classes mirror what crash-consistency studies show
// real filesystems do to atomic-rename protocols:
//
//   short write    write() commits a prefix; the caller's loop must finish it
//   EINTR          write() returns -1/EINTR; the loop must retry
//   write EIO      write() fails outright (transient device error)
//   ENOSPC         writes fail once a cumulative byte budget is exhausted,
//                  leaving a REAL partial file behind (a torn tmp file)
//   fsync EIO      fsync() fails; dirty pages may be gone (fsyncgate) — the
//                  only safe retry is rewriting the file from scratch
//   torn rename    rename() "succeeds" but the destination is truncated to
//                  a prefix, simulating a crash window where the rename
//                  survived and the data blocks did not (no dir fsync)
//   bit-flip read  one bit of the bytes read back is flipped (bit rot /
//                  torn sector) — downstream CRCs must refuse the data
//   close EIO      close() reports deferred write failure
//
// Injection never touches paths outside the plan's path_filter, never
// crashes the process, and keeps per-class counts (FaultStats) so tests can
// assert that a storm actually exercised the paths it claims to.
#pragma once

#include <cstdint>
#include <string>

namespace ranycast::vfs {

struct FaultPlan {
  std::uint64_t seed{0};

  double p_open_fail{0.0};     ///< open() fails with EIO
  double p_eintr{0.0};         ///< write() returns EINTR
  double p_short_write{0.0};   ///< write() commits only a prefix
  double p_write_fail{0.0};    ///< write() fails with EIO
  double p_fsync_fail{0.0};    ///< fsync()/fdatasync() fails with EIO
  double p_rename_fail{0.0};   ///< rename() fails with EIO
  double p_torn_rename{0.0};   ///< rename() succeeds but tears the destination
  double p_read_fail{0.0};     ///< read() fails with EIO
  double p_bitflip_read{0.0};  ///< one bit of the read-back bytes is flipped
  double p_close_fail{0.0};    ///< close() fails with EIO

  /// Cumulative bytes the plan lets through before simulated ENOSPC;
  /// negative = unlimited. The budget is shared across all writes, so a
  /// long run eventually "fills the disk".
  std::int64_t enospc_after_bytes{-1};

  /// Only paths containing this substring are faulted ("" = every path).
  std::string path_filter;

  /// A balanced storm at `intensity` in [0,1]: every fault class enabled,
  /// scaled so intensity 1.0 breaks roughly every other operation.
  static FaultPlan storm(std::uint64_t seed, double intensity);
};

/// Per-class injection counts, readable while the plan is installed.
struct FaultStats {
  std::uint64_t decisions{0};  ///< fault opportunities consulted
  std::uint64_t open_fail{0};
  std::uint64_t eintr{0};
  std::uint64_t short_write{0};
  std::uint64_t write_fail{0};
  std::uint64_t enospc{0};
  std::uint64_t fsync_fail{0};
  std::uint64_t rename_fail{0};
  std::uint64_t torn_rename{0};
  std::uint64_t read_fail{0};
  std::uint64_t bitflip_read{0};
  std::uint64_t close_fail{0};

  std::uint64_t injected() const noexcept {
    return open_fail + eintr + short_write + write_fail + enospc + fsync_fail +
           rename_fail + torn_rename + read_fail + bitflip_read + close_fail;
  }
};

/// Installs `plan` process-wide for its lifetime (RAII; nesting is a
/// programming error and asserts). All vfs primitives consult the active
/// plan; with none installed they are plain checked syscalls.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  FaultStats stats() const;
};

/// Whether a fault plan is currently installed.
bool faults_active() noexcept;

}  // namespace ranycast::vfs
