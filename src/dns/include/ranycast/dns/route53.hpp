// Amazon Route 53-style geolocation routing policy emulator (paper §6.2).
//
// Supports country-level records with continent-level and global defaults,
// exactly like Route 53's geolocation records. The emulator resolves the
// querying address's country through a commercial-grade (i.e. imperfect)
// geolocation database, which is how country-level DNS mapping picks up
// small errors even when the mapping table itself is optimal.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "ranycast/core/ipv4.hpp"
#include "ranycast/dns/geo_database.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::dns {

class Route53Emulator {
 public:
  using RegionIndex = std::size_t;

  explicit Route53Emulator(const GeoDatabase* db) : db_(db) {}

  void set_country_record(std::string iso2, RegionIndex region) {
    by_country_[std::move(iso2)] = region;
  }
  void set_continent_record(geo::Continent c, RegionIndex region) {
    by_continent_[static_cast<int>(c)] = region;
  }
  void set_default_record(RegionIndex region) { default_ = region; }

  /// Resolve a query: country record, else continent record, else default.
  std::optional<RegionIndex> resolve(Ipv4Addr querier) const;

 private:
  const GeoDatabase* db_;
  std::unordered_map<std::string, RegionIndex> by_country_;
  std::unordered_map<int, RegionIndex> by_continent_;
  std::optional<RegionIndex> default_;
};

}  // namespace ranycast::dns
