// Error-injected IP geolocation database.
//
// The paper attributes "incorrect region mapping" (Table 2, ×Region) to IP
// geolocation errors, with a specific failure mode called out in §4.3:
// addresses belonging to international transit providers are geolocated to
// the provider's *home* country rather than where the host actually is.
// This class models a commercial geo DB (MaxMind / ipinfo / EdgeScape stand-
// ins) as ground truth corrupted by exactly those error processes, each
// database instance with its own independent error stream.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/topo/graph.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::dns {

class GeoDatabase {
 public:
  struct Config {
    std::string name{"geodb"};
    /// Wrong-country rate for ordinary allocations (applied per owner AS:
    /// databases err on whole blocks, not on individual addresses).
    double wrong_country_prob{0.02};
    /// Probability an address owned by an international AS is geolocated to
    /// the AS's home country instead of the interface's true location.
    double intl_home_bias_prob{0.80};
    /// For city-level estimates: probability the city is wrong even when the
    /// country is right (returns another city of the same country).
    double wrong_city_prob{0.20};
    std::uint64_t seed{1};
  };

  /// Degraded operating mode injected by the chaos engine. Staleness models
  /// a database snapshot that has drifted from reality (extra block-granular
  /// wrong-country decisions, drawn from a dedicated deterministic stream);
  /// an outage makes every lookup fail (callers observe nullopt and fall
  /// back, e.g. cdn::Deployment::map_client serves region 0).
  struct Fault {
    double extra_wrong_country_prob{0.0};
    bool outage{false};
  };

  GeoDatabase(Config config, const topo::Graph* graph, const topo::IpRegistry* registry);

  const std::string& name() const noexcept { return config_.name; }

  void set_fault(Fault fault) noexcept { fault_ = fault; }
  void clear_fault() noexcept { fault_ = Fault{}; }
  const Fault& fault() const noexcept { return fault_; }

  /// Country-level lookup (ISO2). `nullopt` for unallocated space.
  std::optional<std::string_view> country(Ipv4Addr ip) const;

  /// City-level point estimate, used by the RTT-range geolocation technique.
  std::optional<CityId> city_estimate(Ipv4Addr ip) const;

 private:
  struct Truth {
    Asn asn;
    CityId city;  // best-known true interface city (AS home if unknown)
    bool international;
  };

  std::optional<Truth> truth_for(Ipv4Addr ip) const;
  /// Stable per-IP hash stream so repeated lookups agree with each other.
  std::uint64_t ip_hash(Ipv4Addr ip, std::uint64_t salt) const;
  /// Stable per-owner-AS hash stream: error decisions are block-granular.
  std::uint64_t block_hash(Asn owner, std::uint64_t salt) const;

  Config config_;
  const topo::Graph* graph_;
  const topo::IpRegistry* registry_;
  Fault fault_{};
};

}  // namespace ranycast::dns
