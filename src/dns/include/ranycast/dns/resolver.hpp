// Client-side DNS resolution context.
//
// Whether a CDN's authoritative DNS can see *where the client is* depends on
// the resolver path (paper §5.1):
//  * querying the authoritative server directly (ADNS mode) exposes the
//    client's own address;
//  * a local ISP resolver sits in the client's network, so its address maps
//    to (almost) the client's location;
//  * a public resolver with EDNS Client Subnet (ECS) forwards the client's
//    /24, which is as good as the client address;
//  * a public resolver *without* ECS exposes only the resolver's egress —
//    possibly in another country — which is a structural source of
//    ×Region mapping errors.
#pragma once

#include <cstdint>
#include <string_view>

#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/types.hpp"

namespace ranycast::dns {

enum class ResolverKind : std::uint8_t {
  LocalIsp,     ///< in the client's AS; no ECS, but the address is local
  PublicEcs,    ///< public anycast resolver that forwards ECS
  PublicNoEcs,  ///< public anycast resolver without ECS
};

std::string_view to_string(ResolverKind k) noexcept;

struct ResolverProfile {
  ResolverKind kind{ResolverKind::LocalIsp};
  Ipv4Addr address;         ///< the address the authoritative server sees in LDNS mode
  CityId egress_city{kInvalidCity};  ///< where that address actually is
};

enum class QueryMode : std::uint8_t {
  Ldns,  ///< via the probe's configured resolver
  Adns,  ///< probe queries the authoritative server directly
};

struct QueryContext {
  Ipv4Addr client_ip;
  ResolverProfile resolver;
};

/// ECS forwards a truncated client *subnet*, conventionally /24 (RFC 7871's
/// recommended source prefix length), not the full address.
constexpr Ipv4Addr ecs_scope(Ipv4Addr client) noexcept {
  return Ipv4Addr{client.bits() & 0xFFFFFF00u};
}

/// The address the authoritative geo-mapping logic keys on, given the mode.
constexpr Ipv4Addr effective_address(const QueryContext& q, QueryMode mode) noexcept {
  if (mode == QueryMode::Adns) return q.client_ip;
  switch (q.resolver.kind) {
    case ResolverKind::PublicEcs:
      return ecs_scope(q.client_ip);  // ECS carries the client /24
    case ResolverKind::LocalIsp:
    case ResolverKind::PublicNoEcs:
      return q.resolver.address;
  }
  return q.client_ip;
}

}  // namespace ranycast::dns
