#include "ranycast/dns/geo_database.hpp"

#include <algorithm>
#include <vector>

#include "ranycast/obs/metrics.hpp"

namespace ranycast::dns {

namespace {

obs::Counter& lookup_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("dns.geodb.lookups");
  return counter;
}

obs::Counter& outage_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("dns.geodb.outage_lookups");
  return counter;
}

}  // namespace

GeoDatabase::GeoDatabase(Config config, const topo::Graph* graph,
                         const topo::IpRegistry* registry)
    : config_(std::move(config)), graph_(graph), registry_(registry) {}

std::optional<GeoDatabase::Truth> GeoDatabase::truth_for(Ipv4Addr ip) const {
  const auto owner = registry_->owner(ip);
  if (!owner) return std::nullopt;
  const topo::AsNode* node = graph_->find(owner->asn);
  if (node == nullptr) {
    // Not part of the routed AS graph (e.g. a public resolver's egress):
    // locatable only through the registered interface city.
    if (owner->city == kInvalidCity) return std::nullopt;
    return Truth{owner->asn, owner->city, false};
  }
  const CityId city = owner->city != kInvalidCity ? owner->city : node->home_city;
  return Truth{owner->asn, city, node->international};
}

std::uint64_t GeoDatabase::ip_hash(Ipv4Addr ip, std::uint64_t salt) const {
  return mix64(hash_combine(hash_combine(config_.seed, ip.bits()), salt));
}

namespace {

/// Geolocation databases rarely teleport a block across the planet: when
/// they err on the country, the reported location is usually a *nearby*
/// country (shared registry, shared language, border metro). Pick among
/// the closest foreign cities, deterministically per block.
CityId nearby_foreign_city(CityId truth, std::uint64_t h) {
  const auto& gaz = geo::Gazetteer::world();
  const auto iso2 = gaz.country_code(truth);
  std::vector<std::pair<double, CityId>> foreign;
  for (std::size_t i = 0; i < gaz.cities().size(); ++i) {
    const CityId c{static_cast<std::uint16_t>(i)};
    if (gaz.country_code(c) == iso2) continue;
    foreign.emplace_back(gaz.distance(truth, c).km, c);
  }
  std::partial_sort(foreign.begin(), foreign.begin() + std::min<std::size_t>(6, foreign.size()),
                    foreign.end());
  return foreign[h % std::min<std::size_t>(6, foreign.size())].second;
}

}  // namespace

std::uint64_t GeoDatabase::block_hash(Asn owner, std::uint64_t salt) const {
  // Databases assign locations to whole allocations, so error decisions are
  // made per owner AS, not per address: every host of a mis-registered
  // block mis-geolocates the same way.
  return mix64(hash_combine(hash_combine(config_.seed, value(owner)), salt));
}

namespace {
double hash01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

std::optional<std::string_view> GeoDatabase::country(Ipv4Addr ip) const {
  lookup_counter().add();
  if (fault_.outage) {
    outage_counter().add();
    return std::nullopt;
  }
  const auto truth = truth_for(ip);
  if (!truth) return std::nullopt;
  const auto& gaz = geo::Gazetteer::world();
  const topo::AsNode* node = graph_->find(truth->asn);

  // International organizations' space: databases frequently register the
  // whole allocation to the company's registration country (paper §4.3).
  if (truth->international &&
      hash01(block_hash(truth->asn, 0xA11A)) < config_.intl_home_bias_prob) {
    return gaz.country_code(node != nullptr ? node->registered_city : truth->city);
  }
  // Ordinary mis-registration: the whole AS block reports a nearby foreign
  // country.
  if (hash01(block_hash(truth->asn, 0xBEEF)) < config_.wrong_country_prob) {
    return gaz.country_code(nearby_foreign_city(truth->city, block_hash(truth->asn, 0xC0DE)));
  }
  // Staleness injected by the chaos engine: additional block-granular
  // wrong-country decisions from an independent stream, so degraded and
  // healthy operation disagree on exactly the extra-probability blocks.
  if (fault_.extra_wrong_country_prob > 0.0 &&
      hash01(block_hash(truth->asn, 0x57A1E)) < fault_.extra_wrong_country_prob) {
    return gaz.country_code(nearby_foreign_city(truth->city, block_hash(truth->asn, 0x57A2E)));
  }
  return gaz.country_code(truth->city);
}

std::optional<CityId> GeoDatabase::city_estimate(Ipv4Addr ip) const {
  lookup_counter().add();
  if (fault_.outage) {
    outage_counter().add();
    return std::nullopt;
  }
  const auto truth = truth_for(ip);
  if (!truth) return std::nullopt;
  const auto& gaz = geo::Gazetteer::world();
  const topo::AsNode* node = graph_->find(truth->asn);

  CityId country_anchor = truth->city;
  if (truth->international &&
      hash01(block_hash(truth->asn, 0xA11A)) < config_.intl_home_bias_prob) {
    country_anchor = node != nullptr ? node->registered_city : truth->city;
  } else if (hash01(block_hash(truth->asn, 0xBEEF)) < config_.wrong_country_prob) {
    return nearby_foreign_city(truth->city, block_hash(truth->asn, 0xC0DE));
  } else if (fault_.extra_wrong_country_prob > 0.0 &&
             hash01(block_hash(truth->asn, 0x57A1E)) < fault_.extra_wrong_country_prob) {
    // Same staleness stream as country(), so both views of a degraded
    // database stay mutually consistent.
    return nearby_foreign_city(truth->city, block_hash(truth->asn, 0x57A2E));
  }
  // Country correct; the city may still be off within the country.
  if (hash01(ip_hash(ip, 0xD00F)) < config_.wrong_city_prob) {
    const auto cities = gaz.cities_in_country(gaz.country_code(country_anchor));
    if (!cities.empty()) {
      return cities[ip_hash(ip, 0xF00D) % cities.size()];
    }
  }
  return country_anchor;
}

}  // namespace ranycast::dns
