#include "ranycast/dns/route53.hpp"

namespace ranycast::dns {

std::optional<Route53Emulator::RegionIndex> Route53Emulator::resolve(Ipv4Addr querier) const {
  const auto country = db_->country(querier);
  if (country) {
    if (const auto it = by_country_.find(std::string(*country)); it != by_country_.end()) {
      return it->second;
    }
    const auto& gaz = geo::Gazetteer::world();
    if (const auto idx = gaz.find_country(*country)) {
      const auto cont = gaz.countries()[*idx].continent;
      if (const auto it = by_continent_.find(static_cast<int>(cont));
          it != by_continent_.end()) {
        return it->second;
      }
    }
  }
  return default_;
}

}  // namespace ranycast::dns
