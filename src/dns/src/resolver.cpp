#include "ranycast/dns/resolver.hpp"

namespace ranycast::dns {

std::string_view to_string(ResolverKind k) noexcept {
  switch (k) {
    case ResolverKind::LocalIsp:
      return "local-isp";
    case ResolverKind::PublicEcs:
      return "public-ecs";
    case ResolverKind::PublicNoEcs:
      return "public-no-ecs";
  }
  return "?";
}

}  // namespace ranycast::dns
