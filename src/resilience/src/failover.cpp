#include "ranycast/resilience/failover.hpp"

#include "ranycast/analysis/stats.hpp"

namespace ranycast::resilience {

cdn::Deployment withdraw_site(const cdn::Deployment& deployment, SiteId site,
                              topo::IpRegistry& registry) {
  cdn::Deployment out{deployment.name() + "-minus-" + std::to_string(value(site)),
                      deployment.asn()};
  for (const cdn::Region& r : deployment.regions()) {
    const Prefix p = registry.allocate_special(24);
    out.add_region(cdn::Region{r.name, p, p.at(1)});
  }
  for (const cdn::Site& s : deployment.sites()) {
    cdn::Site copy = s;
    if (s.id == site) copy.regions.clear();  // withdrawn: announces nothing
    out.add_site(std::move(copy));
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    out.set_area_region(static_cast<geo::Area>(a),
                        deployment.region_for_area(static_cast<geo::Area>(a)));
  }
  for (const auto& [iso2, region] : deployment.country_regions()) {
    out.set_country_region(iso2, region);
  }
  return out;
}

FailoverReport fail_site(lab::Lab& lab, const lab::DeploymentHandle& before, SiteId site) {
  FailoverReport report;
  report.failed_site = site;
  report.failed_city = before.deployment.site(site).city;

  // The derived deployment differs from the base only by the failed site's
  // originations, so describe exactly that and let the lab reuse the base's
  // primed selection planes (no-op when the delta path is disabled).
  cdn::Deployment derived = withdraw_site(before.deployment, site, lab.registry());
  bgp::SolveDelta delta;
  delta.origins.resize(derived.regions().size());
  for (std::size_t r = 0; r < derived.regions().size(); ++r) {
    delta.origins[r] = bgp::diff_origin_changes(before.deployment.origins_for_region(r),
                                                derived.origins_for_region(r));
  }
  const auto& after = lab.add_deployment_derived(before, std::move(derived), delta);

  std::vector<double> before_ms, after_ms;
  for (const atlas::Probe* p : lab.census().retained()) {
    const auto answer = lab.dns_lookup(*p, before, dns::QueryMode::Ldns);
    const bgp::Route* r_before = before.route_for(p->asn, answer.region);
    if (r_before == nullptr || r_before->origin_site != site) continue;
    ++report.affected_probes;
    const auto rtt_before = lab.ping(*p, answer.address);
    if (rtt_before) before_ms.push_back(rtt_before->ms);

    // Same DNS answer (DNS does not react to BGP withdrawals), new routing.
    const bgp::Route* r_after = after.route_for(p->asn, answer.region);
    if (r_after == nullptr) {
      // The probe's own regional prefix is gone entirely — the failed site
      // was its only announcer (§4.5's one-site region). The service still
      // survives if another region's prefix, being globally routed, is
      // reachable; the client lands cross-region.
      std::optional<Rtt> best;
      for (std::size_t r2 = 0; r2 < after.deployment.regions().size(); ++r2) {
        if (r2 == answer.region) continue;
        if (after.route_for(p->asn, r2) == nullptr) continue;
        const auto rtt = lab.ping(*p, after.deployment.regions()[r2].service_ip);
        if (rtt && (!best || *rtt < *best)) best = rtt;
      }
      if (!best) continue;  // truly unreachable
      ++report.still_served;
      ++report.cross_region;
      after_ms.push_back(best->ms);
      continue;
    }
    ++report.still_served;
    const auto rtt_after =
        lab.ping(*p, after.deployment.regions()[answer.region].service_ip);
    if (rtt_after) after_ms.push_back(rtt_after->ms);
    const auto& failover_site = after.deployment.site(r_after->origin_site);
    if (failover_site.announces(answer.region)) {
      // Failover stayed within the announced region by construction; count
      // whether it also stayed within the same geographic area.
      const auto& gaz = geo::Gazetteer::world();
      if (gaz.area_of_city(failover_site.city) == gaz.area_of_city(report.failed_city)) {
        ++report.failover_in_region;
      }
    }
  }
  report.before_p50_ms = analysis::percentile(before_ms, 50);
  report.before_p90_ms = analysis::percentile(before_ms, 90);
  report.after_p50_ms = analysis::percentile(after_ms, 50);
  report.after_p90_ms = analysis::percentile(after_ms, 90);
  return report;
}

}  // namespace ranycast::resilience
