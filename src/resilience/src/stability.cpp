#include "ranycast/resilience/stability.hpp"

#include "ranycast/exec/pool.hpp"

namespace ranycast::resilience {

StabilityReport catchment_stability(lab::Lab& lab, const cdn::Deployment& deployment,
                                    std::size_t region, int trials) {
  StabilityReport report;
  report.trials = static_cast<std::size_t>(trials);
  const auto origins = deployment.origins_for_region(region);

  // catchments[t][as_index]
  const std::size_t n = lab.world().graph.nodes().size();
  std::vector<std::vector<std::optional<SiteId>>> catchments(
      static_cast<std::size_t>(trials), std::vector<std::optional<SiteId>>(n));
  // Trials differ only in their tie-break salt; each writes its own row, so
  // the fan-out result is independent of the worker count.
  const auto nodes = lab.world().graph.nodes();
  exec::ThreadPool::global().parallel_for(static_cast<std::size_t>(trials), [&](std::size_t t) {
    const auto outcome = lab.solve_origins(deployment.asn(), origins, 0xB16B00B5 + t);
    for (std::size_t i = 0; i < n; ++i) {
      catchments[t][i] = outcome.catchment(nodes[i].asn);
    }
  });

  std::size_t pair_agreements = 0, pair_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!catchments[0][i]) continue;
    ++report.ases_observed;
    bool stable = true;
    for (int t = 1; t < trials; ++t) {
      if (catchments[static_cast<std::size_t>(t)][i] != catchments[0][i]) stable = false;
    }
    if (stable) ++report.ases_stable;
    for (int a = 0; a < trials; ++a) {
      for (int b = a + 1; b < trials; ++b) {
        ++pair_total;
        if (catchments[static_cast<std::size_t>(a)][i] ==
            catchments[static_cast<std::size_t>(b)][i]) {
          ++pair_agreements;
        }
      }
    }
  }
  report.mean_pairwise_agreement =
      pair_total == 0 ? 1.0
                      : static_cast<double>(pair_agreements) / static_cast<double>(pair_total);
  return report;
}

}  // namespace ranycast::resilience
