#include "ranycast/resilience/stability.hpp"

#include "ranycast/core/crc32.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/io/config.hpp"

namespace ranycast::resilience {

namespace {

using CatchmentRows = std::vector<std::vector<std::optional<SiteId>>>;

/// The tie-break salt of trial t. Shared by the plain and guarded paths so
/// both compute the same catchment maps.
constexpr std::uint64_t trial_salt(std::size_t t) { return 0xB16B00B5 + t; }

/// Compare the first `trials` catchment rows. Pure in its inputs, so a
/// resumed campaign whose rows round-tripped through a checkpoint reduces
/// to the same report as an uninterrupted one.
StabilityReport reduce_rows(const CatchmentRows& catchments, std::size_t trials,
                            std::size_t n) {
  StabilityReport report;
  report.trials = trials;
  if (trials == 0) return report;

  std::size_t pair_agreements = 0, pair_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!catchments[0][i]) continue;
    ++report.ases_observed;
    bool stable = true;
    for (std::size_t t = 1; t < trials; ++t) {
      if (catchments[t][i] != catchments[0][i]) stable = false;
    }
    if (stable) ++report.ases_stable;
    for (std::size_t a = 0; a < trials; ++a) {
      for (std::size_t b = a + 1; b < trials; ++b) {
        ++pair_total;
        if (catchments[a][i] == catchments[b][i]) ++pair_agreements;
      }
    }
  }
  report.mean_pairwise_agreement =
      pair_total == 0 ? 1.0
                      : static_cast<double>(pair_agreements) / static_cast<double>(pair_total);
  return report;
}

}  // namespace

StabilityReport catchment_stability(lab::Lab& lab, const cdn::Deployment& deployment,
                                    std::size_t region, int trials) {
  const auto origins = deployment.origins_for_region(region);

  // catchments[t][as_index]
  const std::size_t n = lab.world().graph.nodes().size();
  CatchmentRows catchments(static_cast<std::size_t>(trials),
                           std::vector<std::optional<SiteId>>(n));
  // Trials differ only in their tie-break salt; each writes its own row, so
  // the fan-out result is independent of the worker count.
  const auto nodes = lab.world().graph.nodes();
  exec::ThreadPool::global().parallel_for(static_cast<std::size_t>(trials), [&](std::size_t t) {
    const auto outcome = lab.solve_origins(deployment.asn(), origins, trial_salt(t));
    for (std::size_t i = 0; i < n; ++i) {
      catchments[t][i] = outcome.catchment(nodes[i].asn);
    }
  });

  return reduce_rows(catchments, static_cast<std::size_t>(trials), n);
}

core::Expected<GuardedStability, guard::GuardError> catchment_stability_guarded(
    lab::Lab& lab, const cdn::Deployment& deployment, std::size_t region, int trials,
    guard::Supervisor& supervisor, const guard::CheckpointPolicy& policy) {
  const auto origins = deployment.origins_for_region(region);
  const std::size_t total = trials < 0 ? 0 : static_cast<std::size_t>(trials);
  const std::size_t n = lab.world().graph.nodes().size();
  const auto nodes = lab.world().graph.nodes();

  // Bind the checkpoint to (config, seed, deployment, region, trials): any
  // of them changing makes previous rows meaningless.
  std::uint64_t fingerprint = io::config_fingerprint(lab.config());
  const std::string& name = deployment.name();
  fingerprint = hash_combine(fingerprint, core::crc32(name.data(), name.size()));
  fingerprint = hash_combine(fingerprint, region);
  fingerprint = hash_combine(fingerprint, total);

  CatchmentRows catchments(total, std::vector<std::optional<SiteId>>(n));
  std::size_t rows_done = 0;

  guard::SweepHooks hooks;
  hooks.process = [&](std::size_t t) {
    const auto outcome = lab.solve_origins(deployment.asn(), origins, trial_salt(t));
    for (std::size_t i = 0; i < n; ++i) {
      catchments[t][i] = outcome.catchment(nodes[i].asn);
    }
    rows_done = t + 1;
  };
  // A row entry travels as one u16: the site, or 0xFFFF (kInvalidSite, never
  // a real site) for "no catchment".
  hooks.save = [&](guard::ByteWriter& w) {
    w.u64(rows_done);
    w.u64(n);
    for (std::size_t t = 0; t < rows_done; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        w.u16(catchments[t][i] ? static_cast<std::uint16_t>(*catchments[t][i]) : 0xFFFFu);
      }
    }
  };
  hooks.load = [&](guard::ByteReader& r) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    if (!r.ok() || rows > total || cols != n) return false;
    for (std::uint64_t t = 0; t < rows; ++t) {
      for (std::uint64_t i = 0; i < cols; ++i) {
        const std::uint16_t v = r.u16();
        catchments[t][i] =
            v == 0xFFFFu ? std::nullopt : std::optional<SiteId>(static_cast<SiteId>(v));
      }
    }
    if (!r.ok() || !r.at_end()) return false;
    rows_done = rows;
    return true;
  };

  auto swept = guard::run_sweep(total, fingerprint, supervisor, policy, hooks);
  if (!swept) return core::unexpected(std::move(swept).error());

  GuardedStability out;
  out.sweep = *swept;
  if (rows_done != out.sweep.completed) {
    guard::GuardError err;
    err.kind = guard::GuardErrorKind::Corrupt;
    err.path = policy.path;
    err.message = "checkpoint cursor disagrees with its catchment rows";
    return core::unexpected(std::move(err));
  }
  out.report = reduce_rows(catchments, out.sweep.completed, n);
  return out;
}

}  // namespace ranycast::resilience
