// Catchment stability under BGP's arbitrary tie-breaking.
//
// The paper checked weekly for two months that the same sites kept
// announcing the same regional prefixes, and attributes residual RTT
// differences between identical-path measurements to "BGP's route-selection
// uncertainty" (§5.3). Here the uncertainty is the solver's tie-break seed:
// re-solving under different seeds shows which catchments are pinned by
// policy/topology and which hang on arbitrary tie-breaks.
#pragma once

#include <vector>

#include "ranycast/core/expected.hpp"
#include "ranycast/guard/runtime.hpp"
#include "ranycast/guard/sweep.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::resilience {

struct StabilityReport {
  std::size_t trials{0};
  std::size_t ases_observed{0};
  /// ASes whose catchment is identical across every trial.
  std::size_t ases_stable{0};
  /// Mean over trial pairs of the fraction of ASes agreeing.
  double mean_pairwise_agreement{0.0};

  double stable_fraction() const {
    return ases_observed == 0
               ? 1.0
               : static_cast<double>(ases_stable) / static_cast<double>(ases_observed);
  }
};

/// Re-solve one regional prefix of a deployment under `trials` different
/// tie-break seeds and compare the catchment maps.
StabilityReport catchment_stability(lab::Lab& lab, const cdn::Deployment& deployment,
                                    std::size_t region, int trials);

/// Outcome of a supervised stability campaign: the report over every trial
/// that completed, plus how the sweep ended (resumed? stopped why?). When
/// the sweep is incomplete the report covers exactly `sweep.completed`
/// trials — partial progress is explicit, never silently renumbered.
struct GuardedStability {
  StabilityReport report;
  guard::SweepResult sweep;
};

/// catchment_stability under a guard::Supervisor: trials run one at a time
/// (each trial's solve still fans out internally), the catchment rows are
/// checkpointed on the policy's cadence, and a resumed campaign produces a
/// report identical to an uninterrupted one — each trial's catchment map
/// depends only on (lab state, salt 0xB16B00B5 + t), never on which run
/// computed it. The checkpoint fingerprint binds config, seed, deployment,
/// region and trial count.
core::Expected<GuardedStability, guard::GuardError> catchment_stability_guarded(
    lab::Lab& lab, const cdn::Deployment& deployment, std::size_t region, int trials,
    guard::Supervisor& supervisor, const guard::CheckpointPolicy& policy);

}  // namespace ranycast::resilience
