// Catchment stability under BGP's arbitrary tie-breaking.
//
// The paper checked weekly for two months that the same sites kept
// announcing the same regional prefixes, and attributes residual RTT
// differences between identical-path measurements to "BGP's route-selection
// uncertainty" (§5.3). Here the uncertainty is the solver's tie-break seed:
// re-solving under different seeds shows which catchments are pinned by
// policy/topology and which hang on arbitrary tie-breaks.
#pragma once

#include <vector>

#include "ranycast/lab/lab.hpp"

namespace ranycast::resilience {

struct StabilityReport {
  std::size_t trials{0};
  std::size_t ases_observed{0};
  /// ASes whose catchment is identical across every trial.
  std::size_t ases_stable{0};
  /// Mean over trial pairs of the fraction of ASes agreeing.
  double mean_pairwise_agreement{0.0};

  double stable_fraction() const {
    return ases_observed == 0
               ? 1.0
               : static_cast<double>(ases_stable) / static_cast<double>(ases_observed);
  }
};

/// Re-solve one regional prefix of a deployment under `trials` different
/// tie-break seeds and compare the catchment maps.
StabilityReport catchment_stability(lab::Lab& lab, const cdn::Deployment& deployment,
                                    std::size_t region, int trials);

}  // namespace ranycast::resilience
