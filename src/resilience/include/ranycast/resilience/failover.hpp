// Site-failure experiments.
//
// Anycast's signature operational property: when a site withdraws its
// announcements, BGP reconverges and the site's catchment spills to the
// remaining sites — no DNS change needed. Regional anycast bounds the
// spill to the failed site's region (good for latency, but the region must
// have spare sites: a one-site region loses regional reachability and
// survives only because regional prefixes stay globally announced
// elsewhere — this is the robustness §4.5 attributes to global
// reachability).
#pragma once

#include <vector>

#include "ranycast/lab/lab.hpp"

namespace ranycast::resilience {

/// `deployment` with every announcement of `site` withdrawn. Fresh regional
/// prefixes are allocated so both variants can coexist in one lab.
cdn::Deployment withdraw_site(const cdn::Deployment& deployment, SiteId site,
                              topo::IpRegistry& registry);

struct FailoverReport {
  SiteId failed_site{kInvalidSite};
  CityId failed_city{kInvalidCity};
  /// Probes that were served by the failed site before the failure.
  std::size_t affected_probes{0};
  /// Of those, how many still reach *some* site afterwards.
  std::size_t still_served{0};
  /// Latency of the affected probes before/after (medians and p90).
  double before_p50_ms{0.0}, after_p50_ms{0.0};
  double before_p90_ms{0.0}, after_p90_ms{0.0};
  /// Affected probes whose failover site is in the same region.
  std::size_t failover_in_region{0};
  /// Affected probes whose own regional prefix became unreachable (the
  /// failed site was its only announcer — §4.5's one-site-region case) but
  /// that still reach the service through another region's globally-routed
  /// prefix. Counted inside still_served, never inside failover_in_region.
  std::size_t cross_region{0};

  double survival_rate() const {
    return affected_probes == 0
               ? 1.0
               : static_cast<double>(still_served) / static_cast<double>(affected_probes);
  }
};

/// Fail one site of an already-deployed configuration and measure the
/// affected probes before and after. The "after" deployment is registered
/// in the lab (its handle outlives the call).
FailoverReport fail_site(lab::Lab& lab, const lab::DeploymentHandle& before, SiteId site);

}  // namespace ranycast::resilience
