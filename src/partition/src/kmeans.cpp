#include "ranycast/partition/kmeans.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "ranycast/core/rng.hpp"

namespace ranycast::partition {

namespace {

struct Vec3 {
  double x{0}, y{0}, z{0};

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
};

Vec3 to_unit(geo::GeoPoint p) {
  const double lat = p.lat_deg * std::numbers::pi / 180.0;
  const double lon = p.lon_deg * std::numbers::pi / 180.0;
  return Vec3{std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon), std::sin(lat)};
}

geo::GeoPoint to_geo(Vec3 v) {
  const double norm = std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
  if (norm == 0.0) return geo::GeoPoint{0, 0};
  const double lat = std::asin(v.z / norm);
  const double lon = std::atan2(v.y, v.x);
  return geo::GeoPoint{lat * 180.0 / std::numbers::pi, lon * 180.0 / std::numbers::pi};
}

KMeansResult run_once(std::span<const geo::GeoPoint> points, int k, Rng& rng, int max_iters) {
  const std::size_t n = points.size();
  KMeansResult result;
  result.assignment.assign(n, 0);

  // k-means++-style seeding: first center uniform, then proportional to
  // squared distance from the nearest existing center.
  std::vector<geo::GeoPoint> centers;
  centers.push_back(points[rng.below(n)]);
  std::vector<double> d2(n, 0.0);
  while (static_cast<int>(centers.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centers) {
        const double d = geo::haversine(points[i], c).km;
        best = std::min(best, d * d);
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      centers.push_back(points[rng.below(n)]);
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(points[pick]);
  }

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_km = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = geo::haversine(points[i], centers[c]).km;
        if (d < best_km) {
          best_km = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Recompute spherical centroids; refill empty clusters with the point
    // farthest from its centroid.
    std::vector<Vec3> sums(k);
    std::vector<int> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      sums[result.assignment[i]] += to_unit(points[i]);
      counts[result.assignment[i]]++;
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        centers[c] = to_geo(sums[c]);
        continue;
      }
      std::size_t farthest = 0;
      double worst = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = geo::haversine(points[i], centers[result.assignment[i]]).km;
        if (d > worst) {
          worst = d;
          farthest = i;
        }
      }
      centers[c] = points[farthest];
      result.assignment[farthest] = c;
      changed = true;
    }
    if (!changed) break;
  }

  result.centroids = std::move(centers);
  result.inertia_km2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = geo::haversine(points[i], result.centroids[result.assignment[i]]).km;
    result.inertia_km2 += d * d;
  }
  return result;
}

}  // namespace

KMeansResult kmeans(std::span<const geo::GeoPoint> points, int k, const KMeansConfig& config) {
  Rng rng{config.seed};
  KMeansResult best;
  best.inertia_km2 = std::numeric_limits<double>::infinity();
  for (int r = 0; r < config.restarts; ++r) {
    KMeansResult candidate = run_once(points, k, rng, config.max_iterations);
    if (candidate.inertia_km2 < best.inertia_km2) best = std::move(candidate);
  }
  return best;
}

}  // namespace ranycast::partition
