#include "ranycast/partition/reopt.hpp"

#include <algorithm>
#include <limits>

#include "ranycast/core/rng.hpp"

namespace ranycast::partition {

namespace {

/// Step 2: assign each probe to the region containing its lowest-latency site.
std::vector<int> assign_probes(const ReOptInput& in, std::span<const int> site_region) {
  std::vector<int> out(in.unicast_ms.size(), 0);
  for (std::size_t p = 0; p < in.unicast_ms.size(); ++p) {
    std::size_t best_site = 0;
    double best_ms = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < in.site_cities.size(); ++s) {
      if (in.unicast_ms[p][s] < best_ms) {
        best_ms = in.unicast_ms[p][s];
        best_site = s;
      }
    }
    out[p] = site_region[best_site];
  }
  return out;
}

/// Step 3: per-country majority vote over the direct assignments.
std::map<std::string, int> country_majority(const ReOptInput& in,
                                            std::span<const int> probe_region, int k) {
  const auto& gaz = geo::Gazetteer::world();
  std::map<std::string, std::vector<int>> votes;
  for (std::size_t p = 0; p < probe_region.size(); ++p) {
    auto& v = votes[std::string(gaz.country_code(in.probe_cities[p]))];
    v.resize(static_cast<std::size_t>(k), 0);
    v[static_cast<std::size_t>(probe_region[p])]++;
  }
  std::map<std::string, int> out;
  for (const auto& [iso2, v] : votes) {
    out[iso2] = static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
  }
  return out;
}

}  // namespace

double best_in_region(const ReOptInput& input, std::span<const int> site_region,
                      std::size_t probe, int region) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < input.site_cities.size(); ++s) {
    if (site_region[s] == region) best = std::min(best, input.unicast_ms[probe][s]);
  }
  return best;
}

int ReOptResult::mapped_region(std::size_t probe_index, const ReOptInput& in) const {
  const auto& gaz = geo::Gazetteer::world();
  const auto it = country_region.find(std::string(gaz.country_code(in.probe_cities[probe_index])));
  if (it != country_region.end()) return it->second;
  return probe_region[probe_index];
}

ReOptResult reopt_partition(const ReOptInput& input, const ReOptConfig& config,
                            const PartitionEvaluator& evaluate) {
  const auto& gaz = geo::Gazetteer::world();
  std::vector<geo::GeoPoint> site_points;
  site_points.reserve(input.site_cities.size());
  for (CityId c : input.site_cities) site_points.push_back(gaz.city(c).location);

  ReOptResult best;
  double best_mean = std::numeric_limits<double>::infinity();

  for (int k = config.min_regions; k <= config.max_regions; ++k) {
    if (k > static_cast<int>(site_points.size())) break;
    KMeansConfig kc = config.kmeans;
    kc.seed = hash_combine(config.kmeans.seed, static_cast<std::uint64_t>(k));
    const KMeansResult clusters = kmeans(site_points, k, kc);

    ReOptResult candidate;
    candidate.k = k;
    candidate.site_region = clusters.assignment;
    candidate.probe_region = assign_probes(input, candidate.site_region);
    candidate.country_region = country_majority(input, candidate.probe_region, k);

    // Sweep metric: mean client latency when every probe is mapped through
    // the country-level table (the deployable configuration). An external
    // evaluator measures the candidate's real anycast deployment; the
    // fallback uses the unicast lower bound.
    double mean;
    if (evaluate) {
      mean = evaluate(candidate);
    } else {
      double total = 0.0;
      std::size_t counted = 0;
      for (std::size_t p = 0; p < input.unicast_ms.size(); ++p) {
        const int region = candidate.mapped_region(p, input);
        const double ms = best_in_region(input, candidate.site_region, p, region);
        if (ms < 1e8) {
          total += ms;
          ++counted;
        }
      }
      mean = counted > 0 ? total / static_cast<double>(counted)
                         : std::numeric_limits<double>::infinity();
    }
    best.sweep_mean_ms.push_back(mean);
    if (mean < best_mean) {
      best_mean = mean;
      // Preserve the accumulated sweep values across the winner swap.
      candidate.sweep_mean_ms = best.sweep_mean_ms;
      best = std::move(candidate);
    } else {
      // keep best, but best.sweep must keep growing — handled above since we
      // push to best.sweep_mean_ms directly.
    }
  }
  return best;
}

}  // namespace ranycast::partition
