// ReOpt: the paper's latency-based region partition and client mapping
// scheme (§6.1). Three steps:
//   1. K-Means over the testbed's site locations groups geographically
//      close sites into candidate regions;
//   2. each client is assigned to the region containing its lowest
//      unicast-latency site;
//   3. a country-level mapping assigns every country to the region the
//      majority of its clients chose, so a commercial geo-DNS (Route 53)
//      can implement the mapping.
// The region count is chosen by sweeping k and minimizing the mean client
// latency under the country-level mapping.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ranycast/core/types.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/partition/kmeans.hpp"

namespace ranycast::partition {

struct ReOptInput {
  std::vector<CityId> site_cities;
  /// unicast_ms[p][s]: unicast RTT from probe p to site s; use a large
  /// sentinel (e.g. 1e9) for unreachable pairs.
  std::vector<std::vector<double>> unicast_ms;
  /// Probe geocodes (for the country-majority step).
  std::vector<CityId> probe_cities;
};

struct ReOptConfig {
  int min_regions{3};
  int max_regions{6};
  KMeansConfig kmeans;
};

struct ReOptResult {
  int k{0};
  std::vector<int> site_region;   ///< per site index
  std::vector<int> probe_region;  ///< direct lowest-latency assignment per probe
  std::map<std::string, int> country_region;  ///< ISO2 -> region (majority)
  /// Mean client latency under the country-level mapping, for each swept k
  /// (index 0 = min_regions). The chosen k minimizes this.
  std::vector<double> sweep_mean_ms;

  /// Region a probe is mapped to by the country-level mapping (falls back
  /// to the direct assignment when its country was never seen).
  int mapped_region(std::size_t probe_index, const ReOptInput& in) const;
};

/// Scores a candidate partition; lower is better. The default (when none is
/// supplied) is the unicast lower-bound proxy: each probe's best unicast
/// site within its mapped region. A deployment-backed evaluator (e.g. the
/// Tangled study's "deploy the candidate and measure the anycast RTTs")
/// additionally sees intra-region catchment inefficiencies, which is what
/// the paper's sweep measures.
using PartitionEvaluator = std::function<double(const ReOptResult& candidate)>;

ReOptResult reopt_partition(const ReOptInput& input, const ReOptConfig& config,
                            const PartitionEvaluator& evaluate = {});

/// Latency a probe experiences under a partition when mapped to `region`:
/// its best unicast site within that region (the anycast lower bound).
double best_in_region(const ReOptInput& input, std::span<const int> site_region,
                      std::size_t probe, int region);

}  // namespace ranycast::partition
