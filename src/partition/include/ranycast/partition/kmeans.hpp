// Haversine-aware K-Means over points on the sphere (paper §6.1 step 1).
//
// Centroids are computed as normalized 3-D means of the member unit vectors
// (the spherical centroid), and assignment uses great-circle distance, so
// clusters behave sensibly across the antimeridian.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ranycast/geo/earth.hpp"

namespace ranycast::partition {

struct KMeansResult {
  std::vector<int> assignment;          ///< cluster index per input point
  std::vector<geo::GeoPoint> centroids; ///< final cluster centers
  double inertia_km2{0.0};              ///< sum of squared member distances

  int k() const noexcept { return static_cast<int>(centroids.size()); }
};

struct KMeansConfig {
  int max_iterations{100};
  /// Number of random restarts; the best (lowest-inertia) run wins.
  int restarts{8};
  std::uint64_t seed{0x6B6D};
};

/// Cluster `points` into `k` groups. Requires 1 <= k <= points.size().
KMeansResult kmeans(std::span<const geo::GeoPoint> points, int k, const KMeansConfig& config);

}  // namespace ranycast::partition
