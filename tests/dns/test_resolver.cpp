#include "ranycast/dns/resolver.hpp"

#include <gtest/gtest.h>

namespace ranycast::dns {
namespace {

QueryContext make_context(ResolverKind kind) {
  QueryContext q;
  q.client_ip = Ipv4Addr(10, 0, 0, 1);
  q.resolver.kind = kind;
  q.resolver.address = Ipv4Addr(8, 8, 8, 8);
  q.resolver.egress_city = CityId{1};
  return q;
}

TEST(EffectiveAddress, AdnsAlwaysSeesClient) {
  for (auto kind : {ResolverKind::LocalIsp, ResolverKind::PublicEcs, ResolverKind::PublicNoEcs}) {
    EXPECT_EQ(effective_address(make_context(kind), QueryMode::Adns), Ipv4Addr(10, 0, 0, 1));
  }
}

TEST(EffectiveAddress, EcsForwardsClientSlash24) {
  // RFC 7871: ECS carries a truncated subnet, not the host address.
  EXPECT_EQ(effective_address(make_context(ResolverKind::PublicEcs), QueryMode::Ldns),
            Ipv4Addr(10, 0, 0, 0));
}

TEST(EcsScope, TruncatesHostBits) {
  EXPECT_EQ(ecs_scope(Ipv4Addr(192, 168, 7, 201)), Ipv4Addr(192, 168, 7, 0));
  EXPECT_EQ(ecs_scope(Ipv4Addr(192, 168, 7, 0)), Ipv4Addr(192, 168, 7, 0));
}

TEST(EffectiveAddress, NonEcsExposesResolver) {
  EXPECT_EQ(effective_address(make_context(ResolverKind::PublicNoEcs), QueryMode::Ldns),
            Ipv4Addr(8, 8, 8, 8));
  EXPECT_EQ(effective_address(make_context(ResolverKind::LocalIsp), QueryMode::Ldns),
            Ipv4Addr(8, 8, 8, 8));
}

TEST(ResolverKind, Names) {
  EXPECT_EQ(to_string(ResolverKind::LocalIsp), "local-isp");
  EXPECT_EQ(to_string(ResolverKind::PublicEcs), "public-ecs");
  EXPECT_EQ(to_string(ResolverKind::PublicNoEcs), "public-no-ecs");
}

}  // namespace
}  // namespace ranycast::dns
