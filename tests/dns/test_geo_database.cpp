#include "ranycast/dns/geo_database.hpp"

#include <gtest/gtest.h>

#include "ranycast/topo/generator.hpp"

namespace ranycast::dns {
namespace {

class GeoDatabaseTest : public ::testing::Test {
 protected:
  GeoDatabaseTest() : world_(topo::generate_world({.seed = 3, .stub_count = 200})) {}

  GeoDatabase make_db(double wrong_country, double intl_bias, std::uint64_t seed = 1) {
    return GeoDatabase{{"test-db", wrong_country, intl_bias, 0.2, seed}, &world_.graph,
                       &registry_};
  }

  /// A probe host in the first stub AS we can find, at a known city.
  std::pair<Ipv4Addr, CityId> stub_host() {
    for (const auto& n : world_.graph.nodes()) {
      if (n.kind == topo::AsKind::Stub) {
        return {registry_.probe_ip(n.asn, 0, n.home_city), n.home_city};
      }
    }
    ADD_FAILURE() << "no stub in world";
    return {Ipv4Addr{}, kInvalidCity};
  }

  topo::World world_;
  topo::IpRegistry registry_;
};

TEST_F(GeoDatabaseTest, ZeroErrorReturnsTruth) {
  auto db = make_db(0.0, 0.0);
  const auto [ip, city] = stub_host();
  const auto country = db.country(ip);
  ASSERT_TRUE(country.has_value());
  EXPECT_EQ(*country, geo::Gazetteer::world().country_code(city));
}

TEST_F(GeoDatabaseTest, UnknownSpaceYieldsNullopt) {
  auto db = make_db(0.0, 0.0);
  EXPECT_FALSE(db.country(Ipv4Addr(1, 1, 1, 1)).has_value());
  EXPECT_FALSE(db.city_estimate(Ipv4Addr(1, 1, 1, 1)).has_value());
}

TEST_F(GeoDatabaseTest, LookupsAreDeterministicPerIp) {
  auto db = make_db(0.5, 0.5);
  const auto [ip, city] = stub_host();
  EXPECT_EQ(db.country(ip), db.country(ip));
  EXPECT_EQ(db.city_estimate(ip), db.city_estimate(ip));
}

TEST_F(GeoDatabaseTest, WrongCountryRateApproximatesConfig) {
  auto db = make_db(0.2, 0.0);
  const auto& gaz = geo::Gazetteer::world();
  int wrong = 0, total = 0;
  for (const auto& n : world_.graph.nodes()) {
    if (n.kind != topo::AsKind::Stub) continue;
    const Ipv4Addr ip = registry_.probe_ip(n.asn, 1, n.home_city);
    const auto country = db.country(ip);
    ASSERT_TRUE(country.has_value());
    ++total;
    if (*country != gaz.country_code(n.home_city)) ++wrong;
  }
  ASSERT_GT(total, 100);
  // A random wrong draw can still land on the right country, so the observed
  // rate is slightly below the configured one.
  EXPECT_NEAR(static_cast<double>(wrong) / total, 0.2, 0.06);
}

TEST_F(GeoDatabaseTest, InternationalHomeBias) {
  auto db = make_db(0.0, 1.0);
  const auto& gaz = geo::Gazetteer::world();
  // Find an international transit with a footprint city outside its home
  // country; its router there must geolocate to the home country.
  for (const auto& n : world_.graph.nodes()) {
    if (!n.international || n.kind != topo::AsKind::Transit) continue;
    for (CityId c : n.footprint) {
      if (gaz.country_code(c) == gaz.country_code(n.home_city)) continue;
      const Ipv4Addr ip = registry_.router_ip(n.asn, c);
      const auto country = db.country(ip);
      ASSERT_TRUE(country.has_value());
      EXPECT_EQ(*country, gaz.country_code(n.home_city));
      return;
    }
  }
  GTEST_SKIP() << "no international transit with out-of-home footprint";
}

TEST_F(GeoDatabaseTest, RouterIpsLocatedAtInterfaceCity) {
  auto db = make_db(0.0, 0.0);
  const auto& gaz = geo::Gazetteer::world();
  for (const auto& n : world_.graph.nodes()) {
    if (n.kind != topo::AsKind::Transit || n.international) continue;
    const CityId c = n.footprint.front();
    const Ipv4Addr ip = registry_.router_ip(n.asn, c);
    const auto country = db.country(ip);
    ASSERT_TRUE(country.has_value());
    EXPECT_EQ(*country, gaz.country_code(c));
    return;
  }
}

TEST_F(GeoDatabaseTest, CityEstimateStaysInCountryWhenCountryCorrect) {
  auto db = make_db(0.0, 0.0, 9);
  const auto& gaz = geo::Gazetteer::world();
  const auto [ip, city] = stub_host();
  const auto estimate = db.city_estimate(ip);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(gaz.country_code(*estimate), gaz.country_code(city));
}

TEST_F(GeoDatabaseTest, IndependentDatabasesDisagree) {
  auto db1 = make_db(0.3, 0.0, 111);
  auto db2 = make_db(0.3, 0.0, 222);
  int disagree = 0, total = 0;
  for (const auto& n : world_.graph.nodes()) {
    if (n.kind != topo::AsKind::Stub) continue;
    const Ipv4Addr ip = registry_.probe_ip(n.asn, 2, n.home_city);
    if (db1.country(ip) != db2.country(ip)) ++disagree;
    ++total;
  }
  EXPECT_GT(disagree, 0);
  EXPECT_LT(disagree, total);
}

}  // namespace
}  // namespace ranycast::dns
