#include "ranycast/dns/route53.hpp"

#include <gtest/gtest.h>

#include "ranycast/topo/generator.hpp"

namespace ranycast::dns {
namespace {

class Route53Test : public ::testing::Test {
 protected:
  Route53Test()
      : world_(topo::generate_world({.seed = 3, .stub_count = 200})),
        db_({"perfect", 0.0, 0.0, 0.0, 1}, &world_.graph, &registry_) {}

  /// Host IP of a stub in the given country, if any.
  std::optional<Ipv4Addr> host_in(std::string_view iso2) {
    const auto& gaz = geo::Gazetteer::world();
    for (const auto& n : world_.graph.nodes()) {
      if (n.kind != topo::AsKind::Stub) continue;
      if (gaz.country_code(n.home_city) == iso2) {
        return registry_.probe_ip(n.asn, 0, n.home_city);
      }
    }
    return std::nullopt;
  }

  topo::World world_;
  topo::IpRegistry registry_;
  GeoDatabase db_;
};

TEST_F(Route53Test, CountryRecordWins) {
  Route53Emulator r53{&db_};
  r53.set_country_record("DE", 1);
  r53.set_continent_record(geo::Continent::Europe, 2);
  r53.set_default_record(0);
  const auto host = host_in("DE");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(r53.resolve(*host), 1u);
}

TEST_F(Route53Test, ContinentFallback) {
  Route53Emulator r53{&db_};
  r53.set_continent_record(geo::Continent::Europe, 2);
  r53.set_default_record(0);
  const auto host = host_in("FR");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(r53.resolve(*host), 2u);
}

TEST_F(Route53Test, DefaultFallback) {
  Route53Emulator r53{&db_};
  r53.set_default_record(7);
  const auto host = host_in("JP");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(r53.resolve(*host), 7u);
}

TEST_F(Route53Test, NoRecordsYieldsNullopt) {
  Route53Emulator r53{&db_};
  const auto host = host_in("US");
  ASSERT_TRUE(host.has_value());
  EXPECT_FALSE(r53.resolve(*host).has_value());
}

TEST_F(Route53Test, UnknownAddressUsesDefault) {
  Route53Emulator r53{&db_};
  r53.set_default_record(3);
  EXPECT_EQ(r53.resolve(Ipv4Addr(1, 1, 1, 1)), 3u);
}

}  // namespace
}  // namespace ranycast::dns
