#include "ranycast/geoloc/rdns.hpp"

#include <gtest/gtest.h>

#include "ranycast/topo/generator.hpp"

namespace ranycast::geoloc {
namespace {

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

TEST(ParseGeoHint, ExtractsIataLabel) {
  const GeoHint h = parse_geo_hint("ae-65.core1.ams.as3356.example.net");
  EXPECT_EQ(h.kind, GeoHint::Kind::City);
  EXPECT_EQ(h.city, city("AMS"));
}

TEST(ParseGeoHint, IgnoresNonAlphaLabels) {
  const GeoHint h = parse_geo_hint("ae-65.cr1.as1234.example.net");
  EXPECT_EQ(h.kind, GeoHint::Kind::None);
}

TEST(ParseGeoHint, CcTldFallback) {
  const GeoHint h = parse_geo_hint("ae-2.bb.as9145.example.de");
  EXPECT_EQ(h.kind, GeoHint::Kind::Country);
  EXPECT_EQ(h.country, "DE");
}

TEST(ParseGeoHint, CityHintBeatsCcTld) {
  const GeoHint h = parse_geo_hint("ae-1.fra.as9145.example.de");
  EXPECT_EQ(h.kind, GeoHint::Kind::City);
  EXPECT_EQ(h.city, city("FRA"));
}

TEST(ParseGeoHint, UnknownTldIsNone) {
  EXPECT_EQ(parse_geo_hint("router.example.xx").kind, GeoHint::Kind::None);
  EXPECT_EQ(parse_geo_hint("").kind, GeoHint::Kind::None);
}

TEST(ParseGeoHint, GenericTldsDoNotMatchAsCities) {
  // "net"/"com" are 3-letter labels but not IATA codes in the gazetteer.
  EXPECT_EQ(parse_geo_hint("core1.example.net").kind, GeoHint::Kind::None);
  EXPECT_EQ(parse_geo_hint("core1.example.com").kind, GeoHint::Kind::None);
}

class RdnsOracleTest : public ::testing::Test {
 protected:
  RdnsOracleTest() : world_(topo::generate_world({.seed = 6, .stub_count = 200})) {}

  RdnsOracle make_oracle(RdnsOracle::Config cfg = {}) {
    return RdnsOracle{cfg, &world_.graph, &registry_, {{65000, "edgecastcdn.net"}}};
  }

  topo::World world_;
  topo::IpRegistry registry_;
};

TEST_F(RdnsOracleTest, NoNameForNonRouterAddresses) {
  auto oracle = make_oracle();
  EXPECT_FALSE(oracle.name_for(Ipv4Addr(1, 2, 3, 4)).has_value());
  // Probe host addresses have no PTR either.
  const auto& stub = world_.graph.nodes().back();
  const Ipv4Addr host = registry_.probe_ip(stub.asn, 0, stub.home_city);
  EXPECT_FALSE(oracle.name_for(host).has_value());
}

TEST_F(RdnsOracleTest, NamesAreDeterministic) {
  auto oracle = make_oracle();
  const auto& transit = world_.graph.nodes()[20];
  const Ipv4Addr ip = registry_.router_ip(transit.asn, transit.home_city);
  EXPECT_EQ(oracle.name_for(ip), oracle.name_for(ip));
}

TEST_F(RdnsOracleTest, IataNamesParseBackToTrueCity) {
  RdnsOracle::Config cfg;
  cfg.iata_prob = 1.0;  // force IATA hints
  cfg.cctld_prob = 0.0;
  auto oracle = make_oracle(cfg);
  int checked = 0;
  for (const auto& n : world_.graph.nodes()) {
    if (n.kind == topo::AsKind::Stub) continue;
    const Ipv4Addr ip = registry_.router_ip(n.asn, n.home_city);
    const auto name = oracle.name_for(ip);
    ASSERT_TRUE(name.has_value());
    const GeoHint hint = parse_geo_hint(*name);
    ASSERT_EQ(hint.kind, GeoHint::Kind::City) << *name;
    EXPECT_EQ(hint.city, n.home_city);
    if (++checked == 25) break;
  }
  EXPECT_EQ(checked, 25);
}

TEST_F(RdnsOracleTest, CategorySplitApproximatesConfig) {
  RdnsOracle::Config cfg;
  cfg.iata_prob = 0.5;
  cfg.cctld_prob = 0.2;
  auto oracle = make_oracle(cfg);
  int iata = 0, cctld = 0, none = 0, total = 0;
  for (const auto& n : world_.graph.nodes()) {
    if (n.kind == topo::AsKind::Stub) continue;
    for (CityId c : n.footprint) {
      const Ipv4Addr ip = registry_.router_ip(n.asn, c);
      const auto name = oracle.name_for(ip);
      ++total;
      if (!name) {
        ++none;
      } else if (parse_geo_hint(*name).kind == GeoHint::Kind::City) {
        ++iata;
      } else {
        ++cctld;
      }
    }
  }
  ASSERT_GT(total, 300);
  EXPECT_NEAR(static_cast<double>(iata) / total, 0.5, 0.06);
  EXPECT_NEAR(static_cast<double>(none) / total, 0.3, 0.06);
}

TEST_F(RdnsOracleTest, CdnRoutersUseOperatorDomain) {
  RdnsOracle::Config cfg;
  cfg.cdn_iata_prob = 1.0;
  auto oracle = make_oracle(cfg);
  const Ipv4Addr ip = registry_.router_ip(make_asn(65000), city("AMS"));
  const auto name = oracle.name_for(ip);
  ASSERT_TRUE(name.has_value());
  EXPECT_NE(name->find("edgecastcdn.net"), std::string::npos);
  EXPECT_NE(name->find("ams"), std::string::npos);
}

}  // namespace
}  // namespace ranycast::geoloc
