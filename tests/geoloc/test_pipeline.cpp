#include "ranycast/geoloc/pipeline.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::geoloc {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 600;
    config.census.total_probes = 2500;
    return lab::Lab::create(config);
  }

  PipelineTest() : lab_(make_lab()), handle_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  /// Traceroutes from all retained probes to their DNS-returned regional IP.
  std::vector<TraceObservation> observe() {
    std::vector<TraceObservation> out;
    for (const atlas::Probe* p : lab_.census().retained()) {
      const auto answer = lab_.dns_lookup(*p, *handle_, dns::QueryMode::Ldns);
      auto trace = lab_.traceroute(*p, answer.address);
      if (!trace) continue;
      out.push_back(TraceObservation{p, std::move(*trace), answer.region});
    }
    return out;
  }

  std::vector<CityId> published() const {
    std::vector<CityId> cities;
    for (const auto& iata : cdn::catalog::imperva_published_sites()) {
      cities.push_back(*geo::Gazetteer::world().find_by_iata(iata));
    }
    return cities;
  }

  EnumerationResult run(const PipelineConfig& cfg = {}) {
    const auto obs = observe();
    RdnsOracle oracle{{}, &lab_.world().graph, &lab_.registry(),
                      {{cdn::catalog::kImpervaAsn, "incapdns.net"}}};
    return enumerate_sites(obs, published_, oracle,
                           {&lab_.db(0), &lab_.db(1), &lab_.db(2)}, cfg);
  }

  lab::Lab lab_;
  const lab::DeploymentHandle* handle_;
  std::vector<CityId> published_ = published();
};

TEST_F(PipelineTest, ResolvesMajorityOfPhops) {
  const auto result = run();
  ASSERT_GT(result.total_phops(), 20u);
  const double unresolved = result.phop_fraction(Technique::Unresolved);
  // Paper Appendix B: 2.3%-9.9% of traces unresolved; p-hop-level fractions
  // are looser, but the cascade must resolve the clear majority.
  EXPECT_LT(unresolved, 0.35);
  EXPECT_GT(result.phop_fraction(Technique::Rdns), 0.3);
}

TEST_F(PipelineTest, TraceFractionsSumToOne) {
  const auto result = run();
  double phop_total = 0.0, trace_total = 0.0;
  for (int t = 0; t < static_cast<int>(kTechniqueCount); ++t) {
    phop_total += result.phop_fraction(static_cast<Technique>(t));
    trace_total += result.trace_fraction(static_cast<Technique>(t));
  }
  EXPECT_NEAR(phop_total, 1.0, 1e-9);
  EXPECT_NEAR(trace_total, 1.0, 1e-9);
}

TEST_F(PipelineTest, ResolvedLocationsAreNearTruth) {
  // For p-hops resolved via rDNS, the inferred city should be the true
  // interface city (the oracle embeds the truth for IATA-named routers).
  const auto obs = observe();
  std::unordered_map<Ipv4Addr, CityId> truth;
  for (const auto& o : obs) {
    if (o.trace.phop_valid) truth[o.trace.phop().ip] = o.trace.phop().city;
  }
  const auto result = run();
  const auto& gaz = geo::Gazetteer::world();
  for (const auto& info : result.phops) {
    if (info.technique != Technique::Rdns || !info.resolved_city) continue;
    const auto it = truth.find(info.ip);
    ASSERT_NE(it, truth.end());
    // ccTLD-resolved hops can land on the country's single published site
    // rather than the exact city; allow a small in-country displacement.
    EXPECT_LT(gaz.distance(*info.resolved_city, it->second).km, 1500.0);
  }
}

TEST_F(PipelineTest, SiteEnumerationUncoversMostDeployedSites) {
  const auto result = run();
  // Imperva-6 deploys 48 of the 50 published sites; the pipeline should
  // discover a large fraction of them (the paper uncovered 48/50).
  EXPECT_GE(result.site_regions.size(), 30u);
  // And it must not invent sites outside the published list.
  const auto& pub = published_;
  for (const auto& [site_city, regions] : result.site_regions) {
    EXPECT_NE(std::find(pub.begin(), pub.end(), site_city), pub.end());
    EXPECT_FALSE(regions.empty());
  }
}

TEST_F(PipelineTest, DetectsCrossRegionAnnouncements) {
  const auto result = run();
  // AMS/FRA/LHR announce both EMEA and RU prefixes; at least one of those
  // should be observed as a multi-region ("mixed") site.
  std::size_t mixed = 0;
  for (const auto& [site_city, regions] : result.site_regions) {
    if (regions.size() > 1) ++mixed;
  }
  EXPECT_GE(mixed, 1u);
}

TEST_F(PipelineTest, InvalidPhopsAreSkipped) {
  auto obs = observe();
  const std::size_t valid = std::count_if(obs.begin(), obs.end(), [](const TraceObservation& o) {
    return o.trace.phop_valid;
  });
  ASSERT_LT(valid, obs.size());  // some p-hops never respond
  RdnsOracle oracle{{}, &lab_.world().graph, &lab_.registry(), {}};
  const auto result = enumerate_sites(obs, published_, oracle,
                                      {&lab_.db(0), &lab_.db(1), &lab_.db(2)}, {});
  EXPECT_EQ(result.total_traces(), valid);
}

}  // namespace
}  // namespace ranycast::geoloc
