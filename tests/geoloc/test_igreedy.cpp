#include "ranycast/geoloc/igreedy.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::geoloc {
namespace {

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

TEST(Igreedy, UnicastServiceYieldsOneInstance) {
  // All probes see RTTs consistent with a single origin near Amsterdam.
  const std::vector<IgreedyMeasurement> m = {
      {city("AMS"), 2.0},    // 200 km radius - tight disc at AMS
      {city("LHR"), 10.0},   // overlaps the AMS disc
      {city("FRA"), 10.0},   // overlaps too
  };
  const auto result = igreedy(m);
  EXPECT_EQ(result.instance_count(), 1u);
  EXPECT_FALSE(result.anycast_detected());
  ASSERT_TRUE(result.instances[0].city.has_value());
  EXPECT_EQ(*result.instances[0].city, city("AMS"));
}

TEST(Igreedy, TwoDistantTightDiscsDetectAnycast) {
  const std::vector<IgreedyMeasurement> m = {
      {city("AMS"), 2.0},  // instance near AMS
      {city("SYD"), 2.0},  // instance near SYD - discs cannot overlap
  };
  const auto result = igreedy(m);
  EXPECT_EQ(result.instance_count(), 2u);
  EXPECT_TRUE(result.anycast_detected());
}

TEST(Igreedy, SmallestDiscPerProbeWins) {
  const std::vector<IgreedyMeasurement> m = {
      {city("AMS"), 50.0},
      {city("AMS"), 2.0},  // repeated measurement, better RTT
  };
  const auto result = igreedy(m);
  ASSERT_EQ(result.instance_count(), 1u);
  EXPECT_NEAR(result.instances[0].radius_km, 200.0, 1e-9);
}

TEST(Igreedy, AbsurdRadiiAreFiltered) {
  const std::vector<IgreedyMeasurement> m = {
      {city("AMS"), 400.0},  // 40,000 km radius: likely a timeout artifact
  };
  const auto result = igreedy(m);
  EXPECT_EQ(result.instance_count(), 0u);
}

TEST(Igreedy, GeolocationStaysInsideDisc) {
  const std::vector<IgreedyMeasurement> m = {{city("BRU"), 5.0}};  // 500 km
  const auto result = igreedy(m);
  ASSERT_EQ(result.instance_count(), 1u);
  ASSERT_TRUE(result.instances[0].city.has_value());
  const auto& gaz = geo::Gazetteer::world();
  EXPECT_LE(gaz.distance(*result.instances[0].city, city("BRU")).km, 500.0);
}

TEST(Igreedy, InstanceCountIsLowerBound) {
  // Three tight discs on three continents -> exactly three instances; extra
  // loose measurements overlapping them add nothing.
  const std::vector<IgreedyMeasurement> m = {
      {city("AMS"), 2.0},  {city("SYD"), 2.0},  {city("IAD"), 2.0},
      {city("LHR"), 80.0}, {city("GRU"), 120.0},
  };
  const auto result = igreedy(m);
  EXPECT_EQ(result.instance_count(), 3u);
}

class IgreedyLabTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 800;
    config.census.total_probes = 3000;
    return lab::Lab::create(config);
  }

  IgreedyLabTest() : lab_(make_lab()) {}

  lab::Lab lab_;
};

TEST_F(IgreedyLabTest, DetectsAnycastOnGlobalDeployment) {
  const auto& ns = lab_.add_deployment(cdn::catalog::imperva_ns());
  std::vector<IgreedyMeasurement> measurements;
  for (const atlas::Probe* p : lab_.census().retained()) {
    const auto rtt = lab_.ping(*p, ns.deployment.regions()[0].service_ip);
    if (rtt) measurements.push_back({p->reported_city, rtt->ms});
  }
  const auto result = igreedy(measurements);
  EXPECT_TRUE(result.anycast_detected());
  // iGreedy is a lower bound; it must not exceed the deployed site count.
  EXPECT_LE(result.instance_count(), ns.deployment.sites().size());
  EXPECT_GE(result.instance_count(), 5u);
}

TEST_F(IgreedyLabTest, MapsFewerSitesThanTraceroutePipeline) {
  // The paper's §7 finding: iGreedy uncovered fewer published sites than
  // the traceroute + rDNS pipeline. Proxy: iGreedy's instance count stays
  // below the deployed count by a sizable margin.
  const auto& ns = lab_.add_deployment(cdn::catalog::imperva_ns());
  std::vector<IgreedyMeasurement> measurements;
  for (const atlas::Probe* p : lab_.census().retained()) {
    const auto rtt = lab_.ping(*p, ns.deployment.regions()[0].service_ip);
    if (rtt) measurements.push_back({p->reported_city, rtt->ms});
  }
  const auto result = igreedy(measurements);
  EXPECT_LT(result.instance_count(), ns.deployment.sites().size());
}

}  // namespace
}  // namespace ranycast::geoloc
