#include "ranycast/atlas/census.hpp"

#include <gtest/gtest.h>

#include "ranycast/atlas/grouping.hpp"

namespace ranycast::atlas {
namespace {

class CensusTest : public ::testing::Test {
 protected:
  CensusTest() : world_(topo::generate_world({.seed = 4, .stub_count = 1200})) {}

  CensusConfig config(int probes = 4000) {
    CensusConfig c;
    c.total_probes = probes;
    return c;
  }

  topo::World world_;
  topo::IpRegistry registry_;
};

TEST_F(CensusTest, GeneratesRoughlyRequestedPopulation) {
  const auto census = ProbeCensus::generate(world_, registry_, config());
  // A few draws land in cities without stub ASes and are skipped.
  EXPECT_GE(census.probes().size(), 3800u);
  EXPECT_LE(census.probes().size(), 4000u);
}

TEST_F(CensusTest, RetentionRateMatchesPaper) {
  const auto census = ProbeCensus::generate(world_, registry_, config());
  const double rate = static_cast<double>(census.retained().size()) /
                      static_cast<double>(census.probes().size());
  // Paper: 9,700+ of 11,000+ retained (~88%).
  EXPECT_NEAR(rate, 0.88, 0.03);
}

TEST_F(CensusTest, AreaSkewIsEmeaHeavy) {
  const auto census = ProbeCensus::generate(world_, registry_, config());
  const auto by_area = census.retained_by_area();
  const auto emea = by_area[static_cast<int>(geo::Area::EMEA)];
  const auto na = by_area[static_cast<int>(geo::Area::NA)];
  const auto latam = by_area[static_cast<int>(geo::Area::LatAm)];
  const auto apac = by_area[static_cast<int>(geo::Area::APAC)];
  EXPECT_GT(emea, na);
  EXPECT_GT(na, apac);
  EXPECT_GT(apac, latam);
  EXPECT_GT(latam, 0u);
}

TEST_F(CensusTest, RetainedProbesHaveAccurateGeocodes) {
  const auto census = ProbeCensus::generate(world_, registry_, config());
  for (const Probe* p : census.retained()) {
    EXPECT_EQ(p->reported_city, p->city);
  }
}

TEST_F(CensusTest, ProbesLiveInStubAses) {
  const auto census = ProbeCensus::generate(world_, registry_, config(500));
  for (const Probe& p : census.probes()) {
    const topo::AsNode* n = world_.graph.find(p.asn);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->kind, topo::AsKind::Stub);
    EXPECT_EQ(n->home_city, p.city);
  }
}

TEST_F(CensusTest, ProbeIpsAreRegisteredAtTrueCity) {
  const auto census = ProbeCensus::generate(world_, registry_, config(500));
  for (const Probe& p : census.probes()) {
    const auto owner = registry_.owner(p.ip);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(owner->asn, p.asn);
    EXPECT_EQ(owner->city, p.city);
  }
}

TEST_F(CensusTest, ResolverMixMatchesConfig) {
  const auto census = ProbeCensus::generate(world_, registry_, config());
  int local = 0, ecs = 0, no_ecs = 0;
  for (const Probe& p : census.probes()) {
    switch (p.resolver.kind) {
      case dns::ResolverKind::LocalIsp:
        ++local;
        break;
      case dns::ResolverKind::PublicEcs:
        ++ecs;
        break;
      case dns::ResolverKind::PublicNoEcs:
        ++no_ecs;
        break;
    }
  }
  const double n = static_cast<double>(census.probes().size());
  EXPECT_NEAR(local / n, 0.70, 0.03);
  EXPECT_NEAR(ecs / n, 0.20, 0.03);
  EXPECT_NEAR(no_ecs / n, 0.10, 0.03);
}

TEST_F(CensusTest, LocalResolversAreColocated) {
  const auto census = ProbeCensus::generate(world_, registry_, config(500));
  for (const Probe& p : census.probes()) {
    if (p.resolver.kind != dns::ResolverKind::LocalIsp) continue;
    EXPECT_EQ(p.resolver.egress_city, p.city);
  }
}

TEST_F(CensusTest, AccessLatencyIsBoundedAndNonNegative) {
  const auto census = ProbeCensus::generate(world_, registry_, config(500));
  for (const Probe& p : census.probes()) {
    EXPECT_GE(p.access_extra_ms, 0.0);
    EXPECT_LE(p.access_extra_ms, 10.0);
  }
}

TEST_F(CensusTest, DeterministicForSameSeed) {
  const auto a = ProbeCensus::generate(world_, registry_, config(500));
  const auto b = ProbeCensus::generate(world_, registry_, config(500));
  ASSERT_EQ(a.probes().size(), b.probes().size());
  for (std::size_t i = 0; i < a.probes().size(); ++i) {
    EXPECT_EQ(a.probes()[i].asn, b.probes()[i].asn);
    EXPECT_EQ(a.probes()[i].city, b.probes()[i].city);
    EXPECT_EQ(a.probes()[i].ip, b.probes()[i].ip);
  }
}

}  // namespace
}  // namespace ranycast::atlas
