#include "ranycast/atlas/grouping.hpp"

#include <gtest/gtest.h>

namespace ranycast::atlas {
namespace {

Probe make_probe(std::uint32_t id, std::uint32_t asn, std::uint16_t city) {
  Probe p;
  p.id = ProbeId{id};
  p.asn = make_asn(asn);
  p.city = CityId{city};
  p.reported_city = CityId{city};
  return p;
}

TEST(Grouping, GroupsByCityAndAs) {
  const Probe a = make_probe(0, 10, 1);
  const Probe b = make_probe(1, 10, 1);  // same group as a
  const Probe c = make_probe(2, 10, 2);  // different city
  const Probe d = make_probe(3, 11, 1);  // different AS
  const std::vector<const Probe*> probes{&a, &b, &c, &d};
  const auto groups = group_probes(probes);
  ASSERT_EQ(groups.size(), 3u);
  std::size_t sizes = 0;
  for (const auto& g : groups) sizes += g.members.size();
  EXPECT_EQ(sizes, 4u);
}

TEST(Grouping, GroupOrderIsDeterministic) {
  const Probe a = make_probe(0, 10, 2);
  const Probe b = make_probe(1, 12, 1);
  const Probe c = make_probe(2, 11, 1);
  const std::vector<const Probe*> probes{&a, &b, &c};
  const auto groups = group_probes(probes);
  ASSERT_EQ(groups.size(), 3u);
  // Ordered by (city, asn).
  EXPECT_EQ(groups[0].city, CityId{1});
  EXPECT_EQ(groups[0].asn, make_asn(11));
  EXPECT_EQ(groups[1].asn, make_asn(12));
  EXPECT_EQ(groups[2].city, CityId{2});
}

TEST(Grouping, MedianOddAndEven) {
  const Probe a = make_probe(0, 10, 1);
  const Probe b = make_probe(1, 10, 1);
  const Probe c = make_probe(2, 10, 1);
  ProbeGroup g;
  g.members = {&a, &b, &c};
  const auto med3 = group_median(g, [](const Probe* p) {
    return std::optional<double>(static_cast<double>(value(p->id)) * 10.0);
  });
  ASSERT_TRUE(med3.has_value());
  EXPECT_DOUBLE_EQ(*med3, 10.0);

  g.members = {&a, &b};
  const auto med2 = group_median(g, [](const Probe* p) {
    return std::optional<double>(static_cast<double>(value(p->id)) * 10.0);
  });
  EXPECT_DOUBLE_EQ(*med2, 5.0);
}

TEST(Grouping, MedianSkipsFailedMeasurements) {
  const Probe a = make_probe(0, 10, 1);
  const Probe b = make_probe(1, 10, 1);
  ProbeGroup g;
  g.members = {&a, &b};
  const auto med = group_median(g, [](const Probe* p) -> std::optional<double> {
    if (value(p->id) == 0) return std::nullopt;
    return 42.0;
  });
  ASSERT_TRUE(med.has_value());
  EXPECT_DOUBLE_EQ(*med, 42.0);
}

TEST(Grouping, MedianEmptyWhenAllFail) {
  const Probe a = make_probe(0, 10, 1);
  ProbeGroup g;
  g.members = {&a};
  const auto med = group_median(g, [](const Probe*) -> std::optional<double> {
    return std::nullopt;
  });
  EXPECT_FALSE(med.has_value());
}

TEST(Grouping, EmptyInputYieldsNoGroups) {
  const std::vector<const Probe*> none;
  EXPECT_TRUE(group_probes(none).empty());
}

}  // namespace
}  // namespace ranycast::atlas
