#include "ranycast/core/strings.hpp"

#include <gtest/gtest.h>

namespace ranycast::strings {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(join(pieces, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"solo"}, "."), "solo");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("edgecastcdn.net", "edge"));
  EXPECT_FALSE(starts_with("edge", "edgecast"));
  EXPECT_TRUE(ends_with("router.example.de", ".de"));
  EXPECT_FALSE(ends_with("de", ".de"));
}

}  // namespace
}  // namespace ranycast::strings
