#include "ranycast/core/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ranycast {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  // All residues eventually hit.
  std::vector<bool> seen(17, false);
  for (int i = 0; i < 10000; ++i) seen[rng.below(17)] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng{13};
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{19};
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent1{23};
  Rng parent2{23};
  Rng childA = parent1.fork(1);
  Rng childA2 = parent2.fork(1);
  // Same parent state + tag -> same child.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA(), childA2());
  // Different tags -> different children.
  Rng parent3{23};
  Rng parent4{23};
  Rng c1 = parent3.fork(1);
  Rng c2 = parent4.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0x100000000ull), mix64(0x100000001ull));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace ranycast
