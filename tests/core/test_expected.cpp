#include "ranycast/core/expected.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ranycast::core {
namespace {

struct Err {
  int code{0};
  std::string what;
};

TEST(Expected, HoldsValue) {
  Expected<int, Err> e{42};
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
}

TEST(Expected, HoldsError) {
  Expected<int, Err> e = unexpected(Err{7, "broken"});
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, 7);
  EXPECT_EQ(e.error().what, "broken");
}

TEST(Expected, ValueOr) {
  Expected<int, Err> good{1};
  Expected<int, Err> bad = unexpected(Err{});
  EXPECT_EQ(good.value_or(9), 1);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Expected, ArrowOperatorReachesMembers) {
  Expected<std::string, Err> e{std::string("hello")};
  EXPECT_EQ(e->size(), 5u);
}

TEST(Expected, WorksWhenValueAndErrorConvertible) {
  // The Unexpected wrapper disambiguates same-ish types.
  Expected<std::string, std::string> value{std::string("v")};
  Expected<std::string, std::string> error = unexpected(std::string("e"));
  EXPECT_TRUE(value.has_value());
  EXPECT_FALSE(error.has_value());
  EXPECT_EQ(error.error(), "e");
}

TEST(Expected, RvalueAccessMovesOut) {
  Expected<std::string, Err> e{std::string("payload")};
  const std::string moved = std::move(e).value();
  EXPECT_EQ(moved, "payload");

  Expected<int, Err> bad = unexpected(Err{1, "gone"});
  const Err err = std::move(bad).error();
  EXPECT_EQ(err.what, "gone");
}

}  // namespace
}  // namespace ranycast::core
