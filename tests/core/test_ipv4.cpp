#include "ranycast/core/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ranycast {
namespace {

TEST(Ipv4Addr, ConstructsFromOctets) {
  const Ipv4Addr a{192, 168, 1, 42};
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 168);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 42);
  EXPECT_EQ(a.bits(), 0xC0A8012Au);
}

TEST(Ipv4Addr, FormatsDottedQuad) {
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4Addr{0u}.to_string(), "0.0.0.0");
}

TEST(Ipv4Addr, ParsesValidAddresses) {
  EXPECT_EQ(Ipv4Addr::parse("1.2.3.4"), Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0"), Ipv4Addr{0u});
  EXPECT_EQ(Ipv4Addr::parse("255.0.255.0"), Ipv4Addr(255, 0, 255, 0));
}

TEST(Ipv4Addr, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
}

TEST(Ipv4Addr, OrderingMatchesNumericValue) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(1, 0, 0, 1));
}

class Ipv4RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Ipv4RoundTrip, ParseInvertsToString) {
  const Ipv4Addr a{GetParam()};
  const auto parsed = Ipv4Addr::parse(a.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ipv4RoundTrip,
                         ::testing::Values(0u, 1u, 0xFFFFFFFFu, 0x7F000001u, 0x0A0B0C0Du,
                                           0xC0A80000u, 0x12345678u, 0xDEADBEEFu));

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p{Ipv4Addr(10, 1, 2, 3), 16};
  EXPECT_EQ(p.address(), Ipv4Addr(10, 1, 0, 0));
  EXPECT_EQ(p.length(), 16);
}

TEST(Prefix, ContainsItsRange) {
  const Prefix p{Ipv4Addr(10, 1, 0, 0), 16};
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 1, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 1, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr(10, 2, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr(9, 255, 255, 255)));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all{Ipv4Addr{0u}, 0};
  EXPECT_TRUE(all.contains(Ipv4Addr{0u}));
  EXPECT_TRUE(all.contains(Ipv4Addr{0xFFFFFFFFu}));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, SizeAndIndexing) {
  const Prefix p{Ipv4Addr(192, 0, 2, 0), 24};
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(0), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.at(255), Ipv4Addr(192, 0, 2, 255));
}

TEST(Prefix, ParsesAndFormats) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8x"));
}

TEST(Prefix, HashDistinguishesLengths) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix{Ipv4Addr(10, 0, 0, 0), 8});
  set.insert(Prefix{Ipv4Addr(10, 0, 0, 0), 16});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace ranycast
