#include "ranycast/core/flags.hpp"

#include <gtest/gtest.h>

namespace ranycast::flags {
namespace {

Parser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Parser(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const auto p = parse({"--seed=42", "--format=csv"});
  EXPECT_EQ(p.get("seed"), "42");
  EXPECT_EQ(p.get("format"), "csv");
}

TEST(Flags, SpaceForm) {
  const auto p = parse({"--seed", "42"});
  EXPECT_EQ(p.get("seed"), "42");
}

TEST(Flags, BooleanForm) {
  const auto p = parse({"--verbose"});
  EXPECT_EQ(p.get("verbose"), "true");
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("quiet"));
}

TEST(Flags, BooleanFollowedByFlag) {
  const auto p = parse({"--verbose", "--seed=1"});
  EXPECT_EQ(p.get("verbose"), "true");
  EXPECT_EQ(p.get("seed"), "1");
}

TEST(Flags, TypedDefaults) {
  const auto p = parse({"--n=7", "--x=2.5"});
  EXPECT_EQ(p.get_or("n", std::int64_t{0}), 7);
  EXPECT_EQ(p.get_or("missing", std::int64_t{9}), 9);
  EXPECT_DOUBLE_EQ(p.get_or("x", 0.0), 2.5);
  EXPECT_EQ(p.get_or("name", std::string("d")), "d");
}

TEST(Flags, Positional) {
  const auto p = parse({"input.txt", "--seed=1", "output.txt"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "output.txt");
}

TEST(Flags, UnknownDetection) {
  const auto p = parse({"--seed=1", "--typo=2"});
  const auto unknown = p.unknown({"seed", "format"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace ranycast::flags
