// Verifies the canned deployment catalog against the paper's Table 1 and
// the §4.3/§4.4 deployment findings.
#include "ranycast/cdn/catalog.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ranycast::cdn::catalog {
namespace {

const geo::Gazetteer& gaz() { return geo::Gazetteer::world(); }

std::map<geo::Area, int> area_counts(const std::vector<SiteSpec>& sites) {
  std::map<geo::Area, int> counts;
  for (const auto& s : sites) {
    const auto c = gaz().find_by_iata(s.iata);
    EXPECT_TRUE(c.has_value()) << "unknown IATA " << s.iata;
    if (c) counts[gaz().area_of_city(*c)]++;
  }
  return counts;
}

std::map<geo::Area, int> area_counts(const std::vector<std::string>& iatas) {
  std::vector<SiteSpec> sites;
  for (const auto& s : iatas) sites.push_back(SiteSpec{s, {0}});
  return area_counts(sites);
}

TEST(Catalog, Table1SiteCountsEdgio3) {
  const auto spec = edgio3();
  EXPECT_EQ(spec.sites.size(), 43u);
  const auto counts = area_counts(spec.sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 14);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 15);
  EXPECT_EQ(counts.at(geo::Area::NA), 13);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 1);
}

TEST(Catalog, Table1SiteCountsEdgio4) {
  const auto spec = edgio4();
  EXPECT_EQ(spec.sites.size(), 47u);
  const auto counts = area_counts(spec.sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 15);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 16);
  EXPECT_EQ(counts.at(geo::Area::NA), 12);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 4);
}

TEST(Catalog, Table1SiteCountsEdgioPublished) {
  const auto& sites = edgio_published_sites();
  EXPECT_EQ(sites.size(), 79u);
  const auto counts = area_counts(sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 19);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 26);
  EXPECT_EQ(counts.at(geo::Area::NA), 24);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 10);
}

TEST(Catalog, Table1SiteCountsImperva6) {
  const auto spec = imperva6();
  EXPECT_EQ(spec.sites.size(), 48u);
  const auto counts = area_counts(spec.sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 16);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 15);
  EXPECT_EQ(counts.at(geo::Area::NA), 12);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 5);
}

TEST(Catalog, Table1SiteCountsImpervaNs) {
  const auto spec = imperva_ns();
  EXPECT_EQ(spec.sites.size(), 49u);
  const auto counts = area_counts(spec.sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 17);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 15);
  EXPECT_EQ(counts.at(geo::Area::NA), 12);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 5);
}

TEST(Catalog, Table1SiteCountsImpervaPublished) {
  const auto& sites = imperva_published_sites();
  EXPECT_EQ(sites.size(), 50u);
  const auto counts = area_counts(sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 17);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 15);
  EXPECT_EQ(counts.at(geo::Area::NA), 12);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 6);
}

TEST(Catalog, Table1SiteCountsTangled) {
  const auto& sites = tangled_sites();
  EXPECT_EQ(sites.size(), 12u);
  const auto counts = area_counts(sites);
  EXPECT_EQ(counts.at(geo::Area::APAC), 2);
  EXPECT_EQ(counts.at(geo::Area::EMEA), 5);
  EXPECT_EQ(counts.at(geo::Area::NA), 3);
  EXPECT_EQ(counts.at(geo::Area::LatAm), 2);
}

TEST(Catalog, Imperva6SitesAreSubsetOfNsSites) {
  // Paper §5.3: all 48 uncovered Imperva-6 sites overlap the NS network.
  const auto cdn = imperva6();
  const auto ns = imperva_ns();
  std::set<std::string> ns_cities;
  for (const auto& s : ns.sites) ns_cities.insert(s.iata);
  for (const auto& s : cdn.sites) {
    EXPECT_TRUE(ns_cities.count(s.iata)) << s.iata << " missing from Imperva-NS";
  }
}

TEST(Catalog, RegionCountsMatchHostnameSets) {
  EXPECT_EQ(edgio3().region_names.size(), 3u);
  EXPECT_EQ(edgio4().region_names.size(), 4u);
  EXPECT_EQ(imperva6().region_names.size(), 6u);
  EXPECT_EQ(imperva_ns().region_names.size(), 1u);
}

TEST(Catalog, ImpervaRussianPrefixAnnouncedFromThreeEuropeanSites) {
  const auto spec = imperva6();
  std::set<std::string> ru_sites;
  for (const auto& s : spec.sites) {
    for (std::size_t r : s.regions) {
      if (r == imperva6_region::kRu) ru_sites.insert(s.iata);
    }
  }
  EXPECT_EQ(ru_sites, (std::set<std::string>{"AMS", "FRA", "LHR"}));
}

TEST(Catalog, ImpervaCaliforniaCrossAnnouncesApac) {
  const auto spec = imperva6();
  bool found = false;
  for (const auto& s : spec.sites) {
    if (s.iata != "SJC") continue;
    const bool apac = std::find(s.regions.begin(), s.regions.end(),
                                imperva6_region::kApac) != s.regions.end();
    const bool us = std::find(s.regions.begin(), s.regions.end(),
                              imperva6_region::kUs) != s.regions.end();
    found = apac && us;
  }
  EXPECT_TRUE(found);
}

TEST(Catalog, Edgio4MiamiIsMixedNaSa) {
  const auto spec = edgio4();
  bool found = false;
  for (const auto& s : spec.sites) {
    if (s.iata == "MIA" && s.regions.size() == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Catalog, Edgio3MapsWholeAmericasToOneRegion) {
  const auto spec = edgio3();
  EXPECT_EQ(spec.area_defaults[static_cast<int>(geo::Area::NA)],
            spec.area_defaults[static_cast<int>(geo::Area::LatAm)]);
}

TEST(Catalog, OperatorsShareAttachmentSeeds) {
  EXPECT_EQ(edgio3().attachment_seed, edgio4().attachment_seed);
  EXPECT_EQ(imperva6().attachment_seed, imperva_ns().attachment_seed);
  EXPECT_NE(edgio3().attachment_seed, imperva6().attachment_seed);
}

TEST(Catalog, HostnameSetsHaveRepresentativePlusTwelve) {
  for (const auto& set : {edgio3_hostnames(), edgio4_hostnames(), imperva6_hostnames()}) {
    EXPECT_EQ(set.hostnames.size(), 13u);
    EXPECT_FALSE(set.representative().empty());
  }
  EXPECT_EQ(edgio3_hostnames().representative(), "www.straitstimes.com");
  EXPECT_EQ(edgio4_hostnames().representative(), "www.asus.com");
  EXPECT_EQ(imperva6_hostnames().representative(), "www.stamps.com");
}

TEST(Catalog, EdgioNsOverlapsCdnOnlyPartially) {
  // Paper §4.4: Edgio-3's sites overlap 33 of the DNS network's sites,
  // Edgio-4's overlap 37 — evidence of separate networks (and the reason
  // Edgio is excluded from the §5.3 comparison).
  const auto ns = edgio_ns();
  std::set<std::string> ns_cities;
  for (const auto& s : ns.sites) ns_cities.insert(s.iata);
  auto overlap = [&](const DeploymentSpec& spec) {
    std::size_t n = 0;
    for (const auto& s : spec.sites) {
      if (ns_cities.count(s.iata)) ++n;
    }
    return n;
  };
  EXPECT_EQ(overlap(edgio3()), 33u);
  EXPECT_EQ(overlap(edgio4()), 37u);
}

TEST(Catalog, EdgioNsUsesSeparateNetworkConfiguration) {
  EXPECT_NE(edgio_ns().attachment_seed, edgio3().attachment_seed);
  EXPECT_EQ(edgio_ns().region_names.size(), 1u);  // global anycast
}

TEST(Catalog, EdgioNsSitesComeFromPublishedFootprint) {
  const auto& published = edgio_published_sites();
  const std::set<std::string> pub(published.begin(), published.end());
  for (const auto& s : edgio_ns().sites) {
    EXPECT_TRUE(pub.count(s.iata)) << s.iata;
  }
}

TEST(Catalog, ComparabilityCriterionSelectsImperva) {
  // The §5.3 counterpart choice: Imperva's CDN sites are a subset of its NS
  // network; Edgio's are not even 80% covered.
  const auto im_overlap_rate = [] {
    const auto ns = imperva_ns();
    std::set<std::string> cities;
    for (const auto& s : ns.sites) cities.insert(s.iata);
    std::size_t n = 0;
    const auto cdn = imperva6();
    for (const auto& s : cdn.sites) n += cities.count(s.iata);
    return static_cast<double>(n) / static_cast<double>(cdn.sites.size());
  }();
  const auto eg_overlap_rate = [] {
    const auto ns = edgio_ns();
    std::set<std::string> cities;
    for (const auto& s : ns.sites) cities.insert(s.iata);
    std::size_t n = 0;
    const auto cdn = edgio3();
    for (const auto& s : cdn.sites) n += cities.count(s.iata);
    return static_cast<double>(n) / static_cast<double>(cdn.sites.size());
  }();
  EXPECT_DOUBLE_EQ(im_overlap_rate, 1.0);
  EXPECT_LT(eg_overlap_rate, 0.80);
}

}  // namespace
}  // namespace ranycast::cdn::catalog
