#include "ranycast/cdn/deployment.hpp"

#include <gtest/gtest.h>

namespace ranycast::cdn {
namespace {

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

Deployment make_two_region() {
  Deployment d{"test", make_asn(65000)};
  d.add_region(Region{"west", Prefix{Ipv4Addr(198, 18, 0, 0), 24}, Ipv4Addr(198, 18, 0, 1)});
  d.add_region(Region{"east", Prefix{Ipv4Addr(198, 18, 1, 0), 24}, Ipv4Addr(198, 18, 1, 1)});
  Site s1;
  s1.city = city("IAD");
  s1.regions = {0};
  s1.attachments = {{make_asn(10), topo::Rel::Customer}};
  d.add_site(std::move(s1));
  Site s2;
  s2.city = city("FRA");
  s2.regions = {0, 1};  // mixed
  s2.attachments = {{make_asn(20), topo::Rel::Customer},
                    {make_asn(21), topo::Rel::PeerRouteServer}};
  d.add_site(std::move(s2));
  d.set_area_region(geo::Area::NA, 0);
  d.set_area_region(geo::Area::EMEA, 1);
  d.set_area_region(geo::Area::LatAm, 0);
  d.set_area_region(geo::Area::APAC, 1);
  d.set_country_region("RU", 0);
  return d;
}

TEST(Deployment, SiteIdsAreSequential) {
  const Deployment d = make_two_region();
  ASSERT_EQ(d.sites().size(), 2u);
  EXPECT_EQ(d.sites()[0].id, SiteId{0});
  EXPECT_EQ(d.sites()[1].id, SiteId{1});
}

TEST(Deployment, MixedSiteDetection) {
  const Deployment d = make_two_region();
  EXPECT_FALSE(d.sites()[0].mixed());
  EXPECT_TRUE(d.sites()[1].mixed());
  EXPECT_TRUE(d.sites()[1].announces(0));
  EXPECT_TRUE(d.sites()[1].announces(1));
  EXPECT_FALSE(d.sites()[0].announces(1));
}

TEST(Deployment, RegionOfIp) {
  const Deployment d = make_two_region();
  EXPECT_EQ(d.region_of_ip(Ipv4Addr(198, 18, 0, 1)), 0u);
  EXPECT_EQ(d.region_of_ip(Ipv4Addr(198, 18, 1, 200)), 1u);
  EXPECT_FALSE(d.region_of_ip(Ipv4Addr(10, 0, 0, 1)).has_value());
}

TEST(Deployment, OriginsForRegionExpandAttachments) {
  const Deployment d = make_two_region();
  const auto origins0 = d.origins_for_region(0);
  // Site 0 (1 attachment) + site 1 (2 attachments).
  ASSERT_EQ(origins0.size(), 3u);
  const auto origins1 = d.origins_for_region(1);
  ASSERT_EQ(origins1.size(), 2u);  // only the mixed FRA site
  EXPECT_EQ(origins1[0].site, SiteId{1});
  EXPECT_EQ(origins1[0].site_city, city("FRA"));
  EXPECT_EQ(origins1[1].neighbor_rel, topo::Rel::PeerRouteServer);
}

TEST(Deployment, IntendedRegionFollowsPolicy) {
  const Deployment d = make_two_region();
  EXPECT_EQ(d.intended_region(city("JFK")), 0u);   // NA default
  EXPECT_EQ(d.intended_region(city("CDG")), 1u);   // EMEA default
  EXPECT_EQ(d.intended_region(city("SVO")), 0u);   // RU override
  EXPECT_EQ(d.intended_region(city("GRU")), 0u);   // LatAm default
  EXPECT_EQ(d.intended_region(city("SYD")), 1u);   // APAC default
}

TEST(Deployment, GlobalDeploymentAlwaysRegionZero) {
  Deployment d{"global", make_asn(65000)};
  d.add_region(Region{"global", Prefix{Ipv4Addr(198, 19, 0, 0), 24}, Ipv4Addr(198, 19, 0, 1)});
  EXPECT_TRUE(d.is_global());
  EXPECT_EQ(d.intended_region(city("SYD")), 0u);
}

TEST(Deployment, SiteCountByArea) {
  const Deployment d = make_two_region();
  const auto counts = d.site_count_by_area();
  EXPECT_EQ(counts[static_cast<int>(geo::Area::NA)], 1u);
  EXPECT_EQ(counts[static_cast<int>(geo::Area::EMEA)], 1u);
  EXPECT_EQ(counts[static_cast<int>(geo::Area::LatAm)], 0u);
  EXPECT_EQ(counts[static_cast<int>(geo::Area::APAC)], 0u);
}

TEST(Deployment, RegionForCountryOverride) {
  const Deployment d = make_two_region();
  EXPECT_EQ(d.region_for_country("RU"), 0u);
  EXPECT_FALSE(d.region_for_country("DE").has_value());
}

}  // namespace
}  // namespace ranycast::cdn
