#include "ranycast/cdn/survey.hpp"

#include <gtest/gtest.h>

namespace ranycast::cdn::survey {
namespace {

TEST(Survey, FifteenTopCdns) { EXPECT_EQ(top_cdns().size(), 15u); }

TEST(Survey, ExactlyTwoRegionalAnycastCdns) {
  // Paper §4.1: Edgio and Imperva are the only two among the top 15.
  EXPECT_EQ(regional_anycast_count(), 2u);
  bool edgio = false, imperva = false;
  for (const auto& c : top_cdns()) {
    if (c.method != Redirection::RegionalAnycast) continue;
    if (c.name.find("Edgio") != std::string_view::npos) edgio = true;
    if (c.name.find("Imperva") != std::string_view::npos) imperva = true;
  }
  EXPECT_TRUE(edgio);
  EXPECT_TRUE(imperva);
}

TEST(Survey, SharesCoverAboutTwoThirdsOfTop10k) {
  double total = 0.0;
  for (const auto& c : top_cdns()) total += c.website_share;
  EXPECT_NEAR(total, 0.657, 0.02);  // paper: 65.7%
}

TEST(Survey, EdgioPlusImpervaShareMatchesPaper) {
  // Paper §4.2: 2.98% of top-10k websites use Edgio or Imperva.
  double share = 0.0;
  for (const auto& c : top_cdns()) {
    if (c.method == Redirection::RegionalAnycast) share += c.website_share;
  }
  EXPECT_NEAR(share, 0.0298, 0.002);
}

TEST(Survey, LooksRegionalHeuristic) {
  // Edgio-3 customers: 3 IPs vs 79 published sites -> regional.
  EXPECT_TRUE(looks_regional(3, 79));
  EXPECT_TRUE(looks_regional(4, 79));
  EXPECT_TRUE(looks_regional(6, 50));
  // Single IP: plain global anycast.
  EXPECT_FALSE(looks_regional(1, 79));
  // Tens of IPs matching the site count: DNS redirection.
  EXPECT_FALSE(looks_regional(79, 79));
  EXPECT_FALSE(looks_regional(40, 79));
}

TEST(Survey, RedirectionNames) {
  EXPECT_EQ(to_string(Redirection::RegionalAnycast), "Regional Anycast");
  EXPECT_EQ(to_string(Redirection::GlobalAnycast), "Global Anycast");
  EXPECT_EQ(to_string(Redirection::Dns), "DNS");
  EXPECT_EQ(to_string(Redirection::DnsAndGlobalAnycast), "DNS & Global Anycast");
}

}  // namespace
}  // namespace ranycast::cdn::survey
