#include "ranycast/cdn/builder.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/topo/generator.hpp"

namespace ranycast::cdn {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() : world_(topo::generate_world({.seed = 11, .stub_count = 300})) {}

  topo::World world_;
  topo::IpRegistry registry_;
};

TEST_F(BuilderTest, AllocatesDistinctRegionalPrefixes) {
  const Deployment d = build_deployment(catalog::imperva6(), world_, registry_);
  ASSERT_EQ(d.regions().size(), 6u);
  for (std::size_t i = 0; i < d.regions().size(); ++i) {
    EXPECT_TRUE(d.regions()[i].prefix.contains(d.regions()[i].service_ip));
    for (std::size_t j = i + 1; j < d.regions().size(); ++j) {
      EXPECT_NE(d.regions()[i].prefix, d.regions()[j].prefix);
    }
  }
}

TEST_F(BuilderTest, EverySiteHasAttachments) {
  const Deployment d = build_deployment(catalog::imperva6(), world_, registry_);
  for (const Site& s : d.sites()) {
    EXPECT_FALSE(s.attachments.empty())
        << "site " << value(s.id) << " has no upstream connectivity";
    EXPECT_GE(s.attachments.size(), 2u);
  }
}

TEST_F(BuilderTest, AttachmentNeighborsArePresentAtSiteCity) {
  const Deployment d = build_deployment(catalog::imperva6(), world_, registry_);
  for (const Site& s : d.sites()) {
    for (const Attachment& a : s.attachments) {
      const topo::AsNode* n = world_.graph.find(a.neighbor);
      ASSERT_NE(n, nullptr);
      EXPECT_TRUE(n->present_in(s.city));
    }
  }
}

TEST_F(BuilderTest, SharedCitiesGetIdenticalAttachments) {
  // The paper's §5.3 comparability requirement: Imperva-6 and Imperva-NS
  // share connectivity at co-located sites (the NS network may have extra
  // IXP peers on top).
  const Deployment cdn = build_deployment(catalog::imperva6(), world_, registry_);
  const Deployment ns = build_deployment(catalog::imperva_ns(), world_, registry_);
  for (const Site& cs : cdn.sites()) {
    const Site* match = nullptr;
    for (const Site& nss : ns.sites()) {
      if (nss.city == cs.city) match = &nss;
    }
    ASSERT_NE(match, nullptr);
    // Every CDN attachment also exists in the NS deployment.
    for (const Attachment& a : cs.attachments) {
      const bool found = std::any_of(
          match->attachments.begin(), match->attachments.end(), [&](const Attachment& b) {
            return b.neighbor == a.neighbor && b.rel == a.rel;
          });
      EXPECT_TRUE(found) << "attachment missing in NS at city " << value(cs.city);
    }
    EXPECT_GE(match->attachments.size(), cs.attachments.size());
  }
}

TEST_F(BuilderTest, DifferentOperatorsGetDifferentAttachments) {
  const Deployment imperva = build_deployment(catalog::imperva6(), world_, registry_);
  const Deployment edgio = build_deployment(catalog::edgio4(), world_, registry_);
  // Co-located sites of different operators should not systematically share
  // the same neighbor sets.
  int shared_cities = 0, identical = 0;
  for (const Site& a : imperva.sites()) {
    for (const Site& b : edgio.sites()) {
      if (a.city != b.city) continue;
      ++shared_cities;
      if (a.attachments.size() == b.attachments.size() &&
          std::equal(a.attachments.begin(), a.attachments.end(), b.attachments.begin(),
                     [](const Attachment& x, const Attachment& y) {
                       return x.neighbor == y.neighbor && x.rel == y.rel;
                     })) {
        ++identical;
      }
    }
  }
  ASSERT_GT(shared_cities, 10);
  EXPECT_LT(identical, shared_cities / 2);
}

TEST_F(BuilderTest, BuildIsDeterministic) {
  const Deployment a = build_deployment(catalog::edgio3(), world_, registry_);
  const Deployment b = build_deployment(catalog::edgio3(), world_, registry_);
  ASSERT_EQ(a.sites().size(), b.sites().size());
  for (std::size_t i = 0; i < a.sites().size(); ++i) {
    ASSERT_EQ(a.sites()[i].attachments.size(), b.sites()[i].attachments.size());
    for (std::size_t j = 0; j < a.sites()[i].attachments.size(); ++j) {
      EXPECT_EQ(a.sites()[i].attachments[j].neighbor, b.sites()[i].attachments[j].neighbor);
    }
  }
}

TEST_F(BuilderTest, ClientMappingPolicyIsInstalled) {
  const Deployment d = build_deployment(catalog::imperva6(), world_, registry_);
  using namespace catalog::imperva6_region;
  EXPECT_EQ(d.region_for_country("CA"), kCa);
  EXPECT_EQ(d.region_for_country("US"), kUs);
  EXPECT_EQ(d.region_for_country("RU"), kRu);
  EXPECT_EQ(d.region_for_area(geo::Area::EMEA), kEmea);
  EXPECT_EQ(d.region_for_area(geo::Area::APAC), kApac);
  EXPECT_EQ(d.region_for_area(geo::Area::LatAm), kLatAm);
}

TEST_F(BuilderTest, PreferredCarriersRepeatAcrossSites) {
  // Operators buy from the same global carriers at many sites; at least one
  // carrier must be attached at a sizable share of the deployment, which is
  // what gives BGP nearest-site customer routes within a region.
  const Deployment d = build_deployment(catalog::imperva6(), world_, registry_);
  std::map<std::uint32_t, std::size_t> sites_per_carrier;
  for (const Site& s : d.sites()) {
    for (const Attachment& a : s.attachments) {
      if (a.rel == topo::Rel::Customer) sites_per_carrier[value(a.neighbor)]++;
    }
  }
  std::size_t max_sites = 0;
  for (const auto& [asn, n] : sites_per_carrier) max_sites = std::max(max_sites, n);
  EXPECT_GE(max_sites, d.sites().size() / 4);
}

TEST_F(BuilderTest, SpotDealCarriersStillExist) {
  // ... but not every attachment is a global contract: one-off carriers are
  // the raw material of the paper's Fig. 1 pathology.
  const Deployment d = build_deployment(catalog::imperva6(), world_, registry_);
  std::map<std::uint32_t, std::size_t> sites_per_carrier;
  for (const Site& s : d.sites()) {
    for (const Attachment& a : s.attachments) {
      if (a.rel == topo::Rel::Customer) sites_per_carrier[value(a.neighbor)]++;
    }
  }
  std::size_t single_site_carriers = 0;
  for (const auto& [asn, n] : sites_per_carrier) {
    if (n == 1) ++single_site_carriers;
  }
  EXPECT_GT(single_site_carriers, 5u);
}

}  // namespace
}  // namespace ranycast::cdn
