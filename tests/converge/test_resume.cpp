// Kill/resume determinism with transient recording enabled: a chaos run
// killed at any step must resume to a report — steady AND transient
// sections — byte-identical to an uninterrupted run, at worker counts
// {1, 2, hardware}. A transient checkpoint also must not resume into a
// steady-only run (or vice versa): the convergence config is part of the
// checkpoint fingerprint.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::converge {
namespace {

namespace fs = std::filesystem;

lab::LabConfig tiny_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = 2023;
  return config;
}

Config fast_transient() {
  Config cfg;
  cfg.timers.mrai_us = 500'000;
  return cfg;
}

/// Routing-heavy timeline: withdraw/restore pairs at site, link and region
/// granularity, so the resume replay has to reconstruct both the engine's
/// undo state and the convergence plane's topology baseline.
chaos::FaultPlan failover_plan() {
  chaos::FaultPlan plan;
  plan.name = "transient-resume";
  chaos::FaultEvent e;

  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::RegionWithdraw;
  e.region = 1;
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::RegionRestore;
  e.region = 1;
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{1};
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{1};
  plan.events.push_back(e);

  return plan;
}

std::string checkpoint_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() / "ranycast_converge_resume";
  fs::create_directories(dir);
  return (dir / (tag + ".ck")).string();
}

std::string baseline_json() {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_transient(fast_transient());
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(failover_plan(), supervisor, policy);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  if (!outcome) return {};
  EXPECT_EQ(outcome->report.transient.size(), outcome->report.steps.size());
  return chaos::report_to_json(outcome->report).dump(2);
}

std::string abort_and_resume_json(std::size_t abort_at, const std::string& tag) {
  const std::string ck = checkpoint_path(tag);
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);
    engine.enable_transient(fast_transient());
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_at) supervisor.cancel();
    };
    auto first = engine.run_guarded(failover_plan(), supervisor, policy);
    EXPECT_TRUE(first.has_value()) << first.error();
    if (!first) return {};
    EXPECT_TRUE(first->report.truncated);
    EXPECT_EQ(first->report.steps.size(), abort_at);
    EXPECT_EQ(first->report.transient.size(), abort_at);
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_transient(fast_transient());
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto second = engine.run_guarded(failover_plan(), supervisor, policy);
  EXPECT_TRUE(second.has_value()) << second.error();
  if (!second) return {};
  EXPECT_TRUE(second->sweep.resumed);
  EXPECT_EQ(second->sweep.resumed_from, abort_at);
  EXPECT_FALSE(second->report.truncated);
  fs::remove(ck);
  return chaos::report_to_json(second->report).dump(2);
}

TEST(ConvergeResume, TransientReportByteIdenticalAtEveryAbortPoint) {
  const std::string expected = baseline_json();
  ASSERT_FALSE(expected.empty());
  EXPECT_NE(expected.find("\"transient\""), std::string::npos);
  const std::size_t n = failover_plan().events.size();
  for (const std::size_t abort_at : {std::size_t{1}, n / 2, n - 1}) {
    EXPECT_EQ(abort_and_resume_json(abort_at, "abort_" + std::to_string(abort_at)),
              expected)
        << "aborted after step " << abort_at;
  }
}

TEST(ConvergeResume, TransientReportByteIdenticalAcrossWorkerCounts) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string expected = baseline_json();
  const std::size_t n = failover_plan().events.size();

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);
  for (const unsigned workers : sweep) {
    pool.resize(workers);
    EXPECT_EQ(baseline_json(), expected) << workers << " workers, uninterrupted";
    EXPECT_EQ(abort_and_resume_json(n / 2, "threads_" + std::to_string(workers)),
              expected)
        << workers << " workers, abort at " << n / 2;
  }
  pool.resize(original);
}

TEST(ConvergeResume, SteadyCheckpointDoesNotResumeIntoTransientRun) {
  const std::string ck = checkpoint_path("steady_to_transient");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);  // steady-only checkpoint
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(failover_plan(), supervisor, policy).has_value());
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_transient(fast_transient());  // fingerprint now differs
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(failover_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("fingerprint"), std::string::npos) << outcome.error();
  fs::remove(ck);
}

TEST(ConvergeResume, DifferentTimerConfigDoesNotResume) {
  const std::string ck = checkpoint_path("other_timers");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);
    engine.enable_transient(fast_transient());
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(failover_plan(), supervisor, policy).has_value());
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  Config other = fast_transient();
  other.timers.mrai_us = 1'000'000;  // different transient physics
  engine.enable_transient(other);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(failover_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("fingerprint"), std::string::npos) << outcome.error();
  fs::remove(ck);
}

}  // namespace
}  // namespace ranycast::converge
