// ISSUE acceptance gate: for EVERY scenario in configs/, the transient
// plane's final converged catchments are byte-identical to the steady-state
// re-solve after each step, the oscillation detector never fires on real
// plans, a regional withdrawal produces a nonzero blackhole window with a
// finite time-to-reconverge, and the full transient report serializes to
// the same bytes at 1, 2 and hardware_concurrency workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::converge {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> scenario_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(RANYCAST_CONFIGS_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("chaos_", 0) == 0 && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

lab::LabConfig tiny_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = 2023;
  return config;
}

Config fast_transient() {
  Config cfg;
  cfg.timers.mrai_us = 500'000;  // keep the MRAI hunt short in tests
  return cfg;
}

/// Run one scenario with transient recording and return the report JSON.
std::string transient_report_json(const chaos::FaultPlan& plan) {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_transient(fast_transient());
  auto outcome = engine.run(plan);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  if (!outcome) return {};
  EXPECT_EQ(outcome->transient.size(), outcome->steps.size());
  return chaos::report_to_json(*outcome).dump(2);
}

TEST(ConvergeDifferential, EveryScenarioQuiescesOntoSteadyState) {
  const auto paths = scenario_paths();
  ASSERT_FALSE(paths.empty()) << "no chaos_*.json under " << RANYCAST_CONFIGS_DIR;

  bool saw_region_withdraw = false;
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    auto plan = chaos::load_plan(path);
    ASSERT_TRUE(plan.has_value()) << plan.error().to_string();

    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);
    engine.enable_transient(fast_transient());
    auto outcome = engine.run(*plan);
    ASSERT_TRUE(outcome.has_value()) << outcome.error();
    ASSERT_EQ(outcome->transient.size(), plan->events.size());

    for (std::size_t i = 0; i < outcome->transient.size(); ++i) {
      const StepTransient& t = outcome->transient[i];
      SCOPED_TRACE("step " + std::to_string(i) + ": " + t.event);
      // The tentpole invariant: after the transient plays out, every
      // region's catchment equals the instantaneous solver's.
      EXPECT_TRUE(t.matches_steady);
      for (const RegionTransient& r : t.regions) EXPECT_EQ(r.mismatches, 0u);
      EXPECT_FALSE(t.oscillating);
      EXPECT_TRUE(std::isfinite(t.reconverge_max_ms));
      EXPECT_GE(t.reconverge_p90_ms, t.reconverge_p50_ms);
      EXPECT_GE(t.reconverge_max_ms, t.reconverge_p90_ms);

      if (plan->events[i].kind == chaos::FaultKind::RegionWithdraw) {
        saw_region_withdraw = true;
        // Killing a whole regional prefix must black-hole someone: its
        // clients lose the route and either fail over via DNS (charged up
        // to the TTL window) or hunt to another origin.
        EXPECT_GE(t.probes_blackholed, 1u);
        EXPECT_GT(t.blackhole_max_ms, 0.0);
        EXPECT_GT(t.reconverge_max_ms, 0.0);
      }
    }
  }
  EXPECT_TRUE(saw_region_withdraw)
      << "no configs/ scenario exercises region_withdraw; the blackhole "
         "acceptance criterion went untested";
}

TEST(ConvergeDifferential, ReportBytesIdenticalAcrossWorkerCounts) {
  const auto paths = scenario_paths();
  ASSERT_FALSE(paths.empty());

  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();
  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);

  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    auto plan = chaos::load_plan(path);
    ASSERT_TRUE(plan.has_value()) << plan.error().to_string();

    pool.resize(1);
    const std::string expected = transient_report_json(*plan);
    ASSERT_FALSE(expected.empty());
    for (const unsigned workers : sweep) {
      pool.resize(workers);
      EXPECT_EQ(transient_report_json(*plan), expected) << workers << " workers";
    }
  }
  pool.resize(original);
}

TEST(ConvergeDifferential, TransientIsOptInAndOffByDefault) {
  auto plan = chaos::load_plan(std::string(RANYCAST_CONFIGS_DIR) + "/chaos_smoke.json");
  ASSERT_TRUE(plan.has_value());
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  auto outcome = engine.run(*plan);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_TRUE(outcome->transient.empty());
  // ...and the report JSON then has no transient member at all, so steady
  // reports keep their exact pre-transient serialization.
  const io::Json json = chaos::report_to_json(*outcome);
  EXPECT_EQ(json.as_object().count("transient"), 0u);
}

}  // namespace
}  // namespace ranycast::converge
