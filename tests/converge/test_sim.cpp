// PrefixSim unit tests on hand-built topologies: equivalence with the
// steady-state solver, withdrawal transients, damping, the forwarding-loop
// walker and the oscillation detector.
#include "ranycast/converge/sim.hpp"

#include <gtest/gtest.h>

#include "ranycast/bgp/solver.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::converge {
namespace {

using topo::AsKind;
using topo::Graph;
using topo::Rel;

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

constexpr Asn kCdn = make_asn(65000);

bgp::OriginAttachment attach(SiteId site, CityId c, Asn neighbor,
                             Rel rel = Rel::Customer) {
  return bgp::OriginAttachment{site, c, neighbor, rel, true};
}

/// Fast timers for unit fixtures: no MRAI stagger noise, quick quiescence.
Config test_config() {
  Config cfg;
  cfg.timers.mrai_us = 100'000;
  cfg.timers.proc_jitter_us = 5'000;
  return cfg;
}

/// The quiesced sim must agree with the solver attribute-for-attribute —
/// same catchment, class, path length and tie-break hash — for every AS.
void expect_matches_solver(const Graph& g, const PrefixSim& sim,
                           std::span<const bgp::OriginAttachment> origins,
                           std::uint64_t seed) {
  const auto outcome = bgp::solve_anycast(g, kCdn, origins, seed);
  const auto nodes = g.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bgp::Route* steady = outcome.route_for(nodes[i].asn);
    const auto view = sim.route_view(i);
    ASSERT_EQ(view.valid, steady != nullptr) << "AS index " << i;
    if (steady == nullptr) continue;
    EXPECT_EQ(view.site, steady->origin_site) << "AS index " << i;
    EXPECT_EQ(view.cls, steady->cls) << "AS index " << i;
    EXPECT_EQ(view.len, steady->path_length()) << "AS index " << i;
    EXPECT_EQ(view.ingress_km, steady->ingress_km) << "AS index " << i;
    EXPECT_EQ(view.tiebreak, steady->tiebreak) << "AS index " << i;
  }
}

/// Multi-class fixture: a customer chain, a peering and a provider descent,
/// so all three Gao-Rexford stages are exercised.
struct MultiClassFixture {
  Graph g;
  Asn a, b, p1, p2, x, stub;
  std::vector<bgp::OriginAttachment> origins;

  MultiClassFixture() {
    const CityId ams = city("AMS");
    const CityId fra = city("FRA");
    a = g.add_as(AsKind::Transit, ams, {ams, fra});
    b = g.add_as(AsKind::Transit, fra, {ams, fra});
    p1 = g.add_as(AsKind::Tier1, ams, {ams, fra});
    p2 = g.add_as(AsKind::Tier1, fra, {ams, fra});
    x = g.add_as(AsKind::Transit, fra, {fra});
    stub = g.add_as(AsKind::Stub, ams, {ams});
    g.add_transit(a, p1, {ams});   // a's provider p1
    g.add_transit(b, p2, {fra});   // b's provider p2
    g.add_peering(p1, p2, false, {ams, fra});
    g.add_transit(x, p2, {fra});
    g.add_transit(stub, p1, {ams});
    origins = {attach(SiteId{0}, ams, a), attach(SiteId{1}, fra, b)};
  }
};

TEST(ConvergeSim, ColdStartMatchesSolver) {
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  const RegionTransient t = sim.cold_start(f.origins);
  EXPECT_FALSE(t.oscillating);
  EXPECT_GT(t.events, 0u);
  expect_matches_solver(f.g, sim, f.origins, 7);
}

TEST(ConvergeSim, WithdrawalConvergesOntoResolvedState) {
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  sim.cold_start(f.origins);

  const OriginDelta withdraw{false, f.origins[0]};
  const RegionTransient t = sim.run_step({&withdraw, 1});
  EXPECT_FALSE(t.oscillating);
  EXPECT_GT(t.nodes_changed, 0u);
  EXPECT_GT(t.withdrawals_sent + t.updates_sent, 0u);
  EXPECT_GT(t.converged_us, 0u);

  const std::vector<bgp::OriginAttachment> remaining{f.origins[1]};
  expect_matches_solver(f.g, sim, remaining, 7);

  // Everyone ends on site 1; the ASes that served site 0 flipped.
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    EXPECT_EQ(sim.catchment(i), std::optional<SiteId>(SiteId{1})) << i;
  }
}

TEST(ConvergeSim, SoleOriginWithdrawalBlackholesEveryClient) {
  Graph g;
  const CityId ams = city("AMS");
  const Asn a = g.add_as(AsKind::Transit, ams, {ams});
  const Asn p = g.add_as(AsKind::Tier1, ams, {ams});
  const Asn stub = g.add_as(AsKind::Stub, ams, {ams});
  g.add_transit(a, p, {ams});
  g.add_transit(stub, p, {ams});
  const bgp::OriginAttachment o = attach(SiteId{0}, ams, a);

  Config cfg = test_config();
  cfg.dns_failover_us = 30'000'000;
  PrefixSim sim(g, kCdn, 3, cfg);
  sim.cold_start({&o, 1});
  ASSERT_TRUE(sim.has_route(*g.index_of(stub)));

  const OriginDelta withdraw{false, o};
  const RegionTransient t = sim.run_step({&withdraw, 1});
  EXPECT_FALSE(t.oscillating);
  // No other origin exists: every previously routed AS goes dark and stays
  // dark, so each is charged the full DNS failover window.
  EXPECT_EQ(t.nodes_dark_at_end, 3u);
  EXPECT_EQ(t.nodes_blackholed, 3u);
  EXPECT_EQ(t.max_blackhole_us, cfg.dns_failover_us);
  for (const NodeTimeline& tl : sim.timelines()) {
    EXPECT_TRUE(tl.routed_initially);
    EXPECT_FALSE(tl.routed_finally);
    EXPECT_TRUE(tl.dark_at_end);
    EXPECT_EQ(tl.blackhole_us, cfg.dns_failover_us);
  }
}

TEST(ConvergeSim, AnnouncementRestoresService) {
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  const std::vector<bgp::OriginAttachment> only_b{f.origins[1]};
  sim.cold_start(only_b);

  const OriginDelta announce{true, f.origins[0]};
  const RegionTransient t = sim.run_step({&announce, 1});
  EXPECT_FALSE(t.oscillating);
  expect_matches_solver(f.g, sim, f.origins, 7);
}

TEST(ConvergeSim, LinkFailureDiscoveredFromGraphState) {
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  sim.cold_start(f.origins);

  // The engine flips graph state; the sim has to notice on its own.
  Graph& g = f.g;
  ASSERT_TRUE(g.set_link_state(f.a, f.p1, false));
  const RegionTransient down = sim.run_step({});
  EXPECT_FALSE(down.oscillating);
  EXPECT_GT(down.nodes_changed, 0u);
  expect_matches_solver(g, sim, f.origins, 7);

  ASSERT_TRUE(g.set_link_state(f.a, f.p1, true));
  const RegionTransient up = sim.run_step({});
  EXPECT_FALSE(up.oscillating);
  expect_matches_solver(g, sim, f.origins, 7);
}

TEST(ConvergeSim, QuiescentStepIsSilent) {
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  sim.cold_start(f.origins);
  // Nothing changed: no update should flow and nothing should flip.
  const RegionTransient t = sim.run_step({});
  EXPECT_EQ(t.updates_sent, 0u);
  EXPECT_EQ(t.withdrawals_sent, 0u);
  EXPECT_EQ(t.nodes_changed, 0u);
  EXPECT_EQ(t.rib_changes, 0u);
}

TEST(ConvergeSim, RepeatedStepsStayByteStable) {
  // Withdraw/restore cycles must reproduce the same transients every cycle:
  // the epoch reset has to clear all control state and the arena compaction
  // must not perturb route attributes.
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  sim.cold_start(f.origins);

  const OriginDelta withdraw{false, f.origins[0]};
  const OriginDelta announce{true, f.origins[0]};
  const RegionTransient w1 = sim.run_step({&withdraw, 1});
  const RegionTransient a1 = sim.run_step({&announce, 1});
  for (int cycle = 0; cycle < 3; ++cycle) {
    const RegionTransient w = sim.run_step({&withdraw, 1});
    const RegionTransient a = sim.run_step({&announce, 1});
    EXPECT_EQ(w.events, w1.events) << cycle;
    EXPECT_EQ(w.rib_changes, w1.rib_changes) << cycle;
    EXPECT_EQ(w.converged_us, w1.converged_us) << cycle;
    EXPECT_EQ(w.max_blackhole_us, w1.max_blackhole_us) << cycle;
    EXPECT_EQ(a.events, a1.events) << cycle;
    EXPECT_EQ(a.rib_changes, a1.rib_changes) << cycle;
    EXPECT_EQ(a.converged_us, a1.converged_us) << cycle;
  }
  expect_matches_solver(f.g, sim, f.origins, 7);
}

TEST(ConvergeSim, DampingSuppressesFlappingSessionThenRecovers) {
  // Route changes ride into `stub`'s session from p1 every time the remote
  // a--p1 link flaps; the penalty accumulates on that stable session until
  // it suppresses, and the reuse timer must bring the route back once the
  // flapping ends.
  Graph g;
  const CityId ams = city("AMS");
  const CityId fra = city("FRA");
  const Asn a = g.add_as(AsKind::Transit, ams, {ams});
  const Asn b = g.add_as(AsKind::Transit, fra, {ams, fra});
  const Asn p1 = g.add_as(AsKind::Tier1, ams, {ams, fra});
  const Asn p2 = g.add_as(AsKind::Tier1, fra, {ams, fra});
  const Asn stub = g.add_as(AsKind::Stub, ams, {ams, fra});
  g.add_transit(a, p1, {ams});  // short path: a -> p1
  g.add_transit(a, b, {ams});   // long path: a -> b -> p2
  g.add_transit(b, p2, {fra});
  g.add_transit(stub, p1, {ams});
  g.add_transit(stub, p2, {fra});
  const bgp::OriginAttachment o = attach(SiteId{0}, ams, a);

  Config cfg = test_config();
  cfg.damping.enabled = true;
  cfg.damping.flap_penalty = 1000.0;
  cfg.damping.suppress_threshold = 1500.0;
  cfg.damping.reuse_threshold = 750.0;
  cfg.damping.half_life_us = 2'000'000;
  PrefixSim sim(g, kCdn, 11, cfg);
  sim.cold_start({&o, 1});

  const TimedLinkFlip flaps[] = {
      {1'000'000, a, p1, false},
      {2'000'000, a, p1, true},
      {3'000'000, a, p1, false},
      {4'000'000, a, p1, true},
  };
  const RegionTransient t = sim.run_step({}, flaps);
  EXPECT_FALSE(t.oscillating);
  EXPECT_GT(t.suppressed, 0u);
  // After the reuse timer fires the quiesced state is damping-free and must
  // equal the solver's.
  expect_matches_solver(g, sim, {&o, 1}, 11);
}

TEST(ConvergeSim, OscillationDetectorFlagsMraiRace) {
  MultiClassFixture f;
  Config cfg = test_config();
  // Budget sized so the cold start fits comfortably but a 500-flip storm
  // (500 LinkFlip events alone, before any BGP traffic) cannot.
  cfg.max_events = 300;
  PrefixSim sim(f.g, kCdn, 7, cfg);
  const RegionTransient cold = sim.cold_start(f.origins);
  ASSERT_FALSE(cold.oscillating);
  ASSERT_LT(cold.events, cfg.max_events);

  std::vector<TimedLinkFlip> storm;
  for (int i = 0; i < 500; ++i) {
    storm.push_back(TimedLinkFlip{static_cast<std::uint64_t>(1000 * (i + 1)), f.a, f.p1,
                                  i % 2 == 1});
  }
  const RegionTransient t = sim.run_step({}, storm);
  EXPECT_TRUE(t.oscillating);
  EXPECT_EQ(t.events, cfg.max_events + 1);  // stopped right past the budget

  // The detector terminates the run cleanly: the next (calm) step repairs
  // the overlay from graph state and reconverges onto the solver's answer.
  const RegionTransient calm = sim.run_step({});
  EXPECT_FALSE(calm.oscillating);
  expect_matches_solver(f.g, sim, f.origins, 7);
}

TEST(ConvergeSim, FiniteFlapScheduleQuiescesUnderDefaultBudget) {
  MultiClassFixture f;
  PrefixSim sim(f.g, kCdn, 7, test_config());
  sim.cold_start(f.origins);
  const TimedLinkFlip flaps[] = {
      {500'000, f.a, f.p1, false},
      {1'500'000, f.a, f.p1, true},
      {2'500'000, f.a, f.p1, false},
      {3'500'000, f.a, f.p1, true},
  };
  const RegionTransient t = sim.run_step({}, flaps);
  EXPECT_FALSE(t.oscillating);
  expect_matches_solver(f.g, sim, f.origins, 7);
}

TEST(ForwardingCycle, TerminatingWalkReturnsEmpty) {
  // 0 -> 1 -> 2 -> origin(-2); 3 has no route (-1).
  const std::int32_t nh[] = {1, 2, -2, -1};
  EXPECT_TRUE(detail::forwarding_cycle(nh, 0).empty());
  EXPECT_TRUE(detail::forwarding_cycle(nh, 2).empty());
  EXPECT_TRUE(detail::forwarding_cycle(nh, 3).empty());
}

TEST(ForwardingCycle, ReturnsCycleMembersOnly) {
  // 4 -> 0 -> 1 -> 2 -> 0 : cycle is {0, 1, 2}, entered via tail node 4.
  const std::int32_t nh[] = {1, 2, 0, -1, 0};
  const auto from_tail = detail::forwarding_cycle(nh, 4);
  EXPECT_EQ(from_tail, (std::vector<std::uint32_t>{0, 1, 2}));
  const auto from_member = detail::forwarding_cycle(nh, 1);
  EXPECT_EQ(from_member, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(ForwardingCycle, SelfLoop) {
  const std::int32_t nh[] = {0};
  EXPECT_EQ(detail::forwarding_cycle(nh, 0), (std::vector<std::uint32_t>{0}));
}

}  // namespace
}  // namespace ranycast::converge
