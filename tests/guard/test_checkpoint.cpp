// Checkpoint envelope: exact round trips, and rejection of every kind of
// damage (truncation, bit flips, foreign files, other versions, other
// experiments) before any payload byte is trusted.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <vector>

#include "ranycast/core/crc32.hpp"
#include "ranycast/guard/checkpoint.hpp"

namespace ranycast::guard {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ranycast_guard_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<std::uint8_t> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  /// Recompute the trailing CRC after tampering with the body, so the test
  /// exercises the *semantic* check (version/kind/fingerprint) rather than
  /// tripping over the CRC first.
  static void refresh_crc(std::vector<std::uint8_t>& bytes) {
    const std::size_t body = bytes.size() - 4;
    const std::uint32_t crc = core::crc32(bytes.data(), body);
    for (std::size_t i = 0; i < 4; ++i) {
      bytes[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    }
  }

  fs::path dir_;
};

TEST(ByteCodec, IntegersRoundTripLittleEndian) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
  // Explicit wire format: u16 0x1234 is 34 12.
  EXPECT_EQ(w.data()[1], 0x34);
  EXPECT_EQ(w.data()[2], 0x12);
}

TEST(ByteCodec, DoublesRoundTripBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -1234.56789,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  ByteWriter w;
  for (double v : values) w.f64(v);
  ByteReader r(w.data());
  for (double v : values) {
    const double back = r.f64();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0) << v;
  }
  EXPECT_TRUE(r.ok());
}

TEST(ByteCodec, StringsRoundTrip) {
  ByteWriter w;
  w.str("");
  w.str("site_withdraw site=3");
  w.str(std::string(1, '\0') + "binary");
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "site_withdraw site=3");
  EXPECT_EQ(r.str(), std::string(1, '\0') + "binary");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteCodec, UnderflowLatchesNotOk) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u64(), 0u);  // short read returns zero …
  EXPECT_FALSE(r.ok());    // … and latches failure
  EXPECT_EQ(r.u16(), 0u);  // everything after stays zero
  EXPECT_FALSE(r.ok());
}

TEST_F(CheckpointTest, RoundTripReturnsExactPayload) {
  ByteWriter payload;
  payload.u64(42);
  payload.str("nine steps of chaos");
  payload.f64(3.14159);
  const std::string p = path("ck.bin");
  auto written =
      write_checkpoint(p, CheckpointKind::ChaosTimeline, 0xFEEDFACE, payload.data());
  ASSERT_TRUE(written.has_value()) << written.error().to_string();

  auto back = read_checkpoint(p, CheckpointKind::ChaosTimeline, 0xFEEDFACE);
  ASSERT_TRUE(back.has_value()) << back.error().to_string();
  EXPECT_EQ(*back, payload.data());
  // The tmp staging file was renamed away, not left behind.
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(CheckpointTest, OverwriteReplacesAtomically) {
  const std::string p = path("ck.bin");
  ByteWriter first;
  first.u64(1);
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::MeasurementSweep, 7, first.data()));
  ByteWriter second;
  second.u64(2);
  second.u64(3);
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::MeasurementSweep, 7, second.data()));
  auto back = read_checkpoint(p, CheckpointKind::MeasurementSweep, 7);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, second.data());
}

TEST_F(CheckpointTest, MissingFileIsIoError) {
  auto result = read_checkpoint(path("absent.bin"), CheckpointKind::ChaosTimeline, 1);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::Io);
}

TEST_F(CheckpointTest, EveryBitFlipIsRejected) {
  ByteWriter payload;
  payload.u64(99);
  const std::string p = path("ck.bin");
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::ChaosTimeline, 5, payload.data()));
  const auto pristine = slurp(p);
  // Flip one bit at a time across the whole file — envelope, payload and
  // CRC alike — and require the reader to refuse every mutant.
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    auto mutant = pristine;
    mutant[i] ^= 0x01;
    spit(p, mutant);
    auto result = read_checkpoint(p, CheckpointKind::ChaosTimeline, 5);
    EXPECT_FALSE(result.has_value()) << "flip at byte " << i;
  }
}

TEST_F(CheckpointTest, TruncationIsCorrupt) {
  ByteWriter payload;
  for (int i = 0; i < 16; ++i) payload.u64(static_cast<std::uint64_t>(i));
  const std::string p = path("ck.bin");
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::StabilityTrials, 11, payload.data()));
  const auto pristine = slurp(p);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{27},
                                 pristine.size() - 5, pristine.size() - 1}) {
    spit(p, {pristine.begin(), pristine.begin() + static_cast<std::ptrdiff_t>(keep)});
    auto result = read_checkpoint(p, CheckpointKind::StabilityTrials, 11);
    ASSERT_FALSE(result.has_value()) << "kept " << keep << " bytes";
    EXPECT_EQ(result.error().kind, GuardErrorKind::Corrupt) << "kept " << keep;
  }
}

TEST_F(CheckpointTest, ForeignFileIsCorrupt) {
  const std::string p = path("ck.bin");
  spit(p, {'{', '"', 'n', 'o', 't', ' ', 'a', ' ', 'c', 'h', 'e', 'c', 'k', 'p', 'o',
           'i', 'n', 't', '"', '}', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  auto result = read_checkpoint(p, CheckpointKind::ChaosTimeline, 1);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::Corrupt);
}

TEST_F(CheckpointTest, OtherFormatVersionIsVersionMismatch) {
  ByteWriter payload;
  payload.u64(1);
  const std::string p = path("ck.bin");
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::ChaosTimeline, 5, payload.data()));
  auto bytes = slurp(p);
  bytes[4] = static_cast<std::uint8_t>(kCheckpointFormatVersion + 1);  // format u32
  refresh_crc(bytes);
  spit(p, bytes);
  auto result = read_checkpoint(p, CheckpointKind::ChaosTimeline, 5);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::VersionMismatch);
}

TEST_F(CheckpointTest, OtherKindIsRejected) {
  ByteWriter payload;
  payload.u64(1);
  const std::string p = path("ck.bin");
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::ChaosTimeline, 5, payload.data()));
  auto result = read_checkpoint(p, CheckpointKind::StabilityTrials, 5);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::Corrupt);
}

TEST_F(CheckpointTest, OtherFingerprintIsFingerprintMismatch) {
  ByteWriter payload;
  payload.u64(1);
  const std::string p = path("ck.bin");
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::ChaosTimeline, 5, payload.data()));
  auto result = read_checkpoint(p, CheckpointKind::ChaosTimeline, 6);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::FingerprintMismatch);
  // The message names both fingerprints so the operator can see which
  // experiment the file actually belongs to.
  EXPECT_NE(result.error().message.find("0x"), std::string::npos);
}

TEST_F(CheckpointTest, EmptyPayloadIsValid) {
  const std::string p = path("ck.bin");
  ASSERT_TRUE(write_checkpoint(p, CheckpointKind::MeasurementSweep, 0, {}));
  auto back = read_checkpoint(p, CheckpointKind::MeasurementSweep, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST_F(CheckpointTest, ExistsProbe) {
  EXPECT_FALSE(checkpoint_exists(path("absent.bin")));
  ASSERT_TRUE(write_checkpoint(path("ck.bin"), CheckpointKind::ChaosTimeline, 1, {}));
  EXPECT_TRUE(checkpoint_exists(path("ck.bin")));
  EXPECT_FALSE(checkpoint_exists(dir_.string()));  // a directory is not a checkpoint
}

}  // namespace
}  // namespace ranycast::guard
