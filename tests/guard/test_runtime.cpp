// Supervisor and sweep semantics: deadlines stop runs at step boundaries,
// the watchdog turns silence into a Stalled failure, cancellation carries
// its reason, and checkpointed sweeps resume without re-processing items.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ranycast/guard/runtime.hpp"
#include "ranycast/guard/sweep.hpp"

namespace ranycast::guard {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  const auto dir = fs::temp_directory_path() / "ranycast_guard_runtime";
  fs::create_directories(dir);
  return (dir / name).string();
}

TEST(Supervisor, NoLimitsNeverStops) {
  Supervisor supervisor;
  EXPECT_FALSE(supervisor.should_stop());
  EXPECT_EQ(supervisor.stop_reason(), StopReason::None);
}

TEST(Supervisor, CancelStopsWithReason) {
  Supervisor supervisor;
  supervisor.cancel();
  EXPECT_TRUE(supervisor.should_stop());
  EXPECT_EQ(supervisor.stop_reason(), StopReason::Cancelled);
  EXPECT_EQ(supervisor.stop_error().kind, GuardErrorKind::Cancelled);
}

TEST(Supervisor, DeadlineIsEnforcedInline) {
  RunLimits limits;
  limits.deadline_s = 0.01;
  Supervisor supervisor(limits);
  // Spin on should_stop() like a step loop would; the deadline must trip it
  // even if the watchdog thread never got scheduled.
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (!supervisor.should_stop() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(supervisor.should_stop());
  EXPECT_EQ(supervisor.stop_reason(), StopReason::DeadlineExpired);
  EXPECT_EQ(supervisor.stop_error().kind, GuardErrorKind::DeadlineExpired);
}

TEST(Supervisor, DeadlineCancelsMidStepViaWatchdog) {
  RunLimits limits;
  limits.deadline_s = 0.02;
  limits.poll_interval_s = 0.002;
  Supervisor supervisor(limits);
  // A "step" that never checks should_stop(): only the watchdog can reach
  // it, through the process-wide cancel flag installed by the supervisor.
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (!supervisor.token().stop_requested() &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(supervisor.token().stop_requested());
  EXPECT_EQ(supervisor.stop_reason(), StopReason::DeadlineExpired);
}

TEST(Supervisor, SilenceTripsTheStallWatchdog) {
  RunLimits limits;
  limits.stall_timeout_s = 0.05;
  limits.poll_interval_s = 0.005;
  Supervisor supervisor(limits);
  // Heartbeat a few times to prove progress resets the stall clock …
  for (int i = 0; i < 3; ++i) {
    supervisor.heartbeat();
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(supervisor.should_stop()) << "heartbeats kept arriving";
  }
  // … then go silent and expect the watchdog to pull the flag.
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (!supervisor.token().stop_requested() &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(supervisor.should_stop());
  EXPECT_EQ(supervisor.stop_reason(), StopReason::Stalled);
  EXPECT_EQ(supervisor.stop_error().kind, GuardErrorKind::Stalled);
}

TEST(Sweep, ProcessesEveryItemInOrder) {
  Supervisor supervisor;
  CheckpointPolicy policy;  // no checkpointing
  std::vector<std::size_t> seen;
  SweepHooks hooks;
  hooks.process = [&](std::size_t i) { seen.push_back(i); };
  auto result = run_sweep(5, 1, supervisor, policy, hooks);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(result->completed, 5u);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Sweep, CancelMidSweepRecordsPartialProgress) {
  Supervisor supervisor;
  CheckpointPolicy policy;
  SweepHooks hooks;
  std::size_t processed = 0;
  hooks.process = [&](std::size_t) { ++processed; };
  policy.after_step = [&](std::size_t done, std::size_t) {
    if (done == 3) supervisor.cancel();
  };
  auto result = run_sweep(10, 1, supervisor, policy, hooks);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete());
  EXPECT_EQ(result->completed, 3u);
  EXPECT_EQ(processed, 3u);
  EXPECT_EQ(result->stopped, StopReason::Cancelled);
}

TEST(Sweep, ResumeSkipsProcessedItems) {
  const std::string ck = temp_path("sweep_resume.bin");
  fs::remove(ck);
  constexpr std::uint64_t kFp = 0xC0FFEE;

  // First run: accumulate squares, abort (cleanly) after 4 of 10 items.
  std::vector<std::uint64_t> acc;
  SweepHooks hooks;
  hooks.process = [&](std::size_t i) { acc.push_back(i * i); };
  hooks.save = [&](ByteWriter& w) {
    w.u64(acc.size());
    for (auto v : acc) w.u64(v);
  };
  hooks.load = [&](ByteReader& r) {
    acc.assign(r.u64(), 0);
    for (auto& v : acc) v = r.u64();
    return r.ok() && r.at_end();
  };
  {
    Supervisor supervisor;
    CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 4) supervisor.cancel();
    };
    auto first = run_sweep(10, kFp, supervisor, policy, hooks);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->completed, 4u);
  }

  // Second run: must load the 4 accumulated squares and process only 5..9.
  acc.clear();
  std::vector<std::size_t> processed;
  hooks.process = [&](std::size_t i) {
    processed.push_back(i);
    acc.push_back(i * i);
  };
  Supervisor supervisor;
  CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto second = run_sweep(10, kFp, supervisor, policy, hooks);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  EXPECT_TRUE(second->resumed);
  EXPECT_EQ(second->resumed_from, 4u);
  EXPECT_TRUE(second->complete());
  EXPECT_EQ(processed, (std::vector<std::size_t>{4, 5, 6, 7, 8, 9}));
  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 10; ++i) expected.push_back(i * i);
  EXPECT_EQ(acc, expected);
  fs::remove(ck);
}

TEST(Sweep, ResumeWithWrongFingerprintFails) {
  const std::string ck = temp_path("sweep_fp.bin");
  fs::remove(ck);
  SweepHooks hooks;
  hooks.process = [](std::size_t) {};
  hooks.save = [](ByteWriter&) {};
  hooks.load = [](ByteReader&) { return true; };
  {
    Supervisor supervisor;
    CheckpointPolicy policy;
    policy.path = ck;
    auto first = run_sweep(3, 1111, supervisor, policy, hooks);
    ASSERT_TRUE(first.has_value());
  }
  Supervisor supervisor;
  CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto second = run_sweep(3, 2222, supervisor, policy, hooks);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().kind, GuardErrorKind::FingerprintMismatch);
  fs::remove(ck);
}

TEST(Sweep, ResumeWithRejectedPayloadIsCorrupt) {
  const std::string ck = temp_path("sweep_reject.bin");
  fs::remove(ck);
  SweepHooks hooks;
  hooks.process = [](std::size_t) {};
  hooks.save = [](ByteWriter& w) { w.u64(7); };
  {
    Supervisor supervisor;
    CheckpointPolicy policy;
    policy.path = ck;
    ASSERT_TRUE(run_sweep(3, 1, supervisor, policy, hooks).has_value());
  }
  hooks.load = [](ByteReader&) { return false; };  // caller rejects the payload
  Supervisor supervisor;
  CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto result = run_sweep(3, 1, supervisor, policy, hooks);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::Corrupt);
  fs::remove(ck);
}

TEST(Sweep, CheckpointCadenceSkipsIntermediateSteps) {
  const std::string ck = temp_path("sweep_cadence.bin");
  fs::remove(ck);
  std::size_t saves = 0;
  SweepHooks hooks;
  hooks.process = [](std::size_t) {};
  hooks.save = [&](ByteWriter&) { ++saves; };
  Supervisor supervisor;
  CheckpointPolicy policy;
  policy.path = ck;
  policy.every = 4;
  auto result = run_sweep(10, 1, supervisor, policy, hooks);
  ASSERT_TRUE(result.has_value());
  // Steps 4, 8 hit the cadence; step 10 is the final step, always persisted.
  EXPECT_EQ(saves, 3u);
  fs::remove(ck);
}

TEST(Sweep, ResumeOfFinishedSweepProcessesNothing) {
  const std::string ck = temp_path("sweep_done.bin");
  fs::remove(ck);
  SweepHooks hooks;
  std::size_t processed = 0;
  hooks.process = [&](std::size_t) { ++processed; };
  hooks.save = [](ByteWriter&) {};
  hooks.load = [](ByteReader&) { return true; };
  {
    Supervisor supervisor;
    CheckpointPolicy policy;
    policy.path = ck;
    ASSERT_TRUE(run_sweep(4, 9, supervisor, policy, hooks).has_value());
  }
  EXPECT_EQ(processed, 4u);
  Supervisor supervisor;
  CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto again = run_sweep(4, 9, supervisor, policy, hooks);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->complete());
  EXPECT_TRUE(again->resumed);
  EXPECT_EQ(processed, 4u) << "no item may run twice";
  fs::remove(ck);
}

}  // namespace
}  // namespace ranycast::guard
