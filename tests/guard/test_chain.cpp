// Checkpoint lineage: rotation and pruning, self-healing reads (quarantine
// + fallback), manifest rebuild from a directory scan, legacy single-file
// adoption, the fingerprint hard-stop, offline verification, and the
// transient-I/O retry loop feeding it all.
#include "ranycast/guard/chain.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ranycast/guard/checkpoint.hpp"
#include "ranycast/guard/runtime.hpp"
#include "ranycast/vfs/fault.hpp"

namespace ranycast::guard {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFp = 0x5EED5EED5EED5EEDull;
constexpr CheckpointKind kKind = CheckpointKind::MeasurementSweep;

std::string chain_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("ranycast_chain_test." + std::to_string(::getpid())) / tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return (dir / "run.ck").string();
}

std::vector<std::uint8_t> payload_of(std::uint8_t marker) {
  return std::vector<std::uint8_t>(64, marker);
}

std::string gen_file(const std::string& ck, std::uint64_t gen) {
  return ck + ".g" + std::to_string(gen);
}

void corrupt_byte(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  char byte{};
  f.seekg(offset);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(offset);
  f.write(&byte, 1);
}

TEST(CheckpointChain, WriteRotatesAndPrunes) {
  const std::string ck = chain_path("rotate");
  CheckpointChain chain(ck, /*keep=*/3);
  for (std::uint8_t i = 1; i <= 5; ++i) {
    auto gen = chain.write(kKind, kFp, payload_of(i));
    ASSERT_TRUE(gen.has_value()) << gen.error().to_string();
    EXPECT_EQ(*gen, i);
  }
  EXPECT_TRUE(fs::exists(ck));  // the manifest
  EXPECT_FALSE(fs::exists(gen_file(ck, 1)));
  EXPECT_FALSE(fs::exists(gen_file(ck, 2)));
  EXPECT_TRUE(fs::exists(gen_file(ck, 3)));
  EXPECT_TRUE(fs::exists(gen_file(ck, 4)));
  EXPECT_TRUE(fs::exists(gen_file(ck, 5)));
}

TEST(CheckpointChain, ReadReturnsNewestGeneration) {
  const std::string ck = chain_path("read_newest");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  CheckpointChain reader(ck, 3);
  auto got = reader.read(kKind, kFp);
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  EXPECT_EQ(got->payload, payload_of(4));
  EXPECT_EQ(got->generation, 4u);
  EXPECT_EQ(got->fallbacks, 0u);
  EXPECT_EQ(got->quarantined, 0u);
  EXPECT_FALSE(got->legacy);
  EXPECT_FALSE(got->manifest_rebuilt);
}

TEST(CheckpointChain, CorruptNewestIsQuarantinedWithFallback) {
  const std::string ck = chain_path("fallback");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  corrupt_byte(gen_file(ck, 3), 32);  // payload byte -> CRC mismatch

  CheckpointChain reader(ck, 3);
  auto got = reader.read(kKind, kFp);
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  EXPECT_EQ(got->payload, payload_of(2));
  EXPECT_EQ(got->generation, 2u);
  EXPECT_EQ(got->fallbacks, 1u);
  EXPECT_EQ(got->quarantined, 1u);
  EXPECT_FALSE(fs::exists(gen_file(ck, 3)));
  EXPECT_TRUE(fs::exists(gen_file(ck, 3) + ".quarantined"));
}

TEST(CheckpointChain, EveryGenerationDamagedIsStructuredCorruption) {
  const std::string ck = chain_path("all_damaged");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  for (std::uint64_t g = 1; g <= 3; ++g) corrupt_byte(gen_file(ck, g), 32);

  CheckpointChain reader(ck, 3);
  auto got = reader.read(kKind, kFp);
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.error().kind, GuardErrorKind::Corrupt);
  EXPECT_EQ(got.error().severity(), GuardSeverity::CorruptState);
  EXPECT_NE(got.error().message.find("damaged"), std::string::npos)
      << got.error().to_string();
}

TEST(CheckpointChain, MissingManifestRebuildsFromDirectoryScan) {
  const std::string ck = chain_path("rebuild");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  fs::remove(ck);  // the manifest vanishes; generations survive
  ASSERT_TRUE(chain_exists(ck));  // orphan generations still count

  CheckpointChain reader(ck, 3);
  auto got = reader.read(kKind, kFp);
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  EXPECT_EQ(got->payload, payload_of(3));
  EXPECT_EQ(got->generation, 3u);
  EXPECT_TRUE(got->manifest_rebuilt);
}

TEST(CheckpointChain, CrashOrphanGenerationStaysInvisibleUntilManifestLoss) {
  const std::string ck = chain_path("orphan");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 2; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  // A crash between "write generation 3" and "rewrite manifest" leaves an
  // orphan file no manifest names.
  ASSERT_TRUE(write_checkpoint(gen_file(ck, 3), kKind, kFp, payload_of(9)).has_value());

  // The manifest is the commit point: while it survives, the uncommitted
  // generation is invisible and resume sees the last COMMITTED state.
  CheckpointChain reader(ck, 3);
  auto committed = reader.read(kKind, kFp);
  ASSERT_TRUE(committed.has_value()) << committed.error().to_string();
  EXPECT_EQ(committed->payload, payload_of(2));
  EXPECT_EQ(committed->generation, 2u);

  // A restarted writer reclaims the orphan's slot idempotently (the retry
  // path: same generation number, atomically overwritten, then committed).
  CheckpointChain writer(ck, 3);
  auto gen = writer.write(kKind, kFp, payload_of(10));
  ASSERT_TRUE(gen.has_value()) << gen.error().to_string();
  EXPECT_EQ(*gen, 3u);
  CheckpointChain after(ck, 3);
  auto got = after.read(kKind, kFp);
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  EXPECT_EQ(got->payload, payload_of(10));
  EXPECT_EQ(got->generation, 3u);
}

TEST(CheckpointChain, OrphanIsAdoptedByScanWhenManifestIsLost) {
  const std::string ck = chain_path("orphan_scan");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 2; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  ASSERT_TRUE(write_checkpoint(gen_file(ck, 3), kKind, kFp, payload_of(9)).has_value());
  fs::remove(ck);  // crash also lost the manifest

  // With no manifest to defer to, the directory scan adopts the newest
  // on-disk generation — the orphan's data is better than rolling back.
  CheckpointChain reader(ck, 3);
  auto got = reader.read(kKind, kFp);
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  EXPECT_EQ(got->payload, payload_of(9));
  EXPECT_EQ(got->generation, 3u);
  EXPECT_TRUE(got->manifest_rebuilt);
}

TEST(CheckpointChain, LegacySingleFileIsAdoptedThenReplaced) {
  const std::string ck = chain_path("legacy");
  // A pre-lineage run left one bare checkpoint at the policy path.
  ASSERT_TRUE(write_checkpoint(ck, kKind, kFp, payload_of(7)).has_value());
  ASSERT_TRUE(chain_exists(ck));

  CheckpointChain chain(ck, 3);
  auto got = chain.read(kKind, kFp);
  ASSERT_TRUE(got.has_value()) << got.error().to_string();
  EXPECT_TRUE(got->legacy);
  EXPECT_EQ(got->generation, 0u);
  EXPECT_EQ(got->payload, payload_of(7));

  // The first chained write replaces the bare file with a manifest.
  ASSERT_TRUE(chain.write(kKind, kFp, payload_of(8)).has_value());
  CheckpointChain reader(ck, 3);
  auto after = reader.read(kKind, kFp);
  ASSERT_TRUE(after.has_value()) << after.error().to_string();
  EXPECT_FALSE(after->legacy);
  EXPECT_EQ(after->payload, payload_of(8));
}

TEST(CheckpointChain, ForeignFingerprintIsNeverQuarantined) {
  const std::string ck = chain_path("foreign");
  CheckpointChain chain(ck, 3);
  ASSERT_TRUE(chain.write(kKind, kFp, payload_of(1)).has_value());

  CheckpointChain reader(ck, 3);
  auto got = reader.read(kKind, kFp + 1);  // a different experiment resumes
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.error().kind, GuardErrorKind::FingerprintMismatch);
  EXPECT_EQ(got.error().severity(), GuardSeverity::Fatal);
  // Operator error, not bit rot: nothing is renamed or destroyed.
  EXPECT_TRUE(fs::exists(gen_file(ck, 1)));
  EXPECT_FALSE(fs::exists(gen_file(ck, 1) + ".quarantined"));
  // The rightful owner can still resume.
  CheckpointChain owner(ck, 3);
  EXPECT_TRUE(owner.read(kKind, kFp).has_value());
}

TEST(CheckpointChain, MismatchedKindIsRejected) {
  const std::string ck = chain_path("kind");
  CheckpointChain chain(ck, 3);
  ASSERT_TRUE(chain.write(CheckpointKind::StabilityTrials, kFp, payload_of(1)).has_value());
  CheckpointChain reader(ck, 3);
  EXPECT_FALSE(reader.read(CheckpointKind::ChaosTimeline, kFp).has_value());
}

TEST(CheckpointChain, VerifyReportsHealthAndDamageWithoutMutating) {
  const std::string ck = chain_path("verify");
  CheckpointChain chain(ck, 3);
  for (std::uint8_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(chain.write(kKind, kFp, payload_of(i)).has_value());
  }
  auto healthy = chain_verify(ck);
  ASSERT_TRUE(healthy.has_value()) << healthy.error().to_string();
  EXPECT_TRUE(healthy->ok());
  EXPECT_EQ(healthy->generations, 3u);
  EXPECT_EQ(healthy->valid, 3u);
  EXPECT_TRUE(healthy->problems.empty());

  corrupt_byte(gen_file(ck, 3), 32);
  auto damaged = chain_verify(ck);
  ASSERT_TRUE(damaged.has_value()) << damaged.error().to_string();
  EXPECT_EQ(damaged->valid, 2u);
  EXPECT_FALSE(damaged->problems.empty());
  // verify is an offline reader: it must never quarantine.
  EXPECT_TRUE(fs::exists(gen_file(ck, 3)));
  EXPECT_FALSE(fs::exists(gen_file(ck, 3) + ".quarantined"));
}

TEST(CheckpointChain, WriteSurvivesTransientFaultsViaRetry) {
  const std::string ck = chain_path("retry_storm");
  Supervisor supervisor;
  RetryPolicy retry;
  retry.max_attempts = 6;
  retry.initial_backoff_ms = 0.01;
  retry.max_backoff_ms = 0.1;

  CheckpointChain chain(ck, 3);
  std::size_t committed = 0;
  {
    // Transient-only storm: every class here surfaces as a retryable error,
    // so nothing can be SILENTLY damaged (no torn renames, no bit rot) and
    // any write that reports success must be readable afterwards.
    vfs::FaultPlan plan;
    plan.seed = 11;
    plan.p_eintr = 0.2;
    plan.p_short_write = 0.3;
    plan.p_write_fail = 0.15;
    plan.p_fsync_fail = 0.1;
    plan.p_rename_fail = 0.1;
    vfs::ScopedFaultPlan faults(plan);
    for (std::uint8_t i = 1; i <= 6; ++i) {
      auto gen = retry_transient(supervisor, retry, [&] {
        return chain.write(kKind, kFp, payload_of(i));
      });
      if (gen) ++committed;
    }
  }
  // The storm may defeat individual writes (fsyncgate is not retryable in
  // place), but anything that committed must resume cleanly afterwards.
  if (committed > 0) {
    CheckpointChain reader(ck, 3);
    auto got = reader.read(kKind, kFp);
    ASSERT_TRUE(got.has_value()) << got.error().to_string();
    EXPECT_FALSE(got->payload.empty());
  }
}

TEST(RetryTransient, RetriesTransientOnlyAndAnnotates) {
  Supervisor supervisor;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 0.01;
  policy.max_backoff_ms = 0.05;

  int attempts = 0;
  auto flaky = retry_transient(supervisor, policy,
                               [&]() -> core::Expected<int, GuardError> {
                                 if (++attempts < 3) {
                                   return core::unexpected(GuardError{
                                       GuardErrorKind::TransientIo, "", "blip"});
                                 }
                                 return 42;
                               });
  ASSERT_TRUE(flaky.has_value());
  EXPECT_EQ(*flaky, 42);
  EXPECT_EQ(attempts, 3);

  attempts = 0;
  auto corrupt = retry_transient(supervisor, policy,
                                 [&]() -> core::Expected<int, GuardError> {
                                   ++attempts;
                                   return core::unexpected(GuardError{
                                       GuardErrorKind::Corrupt, "", "rot"});
                                 });
  ASSERT_FALSE(corrupt.has_value());
  EXPECT_EQ(attempts, 1);  // corrupt state is the chain's job, not a retry's

  attempts = 0;
  auto exhausted = retry_transient(supervisor, policy,
                                   [&]() -> core::Expected<int, GuardError> {
                                     ++attempts;
                                     return core::unexpected(GuardError{
                                         GuardErrorKind::TransientIo, "", "flap"});
                                   });
  ASSERT_FALSE(exhausted.has_value());
  EXPECT_EQ(attempts, 4);
  EXPECT_NE(exhausted.error().message.find("after 4 attempts"), std::string::npos);
}

TEST(RetryTransient, StopsEarlyWhenSupervisorCancels) {
  Supervisor supervisor;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_ms = 0.01;

  int attempts = 0;
  auto result = retry_transient(supervisor, policy,
                                [&]() -> core::Expected<int, GuardError> {
                                  if (++attempts == 2) supervisor.cancel();
                                  return core::unexpected(GuardError{
                                      GuardErrorKind::TransientIo, "", "blip"});
                                });
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().kind, GuardErrorKind::Cancelled);
  EXPECT_LT(attempts, 100);
}

}  // namespace
}  // namespace ranycast::guard
