// The adversarial-I/O capstone: a randomized (but seeded, hence replayable)
// torture soak over the checkpointed sweep. Each iteration runs a synthetic
// sweep under a fault storm — short writes, EINTR, failed fsyncs, ENOSPC
// budgets, torn renames, bit rot — kills it at an arbitrary step, then
// resumes with the storm lifted. The invariant is absolute:
//
//   every iteration either converges to the fault-free accumulator bytes
//   or fails with a STRUCTURED GuardError — no crash, no silent divergence.
//
// RANYCAST_TORTURE_RUNS overrides the iteration count (CI runs 200+; the
// default keeps local ctest fast). A failing iteration prints its seed so
// the exact fault timeline can be replayed in isolation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "ranycast/guard/chain.hpp"
#include "ranycast/guard/runtime.hpp"
#include "ranycast/guard/sweep.hpp"
#include "ranycast/vfs/fault.hpp"

namespace ranycast::guard {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kItems = 16;
constexpr std::uint64_t kFingerprint = 0x7051A7E5ull;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// One deterministic accumulator step — order-sensitive on purpose, so a
/// skipped or twice-processed item changes the final bytes.
std::uint64_t step(std::uint64_t acc, std::size_t i) {
  return mix64(acc ^ (0xABCDull + i * 0x10001ull));
}

std::size_t soak_runs() {
  if (const char* env = std::getenv("RANYCAST_TORTURE_RUNS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 25;
}

struct SweepOutcome {
  core::Expected<SweepResult, GuardError> result;
  std::uint64_t acc{0};
};

SweepOutcome run_once(const std::string& ck, bool resume,
                      std::size_t abort_after /* 0 = never */) {
  SweepOutcome out{core::Expected<SweepResult, GuardError>(SweepResult{}), 0};
  Supervisor supervisor;
  CheckpointPolicy policy;
  policy.path = ck;
  policy.every = 1;
  policy.resume = resume;
  policy.retry.max_attempts = 4;
  policy.retry.initial_backoff_ms = 0.01;
  policy.retry.max_backoff_ms = 0.05;
  if (abort_after > 0) {
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_after) supervisor.cancel();
    };
  }
  SweepHooks hooks;
  hooks.process = [&](std::size_t i) { out.acc = step(out.acc, i); };
  hooks.save = [&](ByteWriter& w) { w.u64(out.acc); };
  hooks.load = [&](ByteReader& r) {
    out.acc = r.u64();
    return r.ok();
  };
  out.result = run_sweep(kItems, kFingerprint, supervisor, policy, hooks);
  return out;
}

void remove_chain_files(const std::string& ck) {
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(fs::path(ck).parent_path(), ec)) {
    fs::remove(entry.path());
  }
}

TEST(TortureSoak, FaultStormsNeverCauseSilentDivergence) {
  // Fault-free ground truth, computed once without any checkpointing.
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected = step(expected, i);

  const auto root = fs::temp_directory_path() /
                    ("ranycast_torture." + std::to_string(::getpid()));
  fs::remove_all(root);

  const std::size_t runs = soak_runs();
  std::size_t faulted_errors = 0;
  std::size_t healed_resumes = 0;
  std::uint64_t injected_total = 0;

  for (std::size_t r = 0; r < runs; ++r) {
    const std::uint64_t seed = mix64(r * 2654435761ull + 7);
    const auto dir = root / ("run_" + std::to_string(r));
    fs::create_directories(dir);
    const std::string ck = (dir / "soak.ck").string();
    const std::size_t abort_after = 1 + r % (kItems - 1);

    // Phase 1: the storm. Intensity sweeps the whole range; every fifth run
    // additionally exhausts a small ENOSPC byte budget mid-run.
    {
      const double intensity =
          0.05 + 0.45 * static_cast<double>(r % 10) / 9.0;
      vfs::FaultPlan plan = vfs::FaultPlan::storm(seed, intensity);
      if (r % 5 == 0) plan.enospc_after_bytes = 4096;
      vfs::ScopedFaultPlan faults(plan);
      SweepOutcome stormy = run_once(ck, /*resume=*/false, abort_after);
      injected_total += faults.stats().injected();
      if (!stormy.result) {
        // A structured failure is an allowed outcome — but it must BE
        // structured (typed kind, printable) — never a crash.
        EXPECT_FALSE(stormy.result.error().to_string().empty());
        ++faulted_errors;
      }
    }

    // Phase 2: the storm passes; resume must self-heal whatever the storm
    // left behind (quarantining torn generations, rebuilding the manifest)
    // and converge to the exact fault-free bytes.
    SweepOutcome resumed = run_once(ck, /*resume=*/true, 0);
    if (!resumed.result &&
        resumed.result.error().severity() == GuardSeverity::CorruptState) {
      // Total loss — every generation torn before its write even reported
      // success. The contract is an explicit CorruptState error (never a
      // silent wrong answer); the operator's recovery is a fresh start.
      ++healed_resumes;
      remove_chain_files(ck);
      resumed = run_once(ck, /*resume=*/true, 0);
    }
    ASSERT_TRUE(resumed.result.has_value())
        << "seed " << seed << ": " << resumed.result.error().to_string();
    EXPECT_TRUE(resumed.result->complete()) << "seed " << seed;
    ASSERT_EQ(resumed.acc, expected)
        << "seed " << seed << " diverged after resume (fallbacks hidden?)";
  }

  // The soak must have actually been a soak: faults were injected, and at
  // least some runs exercised the error path end to end.
  EXPECT_GT(injected_total, 0u);
  ::testing::Test::RecordProperty("torture_runs", static_cast<int>(runs));
  ::testing::Test::RecordProperty("faulted_errors",
                                  static_cast<int>(faulted_errors));
  ::testing::Test::RecordProperty("total_loss_restarts",
                                  static_cast<int>(healed_resumes));
  fs::remove_all(root);
}

/// Replaying one seed twice must inject the identical fault timeline and
/// land in the identical end state — this is what makes a torture failure
/// bisectable instead of a heisenbug.
TEST(TortureSoak, IterationsAreReplayable) {
  const auto root = fs::temp_directory_path() /
                    ("ranycast_torture_replay." + std::to_string(::getpid()));
  fs::remove_all(root);

  auto one = [&](const std::string& tag) {
    const auto dir = root / tag;
    fs::create_directories(dir);
    const std::string ck = (dir / "soak.ck").string();
    std::uint64_t injected = 0;
    bool stormy_ok = false;
    {
      vfs::ScopedFaultPlan faults(vfs::FaultPlan::storm(/*seed=*/99, 0.3));
      stormy_ok = run_once(ck, false, 5).result.has_value();
      injected = faults.stats().injected();
    }
    const SweepOutcome resumed = run_once(ck, true, 0);
    return std::tuple<bool, std::uint64_t, bool, std::uint64_t>(
        stormy_ok, injected, resumed.result.has_value(), resumed.acc);
  };

  EXPECT_EQ(one("a"), one("b"));
  fs::remove_all(root);
}

}  // namespace
}  // namespace ranycast::guard
