// Cross-module invariants checked over several generated worlds — the
// properties every experiment silently relies on.
#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/geo/earth.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast {
namespace {

struct WorldCase {
  std::uint64_t seed;
  int stubs;
  int probes;
};

class WorldInvariants : public ::testing::TestWithParam<WorldCase> {
 protected:
  static lab::Lab make_lab(const WorldCase& c) {
    lab::LabConfig config;
    config.seed = c.seed;
    config.world.seed = c.seed;
    config.world.stub_count = c.stubs;
    config.census.total_probes = c.probes;
    return lab::Lab::create(config);
  }
};

TEST_P(WorldInvariants, CatchmentSitesAnnounceTheTracedPrefix) {
  auto laboratory = make_lab(GetParam());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  for (std::size_t r = 0; r < im6.deployment.regions().size(); ++r) {
    const Ipv4Addr ip = im6.deployment.regions()[r].service_ip;
    for (const atlas::Probe* p : laboratory.census().retained()) {
      const auto site = laboratory.catchment_of(*p, ip);
      if (!site) continue;
      ASSERT_TRUE(im6.deployment.site(*site).announces(r));
    }
  }
}

TEST_P(WorldInvariants, RouteVectorsStayParallel) {
  auto laboratory = make_lab(GetParam());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  for (const atlas::Probe* p : laboratory.census().retained()) {
    for (std::size_t r = 0; r < im6.deployment.regions().size(); ++r) {
      const bgp::Route* route = im6.route_for(p->asn, r);
      if (route == nullptr) continue;
      ASSERT_EQ(route->as_path.size(), route->geo_path.size());
      ASSERT_FALSE(route->as_path.empty());
      EXPECT_EQ(route->as_path.front(), im6.deployment.asn());
    }
  }
}

TEST_P(WorldInvariants, PingRespectsSpeedOfLightToCatchment) {
  auto laboratory = make_lab(GetParam());
  const auto& gaz = geo::Gazetteer::world();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
    const auto rtt = laboratory.ping(*p, answer.address);
    const auto site = laboratory.catchment_of(*p, answer.address);
    if (!rtt || !site) continue;
    const Km direct = gaz.distance(p->city, im6.deployment.site(*site).city);
    ASSERT_GE(rtt->ms + 1e-9, geo::rtt_lower_bound(direct).ms)
        << "RTT below the speed-of-light bound";
  }
}

TEST_P(WorldInvariants, TracerouteHopOwnersFollowAsPath) {
  auto laboratory = make_lab(GetParam());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  std::size_t checked = 0;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
    const auto trace = laboratory.traceroute(*p, answer.address);
    const bgp::Route* route = im6.route_for(p->asn, answer.region);
    if (!trace || route == nullptr) continue;
    // First hop belongs to the probe's AS; the intermediate hops follow the
    // reversed AS path.
    ASSERT_GE(trace->hops.size(), 2u);
    EXPECT_EQ(trace->hops[0].owner, p->asn);
    for (std::size_t h = 1; h + 1 < trace->hops.size(); ++h) {
      EXPECT_EQ(trace->hops[h].owner, route->as_path[route->as_path.size() - h]);
    }
    if (++checked == 200) break;  // bounded per world
  }
  EXPECT_GT(checked, 50u);
}

TEST_P(WorldInvariants, DnsAnswersAreAlwaysValidRegions) {
  auto laboratory = make_lab(GetParam());
  const auto& eg4 = laboratory.add_deployment(cdn::catalog::edgio4());
  for (const atlas::Probe* p : laboratory.census().retained()) {
    for (const auto mode : {dns::QueryMode::Ldns, dns::QueryMode::Adns}) {
      const auto answer = laboratory.dns_lookup(*p, eg4, mode);
      ASSERT_LT(answer.region, eg4.deployment.regions().size());
      ASSERT_TRUE(eg4.deployment.regions()[answer.region].prefix.contains(answer.address));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldInvariants,
                         ::testing::Values(WorldCase{1, 500, 1200}, WorldCase{7, 800, 2000},
                                           WorldCase{123, 600, 1500}));

}  // namespace
}  // namespace ranycast
