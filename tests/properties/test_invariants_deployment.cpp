// Deployment invariants, parameterized over every catalog network.
#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/tangled/testbed.hpp"

namespace ranycast {
namespace {

cdn::DeploymentSpec spec_by_name(const std::string& name) {
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  if (name == "edgio-ns") return cdn::catalog::edgio_ns();
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  return tangled::global_spec();
}

class DeploymentInvariants : public ::testing::TestWithParam<const char*> {
 protected:
  static lab::Lab& shared_lab() {
    static lab::Lab laboratory = [] {
      lab::LabConfig config;
      config.world.stub_count = 500;
      config.census.total_probes = 1000;
      return lab::Lab::create(config);
    }();
    return laboratory;
  }
};

TEST_P(DeploymentInvariants, SpecSitesAllResolveToKnownCities) {
  const auto spec = spec_by_name(GetParam());
  const auto& gaz = geo::Gazetteer::world();
  for (const auto& site : spec.sites) {
    EXPECT_TRUE(gaz.find_by_iata(site.iata).has_value()) << site.iata;
    for (std::size_t r : site.regions) {
      EXPECT_LT(r, spec.region_names.size());
    }
  }
  for (std::size_t r : spec.area_defaults) {
    EXPECT_LT(r, spec.region_names.size());
  }
  for (const auto& [iso2, region] : spec.country_overrides) {
    EXPECT_TRUE(gaz.find_country(iso2).has_value()) << iso2;
    EXPECT_LT(region, spec.region_names.size());
  }
}

TEST_P(DeploymentInvariants, EveryRegionIsAnnouncedSomewhere) {
  const auto spec = spec_by_name(GetParam());
  auto& laboratory = shared_lab();
  const auto& handle = laboratory.add_deployment(spec);
  for (std::size_t r = 0; r < handle.deployment.regions().size(); ++r) {
    EXPECT_FALSE(handle.deployment.origins_for_region(r).empty())
        << "region " << r << " has no origins";
  }
}

TEST_P(DeploymentInvariants, SiteCountsAreConsistent) {
  const auto spec = spec_by_name(GetParam());
  auto& laboratory = shared_lab();
  const auto& handle = laboratory.add_deployment(spec);
  const auto counts = handle.deployment.site_count_by_area();
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  EXPECT_EQ(total, handle.deployment.sites().size());
  EXPECT_EQ(handle.deployment.sites().size(), spec.sites.size());
}

TEST_P(DeploymentInvariants, AllRegionalPrefixesGloballyReachable) {
  const auto spec = spec_by_name(GetParam());
  auto& laboratory = shared_lab();
  const auto& handle = laboratory.add_deployment(spec);
  // §4.5 generalized: for every catalog network, every retained probe can
  // reach every regional prefix.
  const auto retained = laboratory.census().retained();
  for (const auto& region : handle.deployment.regions()) {
    for (std::size_t i = 0; i < retained.size(); i += 17) {  // sampled
      EXPECT_TRUE(laboratory.ping(*retained[i], region.service_ip).has_value());
    }
  }
}

TEST_P(DeploymentInvariants, MappingIsDeterministic) {
  const auto spec = spec_by_name(GetParam());
  auto& laboratory = shared_lab();
  const auto& handle = laboratory.add_deployment(spec);
  const atlas::Probe* p = laboratory.census().retained().front();
  const auto a = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
  const auto b = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
  EXPECT_EQ(a.region, b.region);
  EXPECT_EQ(a.address, b.address);
}

INSTANTIATE_TEST_SUITE_P(Catalog, DeploymentInvariants,
                         ::testing::Values("edgio3", "edgio4", "edgio-ns", "imperva6",
                                           "imperva-ns", "tangled"));

}  // namespace
}  // namespace ranycast
