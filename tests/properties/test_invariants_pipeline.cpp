// Geolocation-pipeline properties under swept rDNS naming cultures: as
// operators name more routers with city hints, the cascade resolves more;
// the technique fractions always form a distribution.
#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include <set>

#include "ranycast/geoloc/pipeline.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::geoloc {
namespace {

class PipelineSweep : public ::testing::TestWithParam<double> {
 protected:
  static lab::Lab& shared_lab() {
    static lab::Lab laboratory = [] {
      lab::LabConfig config;
      config.world.stub_count = 600;
      config.census.total_probes = 2000;
      return lab::Lab::create(config);
    }();
    return laboratory;
  }

  static const lab::DeploymentHandle& deployment() {
    static const lab::DeploymentHandle& handle =
        shared_lab().add_deployment(cdn::catalog::imperva6());
    return handle;
  }

  static const std::vector<TraceObservation>& observations() {
    static const std::vector<TraceObservation> obs = [] {
      std::vector<TraceObservation> out;
      auto& laboratory = shared_lab();
      for (const atlas::Probe* p : laboratory.census().retained()) {
        const auto answer = laboratory.dns_lookup(*p, deployment(), dns::QueryMode::Ldns);
        auto trace = laboratory.traceroute(*p, answer.address);
        if (!trace) continue;
        out.push_back(TraceObservation{p, std::move(*trace), answer.region});
      }
      return out;
    }();
    return obs;
  }

 public:
  static EnumerationResult run_with_iata_prob(double iata_prob) {
    RdnsOracle::Config cfg;
    cfg.iata_prob = iata_prob;
    cfg.cctld_prob = std::min(0.2, 1.0 - iata_prob);
    const RdnsOracle oracle{cfg, &shared_lab().world().graph, &shared_lab().registry(),
                            {{cdn::catalog::kImpervaAsn, "incapdns.net"}}};
    std::vector<CityId> published;
    for (const cdn::Site& s : deployment().deployment.sites()) published.push_back(s.city);
    return enumerate_sites(observations(), published, oracle,
                           {&shared_lab().db(0), &shared_lab().db(1), &shared_lab().db(2)},
                           {});
  }
};

TEST_P(PipelineSweep, FractionsFormADistribution) {
  const auto result = run_with_iata_prob(GetParam());
  double phops = 0.0, traces = 0.0;
  for (int t = 0; t < static_cast<int>(kTechniqueCount); ++t) {
    const double pf = result.phop_fraction(static_cast<Technique>(t));
    const double tf = result.trace_fraction(static_cast<Technique>(t));
    EXPECT_GE(pf, 0.0);
    EXPECT_LE(pf, 1.0);
    phops += pf;
    traces += tf;
  }
  EXPECT_NEAR(phops, 1.0, 1e-9);
  EXPECT_NEAR(traces, 1.0, 1e-9);
}

TEST_P(PipelineSweep, EnumeratedSitesStayWithinPublishedList) {
  const auto result = run_with_iata_prob(GetParam());
  std::set<CityId> published;
  for (const cdn::Site& s : deployment().deployment.sites()) published.insert(s.city);
  for (const auto& [city, regions] : result.site_regions) {
    EXPECT_TRUE(published.count(city));
  }
}

INSTANTIATE_TEST_SUITE_P(IataProb, PipelineSweep, ::testing::Values(0.0, 0.3, 0.7, 1.0));

TEST(PipelineMonotonicity, MoreCityHintsResolveMore) {
  // Not a TEST_P: needs two configurations side by side.
  const auto none = PipelineSweep::run_with_iata_prob(0.0);
  const auto full = PipelineSweep::run_with_iata_prob(1.0);
  EXPECT_LT(full.trace_fraction(Technique::Unresolved),
            none.trace_fraction(Technique::Unresolved) + 1e-9);
  EXPECT_GT(full.trace_fraction(Technique::Rdns), none.trace_fraction(Technique::Rdns));
}

}  // namespace
}  // namespace ranycast::geoloc
