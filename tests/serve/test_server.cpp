// serve::Server behaviour: refresher cadence, world drift, every fault kind,
// and the always-on differential test — an independent re-implementation of
// the refresher + ladder spec predicts the server's recorded transitions
// from the fault timeline alone, and the histories must match exactly.
#include "ranycast/serve/server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/scenario.hpp"

namespace ranycast::serve {
namespace {

lab::LabConfig small_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  return config;
}

ServeConfig fast_serve_config() {
  ServeConfig cfg;
  cfg.refresh_interval_ns = 1'000'000'000;   // build every 1s
  cfg.build_time_ns = 200'000'000;           // 200ms to build
  cfg.ladder.fresh_max_age_ns = 2'000'000'000;
  cfg.ladder.stale_max_age_ns = 5'000'000'000;
  cfg.ladder.reject_after_age_ns = 20'000'000'000;
  cfg.ladder.freeze_after_failures = 2;
  cfg.admission.rate_qps = 100'000.0;  // admission out of the way by default
  cfg.admission.burst = 1'000;
  cfg.admission.max_queue_depth = 1'000;
  cfg.admission.service_time_ns = 500'000;
  return cfg;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : lab_(lab::Lab::create(small_config())),
        im6_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  lab::Lab lab_;
  const lab::DeploymentHandle* im6_;
};

TEST_F(ServerTest, QueriesBeforeFirstPublishAreRejected) {
  Server server(lab_, *im6_, fast_serve_config());
  const QueryResult r = server.query(0, 0, 2'000);
  EXPECT_EQ(r.status, QueryStatus::Rejected);
  EXPECT_EQ(r.rung, LadderRung::Reject);
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(ServerTest, RefresherPublishesOnCadence) {
  Server server(lab_, *im6_, fast_serve_config());
  for (std::uint64_t t = 0; t <= 4'000'000'000; t += 100'000'000) {
    ASSERT_TRUE(server.tick(t).has_value());
  }
  // Builds start at 0s,1s,2s,3s,4s and publish 200ms later; the 4s build is
  // still in flight at the 4s tick.
  EXPECT_EQ(server.stats().epochs_published, 4u);
  EXPECT_EQ(server.current_epoch(), 4u);
  EXPECT_EQ(server.rung(), LadderRung::Fresh);
  ASSERT_FALSE(server.transitions().empty());
  EXPECT_EQ(server.transitions().front().from, LadderRung::Reject);
  EXPECT_EQ(server.transitions().front().to, LadderRung::Fresh);
  EXPECT_EQ(server.transitions().front().at_ns, 200'000'000u);

  const QueryResult r = server.query(17, 4'000'000'000, 2'000);
  EXPECT_EQ(r.status, QueryStatus::Served);
  EXPECT_EQ(r.epoch, 4u);
  EXPECT_LE(r.latency_us, 2'000u);
  auto snap = server.pin();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->fingerprint, snapshot_fingerprint(*snap));
}

TEST_F(ServerTest, WorldDriftConsumesOneEventPerSuccessfulBuild) {
  ServeConfig cfg = fast_serve_config();
  cfg.world_plan = chaos::single_site_withdrawal(SiteId{0});
  chaos::FaultEvent restore;
  restore.kind = chaos::FaultKind::SiteRestore;
  restore.site = SiteId{0};
  cfg.world_plan.events.push_back(restore);
  Server server(lab_, *im6_, cfg);

  // Epoch 1 (build started at 0) consumes the withdrawal; epoch 2 consumes
  // the restore; epoch 3 finds the plan exhausted and consumes nothing.
  ASSERT_TRUE(server.tick(200'000'000).has_value());
  const auto withdrawn = server.pin();
  ASSERT_NE(withdrawn, nullptr);
  EXPECT_EQ(server.stats().world_events_applied, 1u);

  ASSERT_TRUE(server.tick(1'200'000'000).has_value());
  const auto restored = server.pin();
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(server.stats().world_events_applied, 2u);
  // Withdrawing a live site must move catchments: the epochs differ.
  EXPECT_NE(withdrawn->fingerprint, restored->fingerprint);

  ASSERT_TRUE(server.tick(2'200'000'000).has_value());
  EXPECT_EQ(server.stats().world_events_applied, 2u);
  EXPECT_EQ(server.pin()->fingerprint, restored->fingerprint);
}

TEST_F(ServerTest, BuildFailureStreakFreezesThenRecovers) {
  ServeConfig cfg = fast_serve_config();
  // Builds started in [0.5s, 2.5s) fail: the 1s and 2s builds. Streak of 2
  // hits freeze_after_failures; the 3s build succeeds and recovers.
  cfg.faults.events.push_back(
      {ServeFaultKind::BuildFail, 500'000'000, 2'000'000'000, 0, 0});
  Server server(lab_, *im6_, cfg);
  for (std::uint64_t t = 0; t <= 3'300'000'000; t += 100'000'000) {
    ASSERT_TRUE(server.tick(t).has_value());
  }
  EXPECT_EQ(server.stats().builds_failed, 2u);
  EXPECT_EQ(server.stats().epochs_published, 2u);
  EXPECT_EQ(server.rung(), LadderRung::Fresh);

  std::vector<std::string> rungs;
  for (const LadderTransition& t : server.transitions()) {
    rungs.push_back(std::string(to_string(t.from)) + ">" + std::string(to_string(t.to)));
  }
  EXPECT_EQ(rungs, (std::vector<std::string>{"reject>fresh", "fresh>frozen",
                                             "frozen>fresh"}));
  // The freeze lands exactly when the second failed build completes.
  EXPECT_EQ(server.transitions()[1].at_ns, 2'200'000'000u);
  EXPECT_EQ(server.transitions()[1].reason, "refresh_failure");
}

TEST_F(ServerTest, ClockSkewAgesTheSnapshotIntoReject) {
  ServeConfig cfg = fast_serve_config();
  cfg.world_plan.events.clear();
  // From 1.5s the staleness clock reads 25s late: the freshest possible
  // snapshot is instantly older than reject_after (20s).
  cfg.faults.events.push_back({ServeFaultKind::ClockSkew, 1'500'000'000, 0, 0,
                               25'000'000'000});
  Server server(lab_, *im6_, cfg);
  ASSERT_TRUE(server.tick(0).has_value());
  ASSERT_TRUE(server.tick(300'000'000).has_value());
  EXPECT_EQ(server.query(1, 1'000'000'000, 2'000).status, QueryStatus::Served);

  const QueryResult r = server.query(1, 1'600'000'000, 2'000);
  EXPECT_EQ(r.status, QueryStatus::Rejected);
  EXPECT_EQ(r.rung, LadderRung::Reject);
  // The snapshot itself is still published — only its honesty changed.
  EXPECT_NE(server.pin(), nullptr);
}

TEST_F(ServerTest, SlowQueryWindowShedsOnDeadline) {
  ServeConfig cfg = fast_serve_config();
  // Queries arriving in [1s, 2s) cost 5ms extra against a 2ms budget.
  cfg.faults.events.push_back(
      {ServeFaultKind::SlowQuery, 1'000'000'000, 1'000'000'000, 5'000'000, 0});
  Server server(lab_, *im6_, cfg);
  ASSERT_TRUE(server.tick(0).has_value());
  ASSERT_TRUE(server.tick(300'000'000).has_value());

  EXPECT_EQ(server.query(1, 900'000'000, 2'000).status, QueryStatus::Served);
  EXPECT_EQ(server.query(1, 1'500'000'000, 2'000).status, QueryStatus::ShedDeadline);
  EXPECT_EQ(server.query(1, 2'100'000'000, 2'000).status, QueryStatus::Served);
  EXPECT_EQ(server.stats().shed_deadline, 1u);
}

TEST_F(ServerTest, StatsPartitionQueries) {
  ServeConfig cfg = fast_serve_config();
  cfg.admission.rate_qps = 10.0;
  cfg.admission.burst = 2;
  Server server(lab_, *im6_, cfg);
  ASSERT_TRUE(server.tick(0).has_value());
  ASSERT_TRUE(server.tick(300'000'000).has_value());
  for (int i = 0; i < 50; ++i) {
    server.query(static_cast<std::uint64_t>(i), 400'000'000, 2'000);
  }
  const ServeStats s = server.stats();
  EXPECT_EQ(s.queries, 50u);
  EXPECT_EQ(s.served + s.shed_queue + s.shed_deadline + s.shed_rate + s.rejected,
            s.queries);
  EXPECT_GT(s.shed_rate, 0u);  // 10 qps cannot admit 50 back-to-back arrivals
  EXPECT_EQ(server.latency().count(), s.served);
}

// ---------------------------------------------------------------------------
// The always-on differential: an independent refresher + ladder simulator.
// It re-implements the documented rules (not by calling ladder_rung) and
// replays the exact same advance points the server uses — build completions,
// tick times, query arrivals — predicting the full transition history from
// (config, fault plan) alone.
// ---------------------------------------------------------------------------

class LadderOracle {
 public:
  explicit LadderOracle(const ServeConfig& cfg) : cfg_(cfg) {}

  void on_publish(std::uint64_t done_ns) {
    has_snapshot_ = true;
    built_at_ns_ = done_ns;
    failures_ = 0;
    evaluate(done_ns, "published");
  }
  void on_failure(std::uint64_t done_ns) {
    ++failures_;
    evaluate(done_ns, "refresh_failure");
  }
  void evaluate(std::uint64_t now_ns, std::string_view reason) {
    const LadderRung next = rung_at(now_ns);
    if (next == rung_) return;
    transitions_.push_back({now_ns, rung_, next, std::string(reason)});
    rung_ = next;
  }
  const std::vector<LadderTransition>& transitions() const { return transitions_; }

 private:
  // Deliberately re-derived from docs/serving.md, not from ladder_rung().
  LadderRung rung_at(std::uint64_t now_ns) const {
    if (!has_snapshot_) return LadderRung::Reject;
    const std::int64_t skew = cfg_.faults.skew_ns(now_ns);
    const std::int64_t shifted = static_cast<std::int64_t>(now_ns) + skew;
    const std::uint64_t s_now =
        shifted < 0 ? 0 : static_cast<std::uint64_t>(shifted);
    const std::uint64_t age = s_now > built_at_ns_ ? s_now - built_at_ns_ : 0;
    if (age > cfg_.ladder.reject_after_age_ns) return LadderRung::Reject;
    if (failures_ >= cfg_.ladder.freeze_after_failures ||
        age > cfg_.ladder.stale_max_age_ns) {
      return LadderRung::Frozen;
    }
    return age > cfg_.ladder.fresh_max_age_ns ? LadderRung::Stale : LadderRung::Fresh;
  }

  const ServeConfig& cfg_;
  bool has_snapshot_{false};
  std::uint64_t built_at_ns_{0};
  std::uint32_t failures_{0};
  LadderRung rung_{LadderRung::Reject};
  std::vector<LadderTransition> transitions_;
};

/// Predict every ladder transition of a (tick, queries) drive from the
/// timeline alone: same refresher scheduling rules, same advance points.
std::vector<LadderTransition> predict_transitions(const ServeConfig& cfg,
                                                  std::size_t ticks,
                                                  std::uint64_t tick_ns,
                                                  std::size_t queries_per_tick) {
  LadderOracle oracle(cfg);
  bool building = false, will_fail = false;
  std::uint64_t done = 0, next_build = 0;
  for (std::size_t i = 0; i < ticks; ++i) {
    const std::uint64_t now = static_cast<std::uint64_t>(i) * tick_ns;
    for (;;) {
      if (building) {
        if (now < done) break;
        building = false;
        if (will_fail) {
          oracle.on_failure(done);
        } else {
          oracle.on_publish(done);
        }
        continue;
      }
      if (now >= next_build) {
        const std::uint64_t start = next_build;
        will_fail = cfg.faults.build_fails(start);
        done = start + cfg.build_time_ns + cfg.faults.stall_extra_ns(start);
        next_build = start + std::max<std::uint64_t>(cfg.refresh_interval_ns, 1);
        building = true;
        continue;
      }
      break;
    }
    oracle.evaluate(now, "tick");
    const std::uint64_t stride =
        queries_per_tick == 0 ? tick_ns : tick_ns / queries_per_tick;
    for (std::size_t q = 0; q < queries_per_tick; ++q) {
      oracle.evaluate(now + q * stride, "query");
    }
  }
  return oracle.transitions();
}

TEST_F(ServerTest, DifferentialLadderMatchesFaultTimeline) {
  ServeConfig cfg = fast_serve_config();
  cfg.ladder.fresh_max_age_ns = 1'500'000'000;
  cfg.ladder.stale_max_age_ns = 4'000'000'000;
  cfg.ladder.reject_after_age_ns = 9'000'000'000;
  // A hand-built gauntlet: a stall wedges the 2s build for 6s (Fresh ->
  // Stale -> Frozen while it drags), failures follow, skew ages the world.
  cfg.faults.events.push_back(
      {ServeFaultKind::BuildStall, 1'900'000'000, 400'000'000, 6'000'000'000, 0});
  cfg.faults.events.push_back(
      {ServeFaultKind::BuildFail, 8'500'000'000, 2'000'000'000, 0, 0});
  cfg.faults.events.push_back(
      {ServeFaultKind::ClockSkew, 13'000'000'000, 0, 0, 3'000'000'000});

  const std::size_t ticks = 160;
  const std::uint64_t tick_ns = 100'000'000;
  const std::size_t qpt = 3;

  Server server(lab_, *im6_, cfg);
  for (std::size_t i = 0; i < ticks; ++i) {
    const std::uint64_t now = static_cast<std::uint64_t>(i) * tick_ns;
    ASSERT_TRUE(server.tick(now).has_value());
    const std::uint64_t stride = tick_ns / qpt;
    for (std::size_t q = 0; q < qpt; ++q) {
      server.query(q, now + q * stride, 2'000);
    }
  }

  const auto predicted = predict_transitions(cfg, ticks, tick_ns, qpt);
  ASSERT_EQ(server.transitions().size(), predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    EXPECT_EQ(server.transitions()[i], predicted[i]) << "transition " << i;
  }
  // The gauntlet must actually exercise the ladder, not tiptoe around it.
  EXPECT_GE(predicted.size(), 4u);
}

TEST_F(ServerTest, DifferentialLadderMatchesSeededStorms) {
  for (const std::uint64_t seed : {11ull, 97ull, 1234ull}) {
    ServeConfig cfg = fast_serve_config();
    cfg.ladder.fresh_max_age_ns = 1'200'000'000;
    cfg.ladder.stale_max_age_ns = 3'000'000'000;
    cfg.ladder.reject_after_age_ns = 8'000'000'000;
    const std::size_t ticks = 120;
    const std::uint64_t tick_ns = 100'000'000;
    cfg.faults = FaultPlan::storm(seed, ticks * tick_ns, 0.8);
    ASSERT_FALSE(cfg.faults.empty()) << seed;

    Server server(lab_, *im6_, cfg);
    for (std::size_t i = 0; i < ticks; ++i) {
      const std::uint64_t now = static_cast<std::uint64_t>(i) * tick_ns;
      ASSERT_TRUE(server.tick(now).has_value()) << seed;
      server.query(i, now, 2'000);
    }
    const auto predicted = predict_transitions(cfg, ticks, tick_ns, 1);
    EXPECT_EQ(server.transitions(), predicted) << "storm seed " << seed;
  }
}

}  // namespace
}  // namespace ranycast::serve
