// The degradation ladder: the pure rung rule, the recorded transition
// history, and the checkpoint round-trip.
#include "ranycast/serve/ladder.hpp"

#include <gtest/gtest.h>

namespace ranycast::serve {
namespace {

LadderConfig cfg() {
  LadderConfig c;
  c.fresh_max_age_ns = 1'000;
  c.stale_max_age_ns = 3'000;
  c.reject_after_age_ns = 10'000;
  c.freeze_after_failures = 3;
  return c;
}

LadderHealth health(bool has, std::uint64_t age, std::uint32_t failures = 0) {
  return LadderHealth{has, age, failures};
}

TEST(LadderRule, NoSnapshotRejects) {
  EXPECT_EQ(ladder_rung(cfg(), health(false, 0)), LadderRung::Reject);
  // Even a failure-free refresher has nothing to serve.
  EXPECT_EQ(ladder_rung(cfg(), health(false, 0, 0)), LadderRung::Reject);
}

TEST(LadderRule, AgeBoundsAreInclusive) {
  EXPECT_EQ(ladder_rung(cfg(), health(true, 1'000)), LadderRung::Fresh);
  EXPECT_EQ(ladder_rung(cfg(), health(true, 1'001)), LadderRung::Stale);
  EXPECT_EQ(ladder_rung(cfg(), health(true, 3'000)), LadderRung::Stale);
  EXPECT_EQ(ladder_rung(cfg(), health(true, 3'001)), LadderRung::Frozen);
  EXPECT_EQ(ladder_rung(cfg(), health(true, 10'000)), LadderRung::Frozen);
  EXPECT_EQ(ladder_rung(cfg(), health(true, 10'001)), LadderRung::Reject);
}

TEST(LadderRule, FailureStreakForcesFrozenRegardlessOfAge) {
  EXPECT_EQ(ladder_rung(cfg(), health(true, 0, 3)), LadderRung::Frozen);
  EXPECT_EQ(ladder_rung(cfg(), health(true, 0, 2)), LadderRung::Fresh);
  // Reject (outlived even the frozen allowance) still wins over a streak.
  EXPECT_EQ(ladder_rung(cfg(), health(true, 10'001, 5)), LadderRung::Reject);
}

TEST(LadderRule, Names) {
  EXPECT_EQ(to_string(LadderRung::Fresh), "fresh");
  EXPECT_EQ(to_string(LadderRung::Stale), "stale");
  EXPECT_EQ(to_string(LadderRung::Frozen), "frozen");
  EXPECT_EQ(to_string(LadderRung::Reject), "reject");
}

TEST(Ladder, AdvanceRecordsOnlyRealTransitions) {
  Ladder ladder(cfg());
  EXPECT_EQ(ladder.rung(), LadderRung::Reject);

  // Same rung: no transition recorded.
  LadderTransition t;
  EXPECT_FALSE(ladder.advance(10, health(false, 0), "tick", &t));
  EXPECT_TRUE(ladder.transitions().empty());

  ASSERT_TRUE(ladder.advance(20, health(true, 0), "published", &t));
  EXPECT_EQ(t.from, LadderRung::Reject);
  EXPECT_EQ(t.to, LadderRung::Fresh);
  EXPECT_EQ(t.at_ns, 20u);
  EXPECT_EQ(t.reason, "published");

  ASSERT_TRUE(ladder.advance(30, health(true, 2'000), "tick", &t));
  EXPECT_EQ(t.to, LadderRung::Stale);
  ASSERT_TRUE(ladder.advance(40, health(true, 5'000), "tick", &t));
  EXPECT_EQ(t.to, LadderRung::Frozen);
  ASSERT_TRUE(ladder.advance(50, health(true, 20'000), "tick", &t));
  EXPECT_EQ(t.to, LadderRung::Reject);

  // Recovery climbs straight back to Fresh.
  ASSERT_TRUE(ladder.advance(60, health(true, 0), "published", &t));
  EXPECT_EQ(t.from, LadderRung::Reject);
  EXPECT_EQ(t.to, LadderRung::Fresh);
  EXPECT_EQ(ladder.transitions().size(), 5u);
}

TEST(Ladder, EncodeDecodeRoundTripsHistory) {
  Ladder ladder(cfg());
  ladder.advance(20, health(true, 0), "published");
  ladder.advance(40, health(true, 5'000), "tick");

  guard::ByteWriter w;
  ladder.encode(w);
  guard::ByteReader r(w.data());
  Ladder restored(cfg());
  ASSERT_TRUE(restored.decode(r));
  EXPECT_EQ(restored.rung(), ladder.rung());
  ASSERT_EQ(restored.transitions().size(), 2u);
  EXPECT_EQ(restored.transitions()[0], ladder.transitions()[0]);
  EXPECT_EQ(restored.transitions()[1], ladder.transitions()[1]);
}

TEST(Ladder, DecodeRejectsGarbage) {
  guard::ByteWriter w;
  w.u64(0xffff'ffff'ffff'ffffull);  // absurd transition count
  w.u8(9);                          // invalid rung
  guard::ByteReader r(w.data());
  Ladder ladder(cfg());
  EXPECT_FALSE(ladder.decode(r));
}

}  // namespace
}  // namespace ranycast::serve
