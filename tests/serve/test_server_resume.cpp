// Crash-restart: save() mid-run, load() into a fresh server over a fresh
// lab, and the continued answer stream is byte-identical — including when
// the checkpoint lands during an in-flight (or failing) build.
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/serve/server.hpp"

namespace ranycast::serve {
namespace {

lab::LabConfig small_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  return config;
}

ServeConfig resume_config() {
  ServeConfig cfg;
  cfg.refresh_interval_ns = 1'000'000'000;
  cfg.build_time_ns = 500'000'000;  // long builds: checkpoints land mid-build
  cfg.ladder.fresh_max_age_ns = 2'000'000'000;
  cfg.ladder.stale_max_age_ns = 5'000'000'000;
  cfg.ladder.reject_after_age_ns = 20'000'000'000;
  cfg.admission.rate_qps = 50.0;  // low enough that the bucket state matters
  cfg.admission.burst = 8;
  cfg.admission.max_queue_depth = 16;
  cfg.admission.service_time_ns = 500'000;
  cfg.world_plan = chaos::single_site_withdrawal(SiteId{0});
  return cfg;
}

std::string render(const QueryResult& r) {
  char line[160];
  std::snprintf(line, sizeof line, "%s,%s,%llu,%016llx,%llu,%u,%u,%u,%.6f",
                std::string(to_string(r.status)).c_str(),
                std::string(to_string(r.rung)).c_str(),
                static_cast<unsigned long long>(r.epoch),
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.latency_us), r.entry.address,
                r.entry.region, r.entry.site, r.entry.rtt_ms);
  return line;
}

constexpr std::uint64_t kTickNs = 100'000'000;
constexpr std::size_t kQueriesPerTick = 3;

/// Drive ticks [from, to) with the tool's arrival pattern, appending one
/// rendered line per query.
void drive(Server& server, std::size_t from, std::size_t to,
           std::vector<std::string>& out) {
  for (std::size_t i = from; i < to; ++i) {
    const std::uint64_t now = static_cast<std::uint64_t>(i) * kTickNs;
    ASSERT_TRUE(server.tick(now).has_value()) << "tick " << i;
    const std::uint64_t stride = kTickNs / kQueriesPerTick;
    for (std::size_t q = 0; q < kQueriesPerTick; ++q) {
      const std::uint64_t client = hash_combine(hash_combine(2023, i), q);
      out.push_back(render(server.query(client, now + q * stride, 2'000)));
    }
  }
}

class ServerResumeTest : public ::testing::Test {
 protected:
  static ServeConfig faulty_config() {
    ServeConfig cfg = resume_config();
    cfg.faults.events.push_back(
        {ServeFaultKind::BuildFail, 1'500'000'000, 1'000'000'000, 0, 0});
    cfg.faults.events.push_back(
        {ServeFaultKind::SlowQuery, 2'500'000'000, 500'000'000, 5'000'000, 0});
    return cfg;
  }

  /// Uninterrupted baseline vs save-at-`cut`/load-into-fresh-world resume.
  void expect_resume_identical(std::size_t cut, std::size_t total) {
    const ServeConfig cfg = faulty_config();

    lab::Lab baseline_lab = lab::Lab::create(small_config());
    Server baseline(baseline_lab,
                    baseline_lab.add_deployment(cdn::catalog::imperva6()), cfg);
    std::vector<std::string> expected;
    drive(baseline, 0, total, expected);

    lab::Lab first_lab = lab::Lab::create(small_config());
    Server first(first_lab, first_lab.add_deployment(cdn::catalog::imperva6()),
                 cfg);
    std::vector<std::string> answers;
    drive(first, 0, cut, answers);
    guard::ByteWriter w;
    first.save(w);

    // The "restarted process": fresh lab, fresh server, state from bytes.
    lab::Lab second_lab = lab::Lab::create(small_config());
    Server second(second_lab,
                  second_lab.add_deployment(cdn::catalog::imperva6()), cfg);
    guard::ByteReader r(w.data());
    ASSERT_TRUE(second.load(r)) << "cut " << cut;
    EXPECT_EQ(second.fingerprint(), first.fingerprint());
    drive(second, cut, total, answers);

    ASSERT_EQ(answers.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(answers[i], expected[i]) << "cut " << cut << " answer " << i;
    }
    EXPECT_EQ(second.transitions(), baseline.transitions()) << "cut " << cut;
    EXPECT_EQ(second.latency().quantile_us(0.99),
              baseline.latency().quantile_us(0.99));
  }
};

TEST_F(ServerResumeTest, ResumeAnywhereIsByteIdentical) {
  // Cuts chosen to land in every interesting refresher phase: idle, mid
  // successful build, mid failing build (the 1.5-2.5s BuildFail window),
  // and inside the slow-query window.
  for (const std::size_t cut : {3u, 12u, 17u, 21u, 27u}) {
    expect_resume_identical(cut, 35);
  }
}

TEST_F(ServerResumeTest, SaveLoadPreservesInFlightBuild) {
  const ServeConfig cfg = resume_config();
  lab::Lab lab_a = lab::Lab::create(small_config());
  Server a(lab_a, lab_a.add_deployment(cdn::catalog::imperva6()), cfg);
  // t=1.2s: the 1s build (500ms long) is in flight.
  ASSERT_TRUE(a.tick(600'000'000).has_value());
  ASSERT_TRUE(a.tick(1'200'000'000).has_value());
  ASSERT_EQ(a.current_epoch(), 1u);

  guard::ByteWriter w;
  a.save(w);
  lab::Lab lab_b = lab::Lab::create(small_config());
  Server b(lab_b, lab_b.add_deployment(cdn::catalog::imperva6()), cfg);
  guard::ByteReader r(w.data());
  ASSERT_TRUE(b.load(r));

  // The restored in-flight build publishes at its original done-time.
  ASSERT_TRUE(b.tick(1'600'000'000).has_value());
  EXPECT_EQ(b.current_epoch(), 2u);
  ASSERT_TRUE(a.tick(1'600'000'000).has_value());
  EXPECT_EQ(b.pin()->fingerprint, a.pin()->fingerprint);
  EXPECT_EQ(b.pin()->built_at_ns, a.pin()->built_at_ns);
}

TEST_F(ServerResumeTest, LoadRejectsTruncatedAndCorruptPayloads) {
  lab::Lab lab_a = lab::Lab::create(small_config());
  Server a(lab_a, lab_a.add_deployment(cdn::catalog::imperva6()), resume_config());
  ASSERT_TRUE(a.tick(200'000'000).has_value());
  guard::ByteWriter w;
  a.save(w);
  const std::vector<std::uint8_t> bytes(w.data().begin(), w.data().end());

  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{9}, bytes.size() / 2, bytes.size() - 1}) {
    lab::Lab lab_b = lab::Lab::create(small_config());
    Server b(lab_b, lab_b.add_deployment(cdn::catalog::imperva6()),
             resume_config());
    guard::ByteReader r(std::span<const std::uint8_t>(bytes.data(), keep));
    EXPECT_FALSE(b.load(r)) << "kept " << keep << " bytes";
  }

  // A corrupt snapshot body must be caught by the content fingerprint.
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x04;
  lab::Lab lab_c = lab::Lab::create(small_config());
  Server c(lab_c, lab_c.add_deployment(cdn::catalog::imperva6()),
           resume_config());
  guard::ByteReader r(corrupt);
  EXPECT_FALSE(c.load(r));
}

}  // namespace
}  // namespace ranycast::serve
