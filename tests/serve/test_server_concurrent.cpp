// Live-mode concurrency: query threads race the refresher's epoch swaps.
// Every pinned snapshot must be a whole epoch — internally consistent,
// fingerprint-verified — and epochs observed per thread never go backwards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/serve/server.hpp"

namespace ranycast::serve {
namespace {

lab::LabConfig small_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  return config;
}

ServeConfig live_config() {
  ServeConfig cfg;
  cfg.refresh_interval_ns = 1;  // rebuild back to back: maximal swap churn
  cfg.build_time_ns = 1;
  cfg.ladder.fresh_max_age_ns = 10'000'000'000;
  cfg.ladder.stale_max_age_ns = 20'000'000'000;
  cfg.ladder.reject_after_age_ns = 60'000'000'000;
  cfg.admission.rate_qps = 1e9;
  cfg.admission.burst = 1 << 20;
  cfg.admission.max_queue_depth = 1 << 20;
  cfg.admission.service_time_ns = 1;
  return cfg;
}

TEST(ServeConcurrent, PinnedSnapshotsAreWholeEpochs) {
  lab::Lab laboratory = lab::Lab::create(small_config());
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());

  for (const unsigned readers :
       {1u, 2u, std::max(2u, std::thread::hardware_concurrency())}) {
    Server server(laboratory, handle, live_config());
    ASSERT_TRUE(server.tick(2).has_value());  // first epoch is up

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> pins{0};
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (unsigned r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        std::uint64_t last_epoch = 0;
        std::uint64_t now = 10;
        while (!stop.load(std::memory_order_relaxed)) {
          const auto snap = server.pin();
          ASSERT_NE(snap, nullptr);
          // A torn swap would hand out a snapshot whose contents do not
          // hash to its recorded fingerprint, or a stale-then-new mix that
          // steps epochs backwards.
          ASSERT_EQ(snap->fingerprint, snapshot_fingerprint(*snap));
          ASSERT_GE(snap->epoch, last_epoch);
          last_epoch = snap->epoch;

          const QueryResult q = server.query(r * 131 + last_epoch, now, 10'000);
          ASSERT_NE(q.status, QueryStatus::Rejected);
          now += 3;
          pins.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // The refresher swaps epochs as fast as it can under the readers.
    std::uint64_t now = 2;
    for (int i = 0; i < 200; ++i) {
      now += 2;
      ASSERT_TRUE(server.tick(now).has_value());
    }
    while (pins.load(std::memory_order_relaxed) < readers * 50) {
      now += 2;
      ASSERT_TRUE(server.tick(now).has_value());
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();

    EXPECT_GT(server.current_epoch(), 100u) << readers << " readers";
    EXPECT_GT(pins.load(), readers * 49) << readers << " readers";
  }
}

}  // namespace
}  // namespace ranycast::serve
