// WorldSnapshot: deterministic builds (any worker count), content
// fingerprints, and the exact checkpoint codec round-trip.
#include "ranycast/serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <span>
#include <thread>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::serve {
namespace {

lab::LabConfig small_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  return config;
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest()
      : lab_(lab::Lab::create(small_config())),
        im6_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  lab::Lab lab_;
  const lab::DeploymentHandle* im6_;
};

TEST_F(SnapshotTest, CoversEveryRetainedProbe) {
  const WorldSnapshot snap = build_snapshot(lab_, *im6_, 1, 42);
  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.built_at_ns, 42u);
  EXPECT_EQ(snap.entries.size(), lab_.census().retained().size());
  EXPECT_EQ(snap.fingerprint, snapshot_fingerprint(snap));

  std::size_t routed = 0;
  for (const MapEntry& e : snap.entries) {
    if (!e.routed) continue;
    ++routed;
    EXPECT_NE(e.site, value(kInvalidSite));
    EXPECT_GT(e.rtt_ms, 0.0);
  }
  // A healthy deployment serves the vast majority of the census.
  EXPECT_GT(routed, snap.entries.size() / 2);
}

TEST_F(SnapshotTest, RebuildOfSameWorldIsIdentical) {
  const WorldSnapshot a = build_snapshot(lab_, *im6_, 1, 100);
  const WorldSnapshot b = build_snapshot(lab_, *im6_, 1, 100);
  EXPECT_EQ(a, b);
}

TEST_F(SnapshotTest, WorkerCountDoesNotChangeContent) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();
  pool.resize(1);
  const WorldSnapshot baseline = build_snapshot(lab_, *im6_, 1, 0);
  for (const unsigned workers :
       {2u, std::max(1u, std::thread::hardware_concurrency())}) {
    pool.resize(workers);
    EXPECT_EQ(build_snapshot(lab_, *im6_, 1, 0), baseline) << workers << " workers";
  }
  pool.resize(original);
}

TEST_F(SnapshotTest, FingerprintIgnoresEpochAndBuildTime) {
  const WorldSnapshot a = build_snapshot(lab_, *im6_, 1, 0);
  const WorldSnapshot b = build_snapshot(lab_, *im6_, 7, 999);
  EXPECT_EQ(snapshot_fingerprint(a), snapshot_fingerprint(b));
}

TEST_F(SnapshotTest, EncodeDecodeRoundTripsExactly) {
  const WorldSnapshot snap = build_snapshot(lab_, *im6_, 3, 1'000);
  guard::ByteWriter w;
  encode_snapshot(w, snap);
  guard::ByteReader r(w.data());
  WorldSnapshot restored;
  ASSERT_TRUE(decode_snapshot(r, restored));
  EXPECT_EQ(restored, snap);
}

TEST_F(SnapshotTest, DecodeRefusesCorruptPayload) {
  const WorldSnapshot snap = build_snapshot(lab_, *im6_, 3, 1'000);
  guard::ByteWriter w;
  encode_snapshot(w, snap);
  std::vector<std::uint8_t> bytes(w.data().begin(), w.data().end());
  bytes[bytes.size() / 2] ^= 0x10;  // flip one entry byte: fingerprint must catch it
  guard::ByteReader r(bytes);
  WorldSnapshot restored;
  EXPECT_FALSE(decode_snapshot(r, restored));

  guard::ByteReader short_r(std::span<const std::uint8_t>(bytes.data(), 10));
  EXPECT_FALSE(decode_snapshot(short_r, restored));
}

}  // namespace
}  // namespace ranycast::serve
