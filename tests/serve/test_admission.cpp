// Admission control: the fixed shed order, the served-latency-never-exceeds-
// budget invariant, the integer token bucket, and checkpoint round-trips.
#include "ranycast/serve/admission.hpp"

#include <gtest/gtest.h>

#include "ranycast/core/rng.hpp"

namespace ranycast::serve {
namespace {

AdmissionConfig cfg() {
  AdmissionConfig c;
  c.rate_qps = 1000.0;
  c.burst = 4;
  c.max_queue_depth = 3;
  c.service_time_ns = 500'000;  // 500us
  return c;
}

TEST(TokenBucket, BurstThenRefillAtRate) {
  TokenBucket bucket(1000.0, 4);
  // The bucket starts full: the burst is admitted back to back.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.take(0)) << i;
  EXPECT_FALSE(bucket.take(0));
  // 1000 qps = one token per ms. 999us is not enough...
  EXPECT_FALSE(bucket.take(999'000));
  // ...1ms is exactly one token.
  EXPECT_TRUE(bucket.take(1'000'000));
  EXPECT_FALSE(bucket.take(1'000'000));
}

TEST(TokenBucket, SubTokenRemaindersAccumulateAcrossPolls) {
  TokenBucket bucket(4.0, 1);
  EXPECT_TRUE(bucket.take(0));
  // 4 qps polled every 1ms: each poll earns 0.004 of a token. Truncating
  // per poll would never grant again; the carried remainder must yield
  // exactly one grant every 250ms.
  int granted = 0;
  for (std::uint64_t t = 1; t <= 1'000; ++t) {
    if (bucket.take(t * 1'000'000)) ++granted;
  }
  EXPECT_EQ(granted, 4);
}

TEST(TokenBucket, EncodeDecodeRoundTrip) {
  TokenBucket bucket(1000.0, 4);
  bucket.take(0);
  bucket.take(250'000);

  guard::ByteWriter w;
  bucket.encode(w);
  guard::ByteReader r(w.data());
  TokenBucket restored;
  ASSERT_TRUE(restored.decode(r));
  // Both make identical decisions from here on.
  for (std::uint64_t t = 300'000; t < 10'000'000; t += 700'000) {
    EXPECT_EQ(bucket.take(t), restored.take(t)) << t;
  }
}

TEST(Admission, AdmitLatencyIsWaitPlusService) {
  Admission admission(cfg());
  const auto first = admission.offer(0, 10'000, 0);
  ASSERT_EQ(first.decision, AdmitDecision::Admit);
  EXPECT_EQ(first.latency_ns, 500'000u);  // empty queue: pure service time
  const auto second = admission.offer(0, 10'000, 0);
  ASSERT_EQ(second.decision, AdmitDecision::Admit);
  EXPECT_EQ(second.latency_ns, 1'000'000u);  // waits for the first
}

TEST(Admission, QueueDepthShedsBeforeDeadline) {
  Admission admission(cfg());
  // Fill the modeled FIFO: depth 3 admits, the 4th arrival at t=0 sees a
  // full backlog and is shed on depth — even with an infinite budget.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(admission.offer(0, 1'000'000, 0).decision, AdmitDecision::Admit) << i;
  }
  EXPECT_EQ(admission.offer(0, 1'000'000, 0).decision, AdmitDecision::ShedQueue);
}

TEST(Admission, DeadlineShedsWhenPredictedLatencyExceedsBudget) {
  Admission admission(cfg());
  // Empty queue, 500us service vs 400us budget: shed on deadline.
  EXPECT_EQ(admission.offer(0, 400, 0).decision, AdmitDecision::ShedDeadline);
  // 500us budget admits exactly.
  EXPECT_EQ(admission.offer(0, 500, 0).decision, AdmitDecision::Admit);
  // Injected slow-query penalty counts against the budget too.
  EXPECT_EQ(admission.offer(10'000'000, 600, 200'000).decision,
            AdmitDecision::ShedDeadline);
}

TEST(Admission, RateShedsAfterBurst) {
  AdmissionConfig c = cfg();
  c.max_queue_depth = 100;  // keep the queue out of the way
  Admission admission(c);
  // Space arrivals a service-time apart so the queue stays empty and the
  // deadline holds: only the bucket can shed. Burst 4 at 1000 qps.
  int admitted = 0, rate_shed = 0;
  for (int i = 0; i < 8; ++i) {
    const auto out = admission.offer(static_cast<std::uint64_t>(i) * 500'000, 10'000, 0);
    if (out.decision == AdmitDecision::Admit) ++admitted;
    if (out.decision == AdmitDecision::ShedRate) ++rate_shed;
  }
  // 3.5ms elapsed: the initial burst of 4 plus 3 refilled tokens.
  EXPECT_EQ(admitted, 7);
  EXPECT_EQ(rate_shed, 1);
}

TEST(Admission, ServedLatencyNeverExceedsBudgetUnderRandomStorm) {
  Admission admission(cfg());
  Rng rng(7);
  std::uint64_t now = 0;
  int admitted = 0;
  for (int i = 0; i < 5'000; ++i) {
    now += rng.below(400'000);  // arrivals denser than the service rate
    const std::uint64_t budget_us = 100 + rng.below(3'000);
    const std::uint64_t extra = rng.chance(0.2) ? rng.below(2'000'000) : 0;
    const auto out = admission.offer(now, budget_us, extra);
    if (out.decision != AdmitDecision::Admit) continue;
    ++admitted;
    EXPECT_LE(out.latency_ns, budget_us * 1'000)
        << "arrival " << i << " served over its deadline budget";
  }
  EXPECT_GT(admitted, 0);
}

TEST(Admission, EncodeDecodeRoundTripKeepsDecisions) {
  Admission admission(cfg());
  for (int i = 0; i < 5; ++i) admission.offer(static_cast<std::uint64_t>(i) * 100'000, 5'000, 0);

  guard::ByteWriter w;
  admission.encode(w);
  guard::ByteReader r(w.data());
  Admission restored(cfg());
  ASSERT_TRUE(restored.decode(r));

  Rng rng(11);
  std::uint64_t now = 500'000;
  for (int i = 0; i < 2'000; ++i) {
    now += rng.below(1'000'000);
    const std::uint64_t budget_us = 200 + rng.below(2'000);
    const auto a = admission.offer(now, budget_us, 0);
    const auto b = restored.offer(now, budget_us, 0);
    EXPECT_EQ(a.decision, b.decision) << i;
    EXPECT_EQ(a.latency_ns, b.latency_ns) << i;
  }
}

TEST(Admission, Names) {
  EXPECT_EQ(to_string(AdmitDecision::Admit), "admit");
  EXPECT_EQ(to_string(AdmitDecision::ShedQueue), "shed_queue");
  EXPECT_EQ(to_string(AdmitDecision::ShedDeadline), "shed_deadline");
  EXPECT_EQ(to_string(AdmitDecision::ShedRate), "shed_rate");
}

}  // namespace
}  // namespace ranycast::serve
