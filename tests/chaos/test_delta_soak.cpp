// ISSUE acceptance gate for the incremental delta re-solve: replaying EVERY
// chaos scenario in configs/ with the delta path enabled produces a report
// byte-identical to the full re-solve path, at 1, 2 and hardware_concurrency
// workers, with and without the transient plane, and with the in-engine
// sampled verifier turned all the way up.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/converge/config.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::chaos {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> scenario_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(RANYCAST_CONFIGS_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("chaos_", 0) == 0 && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

lab::LabConfig tiny_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = 2023;
  return config;
}

struct RunOptions {
  bool delta{false};
  std::uint32_t verify_every{0};
  bool transient{false};
};

/// Run one scenario and return the serialized report.
std::string report_json(const FaultPlan& plan, const RunOptions& opts) {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  if (opts.transient) {
    converge::Config cfg;
    cfg.timers.mrai_us = 500'000;
    engine.enable_transient(cfg);
  }
  if (opts.delta) {
    bgp::DeltaConfig cfg;
    cfg.enabled = true;
    cfg.verify_every = opts.verify_every;
    engine.enable_delta(cfg);
  }
  auto outcome = engine.run(plan);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  if (!outcome) return {};
  return report_to_json(*outcome).dump(2);
}

TEST(DeltaSoak, EveryScenarioByteIdenticalWithDeltaOn) {
  const auto paths = scenario_paths();
  ASSERT_FALSE(paths.empty()) << "no chaos_*.json under " << RANYCAST_CONFIGS_DIR;

  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    auto plan = load_plan(path);
    ASSERT_TRUE(plan.has_value()) << plan.error().to_string();

    const std::string full = report_json(*plan, {});
    ASSERT_FALSE(full.empty());
    EXPECT_EQ(report_json(*plan, {.delta = true}), full);
  }
}

TEST(DeltaSoak, ByteIdenticalAcrossWorkerCounts) {
  const auto paths = scenario_paths();
  ASSERT_FALSE(paths.empty());

  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();
  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);

  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    auto plan = load_plan(path);
    ASSERT_TRUE(plan.has_value()) << plan.error().to_string();

    pool.resize(1);
    const std::string expected = report_json(*plan, {});
    ASSERT_FALSE(expected.empty());
    for (const unsigned workers : sweep) {
      SCOPED_TRACE(std::to_string(workers) + " workers");
      pool.resize(workers);
      EXPECT_EQ(report_json(*plan, {.delta = true}), expected);
    }
  }
  pool.resize(original);
}

TEST(DeltaSoak, ByteIdenticalWithTransientPlane) {
  // The transient plane consumes the same post-step outcomes the delta path
  // splices; one scenario with both enabled guards their composition.
  auto plan = load_plan(std::string(RANYCAST_CONFIGS_DIR) + "/chaos_smoke.json");
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();
  const std::string full = report_json(*plan, {.transient = true});
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(report_json(*plan, {.delta = true, .transient = true}), full);
}

TEST(DeltaSoak, InEngineVerifierFindsNoMismatches) {
  // verify_every=1 makes every incremental region re-solve from scratch and
  // compare in-engine; a mismatch would self-heal (keeping the report
  // identical) but the differential harness here would still catch drift in
  // the final bytes, and the lab counters would show the mismatch.
  auto plan = load_plan(std::string(RANYCAST_CONFIGS_DIR) + "/chaos_cascade.json");
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();
  const std::string full = report_json(*plan, {});
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(report_json(*plan, {.delta = true, .verify_every = 1}), full);
}

TEST(DeltaSoak, StepReportsCarryDeltaAccounting) {
  // chaos_smoke's final step reroutes, so last_step_delta() must be
  // populated after the run (scenarios ending in measurement-only faults
  // legitimately leave it empty — the knob is per reroute step).
  auto plan = load_plan(std::string(RANYCAST_CONFIGS_DIR) + "/chaos_smoke.json");
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();

  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  bgp::DeltaConfig cfg;
  cfg.enabled = true;
  engine.enable_delta(cfg);
  auto outcome = engine.run(*plan);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();

  const auto& last = engine.last_step_delta();
  ASSERT_TRUE(last.has_value());
  EXPECT_GT(last->regions, 0u);
  EXPECT_EQ(last->regions, last->delta_regions + last->full_regions);
  EXPECT_EQ(last->mismatches, 0u);
}

}  // namespace
}  // namespace ranycast::chaos
