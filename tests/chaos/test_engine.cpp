#include "ranycast/chaos/engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::chaos {
namespace {

lab::LabConfig small_config() {
  lab::LabConfig config;
  config.world.stub_count = 500;
  config.census.total_probes = 1500;
  return config;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : lab_(lab::Lab::create(small_config())),
        im6_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  /// The site serving the most probes (so withdrawals have subjects).
  SiteId busiest_site() {
    std::map<std::uint16_t, int> counts;
    for (const atlas::Probe* p : lab_.census().retained()) {
      const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
      const bgp::Route* r = im6_->route_for(p->asn, answer.region);
      if (r != nullptr) counts[value(r->origin_site)]++;
    }
    std::uint16_t best = 0;
    int best_count = -1;
    for (const auto& [site, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best = site;
      }
    }
    return SiteId{best};
  }

  /// Serialized catchment of every retained probe (site or '-').
  std::string catchment_fingerprint() {
    std::string out;
    for (const atlas::Probe* p : lab_.census().retained()) {
      const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
      const bgp::Route* r = im6_->route_for(p->asn, answer.region);
      out += r == nullptr ? std::string("-") : std::to_string(value(r->origin_site));
      out += ',';
    }
    return out;
  }

  lab::Lab lab_;
  const lab::DeploymentHandle* im6_;
};

TEST_F(EngineTest, MultiEventPlanRunsEndToEnd) {
  const SiteId victim = busiest_site();
  FaultPlan plan;
  plan.name = "multi";
  FaultEvent withdraw;
  withdraw.kind = FaultKind::SiteWithdraw;
  withdraw.site = victim;
  FaultEvent rs_down;
  rs_down.kind = FaultKind::RouteServerDown;
  rs_down.ixp = 0;
  FaultEvent rs_up;
  rs_up.kind = FaultKind::RouteServerUp;
  rs_up.ixp = 0;
  FaultEvent restore;
  restore.kind = FaultKind::SiteRestore;
  restore.site = victim;
  plan.events = {withdraw, rs_down, rs_up, restore};

  Engine engine(lab_, *im6_);
  const auto report = engine.run(plan);
  ASSERT_TRUE(report.has_value()) << report.error();
  ASSERT_EQ(report->steps.size(), 4u);
  EXPECT_EQ(report->probes, lab_.census().retained().size());

  const StepReport& w = report->steps[0];
  EXPECT_GT(w.affected_probes, 0u);
  EXPECT_EQ(w.still_served, w.affected_probes);  // §4.5: anycast reconverges
  EXPECT_GT(w.moved + w.lost, 0u);

  // The restore step moves the withdrawn site's catchment back.
  const StepReport& r = report->steps[3];
  EXPECT_EQ(r.routes_after, report->steps[0].routes_before);
}

TEST_F(EngineTest, WithdrawRestoreRoundTripsTheCatchment) {
  const std::string baseline = catchment_fingerprint();
  const SiteId victim = busiest_site();
  FaultPlan plan;
  FaultEvent withdraw;
  withdraw.kind = FaultKind::SiteWithdraw;
  withdraw.site = victim;
  FaultEvent restore;
  restore.kind = FaultKind::SiteRestore;
  restore.site = victim;
  plan.events = {withdraw, restore};

  Engine engine(lab_, *im6_);
  ASSERT_TRUE(engine.run(plan).has_value());
  // Same per-region tie-break salts on re-solve: the restored deployment's
  // catchment is bit-for-bit the original.
  EXPECT_EQ(catchment_fingerprint(), baseline);
}

TEST_F(EngineTest, MeasurementDegradationLosesPingsButNotRoutes) {
  FaultPlan plan;
  FaultEvent degrade;
  degrade.kind = FaultKind::MeasurementDegrade;
  degrade.faults.ping_loss_prob = 0.6;
  degrade.faults.dns_timeout_prob = 0.4;
  degrade.faults.max_retries = 1;
  plan.events = {degrade};

  Engine engine(lab_, *im6_);
  const auto report = engine.run(plan);
  ASSERT_TRUE(report.has_value()) << report.error();
  const StepReport& s = report->steps[0];
  // The probe plane degrades; the routing system is untouched.
  EXPECT_GT(s.lost_pings, 0u);
  EXPECT_GT(s.degraded_dns_answers, 0u);
  EXPECT_EQ(s.routes_before, s.routes_after + s.lost - s.gained);
  EXPECT_GT(s.routes_after, 0u);

  // Degraded measurements are still deterministic.
  const atlas::Probe* p = lab_.census().retained()[0];
  const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
  const auto first = lab_.ping(*p, answer.address);
  const auto second = lab_.ping(*p, answer.address);
  EXPECT_EQ(first.has_value(), second.has_value());
  if (first && second) EXPECT_DOUBLE_EQ(first->ms, second->ms);
}

TEST_F(EngineTest, GeoDbOutageRedirectsToFallbackRegion) {
  FaultPlan plan;
  FaultEvent outage;
  outage.kind = FaultKind::GeoDbOutage;
  outage.db = 0;  // the CDN mapping database
  plan.events = {outage};

  Engine engine(lab_, *im6_);
  const auto report = engine.run(plan);
  ASSERT_TRUE(report.has_value()) << report.error();
  const StepReport& s = report->steps[0];
  // Every client whose lookup now fails is mapped to the fallback region;
  // most catchments move, but everyone keeps being served.
  EXPECT_GT(s.affected_probes, 0u);
  EXPECT_EQ(s.still_served, s.affected_probes);
}

TEST_F(EngineTest, RejectsUnappliableEvents) {
  Engine engine(lab_, *im6_);

  FaultPlan bad_site;
  FaultEvent e1;
  e1.kind = FaultKind::SiteWithdraw;
  e1.site = SiteId{9999};
  bad_site.events = {e1};
  const auto r1 = engine.run(bad_site);
  ASSERT_FALSE(r1.has_value());
  EXPECT_NE(r1.error().find("unknown site"), std::string::npos);

  FaultPlan unmatched_restore;
  FaultEvent e2;
  e2.kind = FaultKind::SiteRestore;
  e2.site = SiteId{0};
  unmatched_restore.events = {e2};
  const auto r2 = engine.run(unmatched_restore);
  ASSERT_FALSE(r2.has_value());
  EXPECT_NE(r2.error().find("was not withdrawn"), std::string::npos);

  FaultPlan bad_ixp;
  FaultEvent e3;
  e3.kind = FaultKind::RouteServerDown;
  e3.ixp = 100000;
  bad_ixp.events = {e3};
  const auto r3 = engine.run(bad_ixp);
  ASSERT_FALSE(r3.has_value());
  EXPECT_NE(r3.error().find("unknown IXP"), std::string::npos);

  FaultPlan bad_link;
  FaultEvent e4;
  e4.kind = FaultKind::LinkDown;
  e4.a = make_asn(1);
  e4.b = make_asn(999999);
  bad_link.events = {e4};
  const auto r4 = engine.run(bad_link);
  ASSERT_FALSE(r4.has_value());
  EXPECT_NE(r4.error().find("no adjacency"), std::string::npos);
}

TEST_F(EngineTest, DoubleWithdrawIsAnError) {
  const SiteId victim{0};
  FaultPlan plan;
  FaultEvent withdraw;
  withdraw.kind = FaultKind::SiteWithdraw;
  withdraw.site = victim;
  plan.events = {withdraw, withdraw};
  Engine engine(lab_, *im6_);
  const auto report = engine.run(plan);
  ASSERT_FALSE(report.has_value());
  EXPECT_NE(report.error().find("already withdrawn"), std::string::npos);
}

}  // namespace
}  // namespace ranycast::chaos
