// Satellite regression guard: the whole pipeline — world generation, census,
// BGP solve, chaos measurement — is a pure function of the config seed.
// Same seed => byte-identical serialized catchments and chaos reports;
// different seed => different tie-breaks.
#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"

namespace ranycast::chaos {
namespace {

lab::LabConfig tiny_config(std::uint64_t seed) {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = seed;
  return config;
}

/// Serialize every retained probe's DNS answer, catchment site and RTT.
std::string measurement_fingerprint(lab::Lab& laboratory,
                                    const lab::DeploymentHandle& handle) {
  std::string out;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    out += std::to_string(answer.region);
    out += ':';
    const bgp::Route* r = handle.route_for(p->asn, answer.region);
    if (r == nullptr) {
      out += "-;";
      continue;
    }
    out += std::to_string(value(r->origin_site));
    const auto rtt = laboratory.ping(*p, answer.address);
    out += '@';
    out += rtt ? std::to_string(rtt->ms) : std::string("x");
    out += ';';
  }
  return out;
}

/// One full chaos pass over a fresh lab: returns (catchment bytes, report bytes).
std::pair<std::string, std::string> run_once(std::uint64_t seed) {
  auto laboratory = lab::Lab::create(tiny_config(seed));
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const std::string catchment = measurement_fingerprint(laboratory, im6);
  Engine engine(laboratory, im6);
  const auto report = engine.run(single_site_withdrawal(SiteId{0}));
  EXPECT_TRUE(report.has_value());
  const std::string report_bytes =
      report.has_value() ? report_to_json(*report).dump(2) : std::string();
  return {catchment, report_bytes};
}

TEST(Determinism, SameSeedIsByteIdentical) {
  const auto [catchment_a, report_a] = run_once(2023);
  const auto [catchment_b, report_b] = run_once(2023);
  EXPECT_EQ(catchment_a, catchment_b);
  EXPECT_EQ(report_a, report_b);
  EXPECT_FALSE(report_a.empty());
}

TEST(Determinism, DifferentSeedChangesTieBreaks) {
  const auto [catchment_a, report_a] = run_once(2023);
  const auto [catchment_b, report_b] = run_once(31337);
  // A different seed re-rolls the whole world and every tie-break; the two
  // catchment serializations cannot coincide.
  EXPECT_NE(catchment_a, catchment_b);
}

}  // namespace
}  // namespace ranycast::chaos
