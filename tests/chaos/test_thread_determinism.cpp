// ISSUE acceptance gate: the parallel catchment engine must be byte-identical
// for any worker count. We sweep the global pool over {1, 2, hardware} and
// fingerprint the full pipeline — multi-region solve, DNS answers, catchment
// sites, ping RTTs, and a chaos cascade's serialized report — expecting
// byte-equality with the single-worker (sequential-order) run.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::chaos {
namespace {

lab::LabConfig tiny_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = 2023;
  return config;
}

/// Serialize every retained probe's DNS answer, catchment site, ping RTT and
/// traceroute hops (owner/city/IP) through the batch fan-out APIs.
std::string pipeline_fingerprint() {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();

  std::string out;
  const auto answers = laboratory.dns_lookup_all(retained, im6, dns::QueryMode::Ldns);
  for (std::size_t i = 0; i < retained.size(); ++i) {
    out += std::to_string(answers[i].region);
    out += ':';
    const bgp::Route* r = im6.route_for(retained[i]->asn, answers[i].region);
    out += r != nullptr ? std::to_string(value(r->origin_site)) : std::string("-");
    out += ';';
  }
  const Ipv4Addr ip = im6.deployment.regions()[0].service_ip;
  for (const auto& rtt : laboratory.ping_all(retained, ip)) {
    out += rtt ? std::to_string(rtt->ms) : std::string("x");
    out += ';';
  }
  for (const auto& trace : laboratory.traceroute_all(retained, ip)) {
    if (!trace) {
      out += "x;";
      continue;
    }
    for (const auto& hop : trace->hops) {
      out += std::to_string(hop.ip.bits());
      out += ',';
      out += std::to_string(value(hop.owner));
      out += ',';
      out += std::to_string(value(hop.city));
      out += '|';
    }
    out += ';';
  }

  // Chaos cascade on top: withdraw a site, re-solve, serialize the report.
  Engine engine(laboratory, im6);
  const auto report = engine.run(single_site_withdrawal(SiteId{0}));
  EXPECT_TRUE(report.has_value());
  if (report.has_value()) out += report_to_json(*report).dump(2);
  return out;
}

TEST(ThreadDeterminism, PipelineByteIdenticalForAnyWorkerCount) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string sequential = pipeline_fingerprint();
  ASSERT_FALSE(sequential.empty());

  std::vector<unsigned> sweep{2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2) sweep.push_back(hardware);
  for (unsigned workers : sweep) {
    pool.resize(workers);
    EXPECT_EQ(pipeline_fingerprint(), sequential) << workers << " workers";
  }

  pool.resize(original);
}

}  // namespace
}  // namespace ranycast::chaos
