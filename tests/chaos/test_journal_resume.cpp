// ISSUE acceptance gate, journal edition: a guarded chaos run with a journal
// installed writes one chaos_step line per *measured* step, so the journal —
// after last-wins dedup by index — matches the final ChaosReport step for
// step, including across an abort + --resume append (which must carry
// exactly one "resumed" marker). Every line must be independently valid JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/io/json.hpp"
#include "ranycast/obs/journal.hpp"

namespace ranycast::chaos {
namespace {

namespace fs = std::filesystem;

lab::LabConfig tiny_config(std::uint64_t seed = 2023) {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = seed;
  return config;
}

FaultPlan cascade_plan() {
  FaultPlan plan;
  plan.name = "journal-cascade";
  FaultEvent e;
  e.kind = FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::GeoDbStale;
  e.db = 0;
  e.magnitude = 0.4;
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::MeasurementDegrade;
  e.faults.ping_loss_prob = 0.2;
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::MeasurementRestore;
  plan.events.push_back(e);
  return plan;
}

std::string work_path(const std::string& tag, const std::string& ext) {
  const auto dir = fs::temp_directory_path() / "ranycast_journal_resume";
  fs::create_directories(dir);
  return (dir / (tag + ext)).string();
}

/// Uninstalls the global journal even when an assertion bails out early.
struct JournalScope {
  explicit JournalScope(obs::Journal& journal) { obs::set_journal(&journal); }
  ~JournalScope() { obs::set_journal(nullptr); }
};

std::vector<io::Json> parse_journal_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<io::Json> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines.push_back(io::parse_json_or_throw(line));  // throws -> test failure
  }
  return lines;
}

/// chaos_step lines deduped by index, last occurrence wins.
std::map<std::uint64_t, io::Json> journal_steps(const std::vector<io::Json>& lines) {
  std::map<std::uint64_t, io::Json> steps;
  for (const auto& line : lines) {
    if (line.find("type")->as_string() != "chaos_step") continue;
    steps[static_cast<std::uint64_t>(line.find("index")->as_number())] = line;
  }
  return steps;
}

std::size_t count_type(const std::vector<io::Json>& lines, const std::string& type) {
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find("type")->as_string() == type) ++n;
  }
  return n;
}

void expect_line_matches_step(const io::Json& line, const StepReport& step) {
  EXPECT_EQ(line.find("event")->as_string(), step.event);
  EXPECT_DOUBLE_EQ(line.find("probes")->as_number(), static_cast<double>(step.probes));
  EXPECT_DOUBLE_EQ(line.find("moved")->as_number(), static_cast<double>(step.moved));
  EXPECT_DOUBLE_EQ(line.find("lost")->as_number(), static_cast<double>(step.lost));
  EXPECT_DOUBLE_EQ(line.find("gained")->as_number(), static_cast<double>(step.gained));
  EXPECT_DOUBLE_EQ(line.find("affected_probes")->as_number(),
                   static_cast<double>(step.affected_probes));
  EXPECT_DOUBLE_EQ(line.find("still_served")->as_number(),
                   static_cast<double>(step.still_served));
  EXPECT_DOUBLE_EQ(line.find("routes_after")->as_number(),
                   static_cast<double>(step.routes_after));
  // Doubles go through "%.10g" on the way out.
  EXPECT_NEAR(line.find("after_p50_ms")->as_number(), step.after_p50_ms,
              1e-8 * std::max(1.0, std::abs(step.after_p50_ms)));
  EXPECT_TRUE(line.find("dur_ns")->is_number());
}

TEST(JournalResume, UninterruptedRunJournalsEveryStepExactly) {
  const std::string jpath = work_path("baseline", ".ndjson");
  fs::remove(jpath);

  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  obs::Journal journal;
  ASSERT_TRUE(journal.open(jpath, /*append=*/false)) << journal.error();
  ChaosReport report;
  {
    JournalScope scope(journal);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
    ASSERT_TRUE(outcome.has_value()) << outcome.error();
    report = outcome->report;
  }
  journal.close();

  const auto lines = parse_journal_lines(jpath);
  const auto steps = journal_steps(lines);
  ASSERT_EQ(steps.size(), report.steps.size());
  EXPECT_EQ(count_type(lines, "chaos_step"), report.steps.size());  // no duplicates
  EXPECT_EQ(count_type(lines, "resumed"), 0u);
  for (const StepReport& step : report.steps) {
    const auto it = steps.find(step.index);
    ASSERT_NE(it, steps.end()) << "step " << step.index << " missing from journal";
    expect_line_matches_step(it->second, step);
  }
  fs::remove(jpath);
}

TEST(JournalResume, AbortedThenResumedJournalCarriesOneResumeMarker) {
  const std::string jpath = work_path("resume", ".ndjson");
  const std::string ckpath = work_path("resume", ".ck");
  fs::remove(jpath);
  fs::remove(ckpath);
  const std::size_t abort_at = cascade_plan().events.size() / 2;

  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    obs::Journal journal;
    ASSERT_TRUE(journal.open(jpath, /*append=*/false)) << journal.error();
    JournalScope scope(journal);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ckpath;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_at) supervisor.cancel();
    };
    auto first = engine.run_guarded(cascade_plan(), supervisor, policy);
    ASSERT_TRUE(first.has_value()) << first.error();
    ASSERT_EQ(first->sweep.completed, abort_at);
  }
  {
    const auto lines = parse_journal_lines(jpath);
    EXPECT_EQ(count_type(lines, "resumed"), 0u);
    EXPECT_EQ(count_type(lines, "stopped"), 1u);  // reason: cancelled, durable
    EXPECT_EQ(journal_steps(lines).size(), abort_at);
    EXPECT_GE(count_type(lines, "checkpoint"), 1u);
  }

  ChaosReport report;
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    obs::Journal journal;
    // The CLI opens with append=true under --resume: history is preserved.
    ASSERT_TRUE(journal.open(jpath, /*append=*/true)) << journal.error();
    JournalScope scope(journal);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ckpath;
    policy.resume = true;
    auto second = engine.run_guarded(cascade_plan(), supervisor, policy);
    ASSERT_TRUE(second.has_value()) << second.error();
    ASSERT_TRUE(second->sweep.resumed);
    ASSERT_FALSE(second->report.truncated);
    report = second->report;
  }

  const auto lines = parse_journal_lines(jpath);
  EXPECT_EQ(count_type(lines, "resumed"), 1u);
  // Replayed steps are fast-forwarded, never re-measured, never re-emitted:
  // journal steps dedup to exactly the report's steps.
  EXPECT_EQ(count_type(lines, "chaos_step"), report.steps.size());
  const auto steps = journal_steps(lines);
  ASSERT_EQ(steps.size(), report.steps.size());
  for (const StepReport& step : report.steps) {
    const auto it = steps.find(step.index);
    ASSERT_NE(it, steps.end()) << "step " << step.index << " missing from journal";
    expect_line_matches_step(it->second, step);
  }
  // The resume marker lands before the steps the resumed run measured.
  std::size_t resume_pos = lines.size(), first_new_step = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string type = lines[i].find("type")->as_string();
    if (type == "resumed") resume_pos = i;
    if (type == "chaos_step" &&
        static_cast<std::size_t>(lines[i].find("index")->as_number()) >= abort_at &&
        i < first_new_step) {
      first_new_step = i;
    }
  }
  ASSERT_LT(resume_pos, lines.size());
  EXPECT_LT(resume_pos, first_new_step);
  fs::remove(jpath);
  fs::remove(ckpath);
}

TEST(JournalResume, TransientRunsJournalConvergenceWindows) {
  const std::string jpath = work_path("transient", ".ndjson");
  fs::remove(jpath);

  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  converge::Config ccfg;
  ccfg.timers.mrai_us = 500'000;
  engine.enable_transient(ccfg);
  obs::Journal journal;
  ASSERT_TRUE(journal.open(jpath, /*append=*/false)) << journal.error();
  std::size_t transients = 0;
  {
    JournalScope scope(journal);
    auto outcome = engine.run(cascade_plan());
    ASSERT_TRUE(outcome.has_value()) << outcome.error();
    transients = outcome->transient.size();
  }
  journal.close();

  const auto lines = parse_journal_lines(jpath);
  EXPECT_EQ(count_type(lines, "transient_window"), transients);
  ASSERT_GT(transients, 0u);
  for (const auto& line : lines) {
    if (line.find("type")->as_string() != "transient_window") continue;
    EXPECT_TRUE(line.find("index")->is_number());
    EXPECT_TRUE(line.find("probes")->is_number());
    const io::Json* regions = line.find("regions");
    ASSERT_NE(regions, nullptr);
    ASSERT_TRUE(regions->is_array());
    for (const auto& region : regions->as_array()) {
      EXPECT_TRUE(region.find("region")->is_number());
      EXPECT_TRUE(region.find("converged_us")->is_number());
      EXPECT_TRUE(region.find("max_blackhole_us")->is_number());
    }
  }
  fs::remove(jpath);
}

}  // namespace
}  // namespace ranycast::chaos
