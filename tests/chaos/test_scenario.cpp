#include "ranycast/chaos/scenario.hpp"

#include <gtest/gtest.h>

namespace ranycast::chaos {
namespace {

core::Expected<FaultPlan, io::ConfigError> parse(std::string_view text) {
  return plan_from_json(io::parse_json_or_throw(text), "test.json");
}

TEST(Scenario, ParsesEveryEventKind) {
  const auto plan = parse(R"({
    "name": "all-kinds",
    "events": [
      {"type": "site_withdraw", "site": 3, "label": "drain"},
      {"type": "site_restore", "site": 3},
      {"type": "site_link_down", "site": 1, "attachment": 2},
      {"type": "site_link_up", "site": 1, "attachment": 2},
      {"type": "link_down", "a": 12, "b": 40},
      {"type": "link_up", "a": 12, "b": 40},
      {"type": "route_server_down", "ixp": 0},
      {"type": "route_server_up", "ixp": 0},
      {"type": "region_withdraw", "region": 1},
      {"type": "region_restore", "region": 1},
      {"type": "geodb_stale", "db": 1, "extra_wrong_country_prob": 0.4},
      {"type": "geodb_outage", "db": 1},
      {"type": "geodb_restore", "db": 1},
      {"type": "measurement_degrade", "ping_loss_prob": 0.2, "dns_timeout_prob": 0.1,
       "max_retries": 3, "backoff_base_ms": 25, "seed": 7},
      {"type": "measurement_restore"}
    ]
  })");
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();
  EXPECT_EQ(plan->name, "all-kinds");
  ASSERT_EQ(plan->events.size(), 15u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::SiteWithdraw);
  EXPECT_EQ(plan->events[0].site, SiteId{3});
  EXPECT_EQ(plan->events[0].label, "drain");
  EXPECT_EQ(plan->events[2].attachment, 2u);
  EXPECT_EQ(plan->events[4].a, make_asn(12));
  EXPECT_EQ(plan->events[4].b, make_asn(40));
  EXPECT_EQ(plan->events[10].kind, FaultKind::GeoDbStale);
  EXPECT_EQ(plan->events[10].db, 1u);
  EXPECT_DOUBLE_EQ(plan->events[10].magnitude, 0.4);
  const auto& faults = plan->events[13].faults;
  EXPECT_DOUBLE_EQ(faults.ping_loss_prob, 0.2);
  EXPECT_DOUBLE_EQ(faults.dns_timeout_prob, 0.1);
  EXPECT_EQ(faults.max_retries, 3);
  EXPECT_DOUBLE_EQ(faults.backoff_base_ms, 25.0);
  EXPECT_EQ(faults.seed, 7u);
}

TEST(Scenario, FlapExpandsIntoDownUpPair) {
  const auto plan = parse(R"({
    "name": "flappy",
    "events": [
      {"type": "site_link_flap", "site": 2, "attachment": 1},
      {"type": "link_flap", "a": 5, "b": 6}
    ]
  })");
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();
  ASSERT_EQ(plan->events.size(), 4u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::SiteLinkDown);
  EXPECT_EQ(plan->events[1].kind, FaultKind::SiteLinkUp);
  EXPECT_EQ(plan->events[0].site, plan->events[1].site);
  EXPECT_EQ(plan->events[0].attachment, plan->events[1].attachment);
  EXPECT_EQ(plan->events[0].label, "flap: down");
  EXPECT_EQ(plan->events[1].label, "flap: up");
  EXPECT_EQ(plan->events[2].kind, FaultKind::LinkDown);
  EXPECT_EQ(plan->events[3].kind, FaultKind::LinkUp);
}

TEST(Scenario, RejectsUnknownTypeNamingTheField) {
  const auto plan = parse(R"({"events": [{"type": "site_withdraw", "site": 0},
                                         {"type": "meteor_strike"}]})");
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.error().field, "events[1].type");
  EXPECT_NE(plan.error().message.find("meteor_strike"), std::string::npos);
  EXPECT_EQ(plan.error().file, "test.json");
}

TEST(Scenario, RejectsMissingRequiredMember) {
  const auto plan = parse(R"({"events": [{"type": "site_withdraw"}]})");
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.error().field, "events[0].site");
}

TEST(Scenario, RejectsOutOfRangeProbability) {
  const auto plan =
      parse(R"({"events": [{"type": "geodb_stale", "db": 0, "extra_wrong_country_prob": 1.5}]})");
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.error().field, "events[0].extra_wrong_country_prob");

  const auto plan2 =
      parse(R"({"events": [{"type": "measurement_degrade", "ping_loss_prob": -0.1}]})");
  ASSERT_FALSE(plan2.has_value());
  EXPECT_EQ(plan2.error().field, "events[0].ping_loss_prob");
}

TEST(Scenario, RejectsEmptyOrMissingEvents) {
  EXPECT_FALSE(parse(R"({"name": "empty", "events": []})").has_value());
  EXPECT_FALSE(parse(R"({"name": "none"})").has_value());
  EXPECT_FALSE(parse(R"([1, 2, 3])").has_value());
}

TEST(Scenario, LoadPlanReportsSyntaxErrorWithOffset) {
  // Unreadable path first.
  const auto missing = load_plan("/nonexistent/scenario.json");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().file, "/nonexistent/scenario.json");
}

TEST(Scenario, ReportSerializesEveryStepField) {
  ChaosReport report;
  report.plan = "p";
  report.deployment = "d";
  report.seed = 9;
  report.probes = 100;
  StepReport step;
  step.index = 0;
  step.event = "site_withdraw site=0";
  step.probes = 100;
  step.routes_before = 90;
  step.routes_after = 88;
  step.moved = 5;
  step.lost = 2;
  step.affected_probes = 7;
  step.still_served = 7;
  step.cross_region = 2;
  report.steps.push_back(step);

  const auto json = report_to_json(report);
  const std::string text = json.dump();
  EXPECT_NE(text.find("\"plan\":\"p\""), std::string::npos);
  EXPECT_NE(text.find("\"cross_region\":2"), std::string::npos);
  EXPECT_NE(text.find("\"survival_rate\":1"), std::string::npos);
  // Round-trips through the parser.
  const auto reparsed = io::parse_json_or_throw(text);
  ASSERT_TRUE(reparsed.find("steps")->is_array());
  EXPECT_EQ(reparsed.find("steps")->as_array().size(), 1u);
}

}  // namespace
}  // namespace ranycast::chaos
