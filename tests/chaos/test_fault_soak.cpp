// Chaos engine under adversarial storage: seeded I/O fault storms battering
// the checkpoint chain while a chaos timeline is killed and resumed, at
// worker counts {1, 2, hardware}. The invariant mirrors the torture soak's:
// a faulted run either fails with a structured error or leaves a resumable
// chain, and once the storm lifts the resumed report is byte-identical to
// the uninterrupted baseline — including after the newest generation is
// corrupted behind the runtime's back.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/guard/chain.hpp"
#include "ranycast/vfs/fault.hpp"

namespace ranycast::chaos {
namespace {

namespace fs = std::filesystem;

// Keep the soak scratch space recognizably named: the fault plans below use
// it as their path_filter, so only checkpoint-chain I/O is ever faulted.
const char kScratchTag[] = "ranycast_fault_soak";

lab::LabConfig soak_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = 2023;
  return config;
}

FaultPlan soak_plan() {
  FaultPlan plan;
  plan.name = "fault-soak";
  FaultEvent e;
  e.kind = FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::MeasurementDegrade;
  e.faults.ping_loss_prob = 0.2;
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);
  e = FaultEvent{};
  e.kind = FaultKind::MeasurementRestore;
  plan.events.push_back(e);
  return plan;
}

std::string chain_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string(kScratchTag) + "." + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / (tag + ".ck")).string();
}

void remove_chain_files(const std::string& ck) {
  const fs::path manifest(ck);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(manifest.parent_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(manifest.filename().string(), 0) == 0) fs::remove(entry.path());
  }
}

std::string newest_generation(const std::string& ck) {
  std::string best;
  std::uint64_t best_gen = 0;
  const std::string prefix = fs::path(ck).filename().string() + ".g";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(fs::path(ck).parent_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const auto gen = std::stoull(digits);
    if (gen >= best_gen) {
      best_gen = gen;
      best = entry.path().string();
    }
  }
  return best;
}

/// One guarded chaos run. `abort_after` > 0 cancels at that step;
/// `resume` reads whatever chain is on disk. Returns the outcome verbatim.
core::Expected<GuardedChaosRun, std::string> run_soak(const std::string& ck,
                                                      bool resume,
                                                      std::size_t abort_after) {
  auto laboratory = lab::Lab::create(soak_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = resume;
  policy.retry.max_attempts = 4;
  policy.retry.initial_backoff_ms = 0.01;
  policy.retry.max_backoff_ms = 0.05;
  if (abort_after > 0) {
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_after) supervisor.cancel();
    };
  }
  return engine.run_guarded(soak_plan(), supervisor, policy);
}

std::string baseline_json() {
  auto laboratory = lab::Lab::create(soak_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(soak_plan(), supervisor, policy);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  return outcome ? report_to_json(outcome->report).dump(2) : std::string();
}

/// Resume and demand byte-identity with `expected`. Total loss (the storm
/// silently tore EVERY generation before any write reported success) is the
/// one licensed failure, and it must be explicit: wipe and redo from zero.
void resume_and_compare(const std::string& ck, const std::string& expected,
                        const std::string& context) {
  auto resumed = run_soak(ck, /*resume=*/true, 0);
  if (!resumed.has_value()) {
    EXPECT_NE(resumed.error().find("damaged"), std::string::npos)
        << context << ": unstructured resume failure: " << resumed.error();
    remove_chain_files(ck);
    resumed = run_soak(ck, /*resume=*/true, 0);
  }
  ASSERT_TRUE(resumed.has_value()) << context << ": " << resumed.error();
  EXPECT_FALSE(resumed->report.truncated) << context;
  EXPECT_EQ(report_to_json(resumed->report).dump(2), expected) << context;
}

TEST(FaultSoak, StormKillResumeIsByteIdenticalAcrossWorkerCounts) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string expected = baseline_json();
  ASSERT_FALSE(expected.empty());

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);

  for (const unsigned workers : sweep) {
    pool.resize(workers);
    for (const std::uint64_t seed : {1ull, 2ull}) {
      const std::string tag =
          "storm_w" + std::to_string(workers) + "_s" + std::to_string(seed);
      const std::string ck = chain_path(tag);
      remove_chain_files(ck);

      // Storm phase: checkpoint I/O is battered while the run is killed
      // mid-timeline. Any outcome is legal except a crash — and whatever
      // hits disk must be either resumable or explicitly corrupt.
      std::uint64_t injected = 0;
      {
        // Far hotter than FaultPlan::storm: a killed chaos run only makes a
        // handful of checkpoint writes, so per-class probabilities must be
        // high for the storm to reliably bite within those few operations.
        vfs::FaultPlan plan;
        plan.seed = seed;
        plan.p_eintr = 0.4;
        plan.p_short_write = 0.4;
        plan.p_write_fail = 0.15;
        plan.p_fsync_fail = 0.15;
        plan.p_rename_fail = 0.10;
        plan.p_torn_rename = 0.15;
        plan.p_read_fail = 0.10;
        plan.p_bitflip_read = 0.20;
        plan.p_close_fail = 0.05;
        plan.path_filter = kScratchTag;
        vfs::ScopedFaultPlan faults(plan);
        auto stormy = run_soak(ck, /*resume=*/false, /*abort_after=*/2);
        injected = faults.stats().injected();
        if (!stormy.has_value()) {
          EXPECT_FALSE(stormy.error().empty()) << tag;
        }
      }
      EXPECT_GT(injected, 0u) << tag << ": the storm never actually bit";

      // Calm phase: self-healing resume must reconstruct the exact
      // uninterrupted bytes regardless of what the storm left behind.
      resume_and_compare(ck, expected, tag);
      remove_chain_files(ck);
    }
  }
  pool.resize(original);
}

TEST(FaultSoak, CorruptNewestGenerationFallsBackAcrossWorkerCounts) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string expected = baseline_json();
  ASSERT_FALSE(expected.empty());

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);

  for (const unsigned workers : sweep) {
    pool.resize(workers);
    const std::string tag = "corrupt_w" + std::to_string(workers);
    const std::string ck = chain_path(tag);
    remove_chain_files(ck);

    auto killed = run_soak(ck, /*resume=*/false, /*abort_after=*/2);
    ASSERT_TRUE(killed.has_value()) << tag << ": " << killed.error();
    ASSERT_TRUE(killed->report.truncated) << tag;

    // Corrupt the newest generation behind the runtime's back (the CI
    // script does the same through the CLI): resume must quarantine it,
    // fall back a generation, and still match the baseline exactly.
    const std::string newest = newest_generation(ck);
    ASSERT_FALSE(newest.empty()) << tag;
    {
      std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
      ASSERT_TRUE(f.good()) << newest;
      char byte{};
      f.seekg(40);
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x40);
      f.seekp(40);
      f.write(&byte, 1);
    }

    auto resumed = run_soak(ck, /*resume=*/true, 0);
    ASSERT_TRUE(resumed.has_value()) << tag << ": " << resumed.error();
    EXPECT_EQ(report_to_json(resumed->report).dump(2), expected) << tag;
    EXPECT_TRUE(fs::exists(newest + ".quarantined")) << tag;
    remove_chain_files(ck);
  }
  pool.resize(original);
}

}  // namespace
}  // namespace ranycast::chaos
