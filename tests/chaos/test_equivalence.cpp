// Acceptance check: a one-event chaos plan that withdraws a site reproduces
// `resilience::fail_site` exactly. The two implementations differ completely
// in mechanism — fail_site deploys a *fresh* withdrawn variant next to the
// original, the chaos engine mutates the deployment *in place* and re-solves —
// but the prefix-independent tie-break and address-independent latency model
// make every reported number identical.
#include <gtest/gtest.h>

#include <map>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/resilience/failover.hpp"

namespace ranycast::chaos {
namespace {

lab::LabConfig shared_config() {
  lab::LabConfig config;
  config.world.stub_count = 500;
  config.census.total_probes = 1500;
  return config;
}

SiteId busiest_site(lab::Lab& laboratory, const lab::DeploymentHandle& handle) {
  std::map<std::uint16_t, int> counts;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    const bgp::Route* r = handle.route_for(p->asn, answer.region);
    if (r != nullptr) counts[value(r->origin_site)]++;
  }
  std::uint16_t best = 0;
  int best_count = -1;
  for (const auto& [site, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = site;
    }
  }
  return SiteId{best};
}

TEST(Equivalence, SingleWithdrawalPlanMatchesFailSiteExactly) {
  // Two labs from the same seed are the same world. Lab A runs the legacy
  // fail_site experiment; lab B runs the chaos engine.
  auto lab_a = lab::Lab::create(shared_config());
  const auto& im6_a = lab_a.add_deployment(cdn::catalog::imperva6());
  const SiteId victim = busiest_site(lab_a, im6_a);
  const auto legacy = resilience::fail_site(lab_a, im6_a, victim);
  ASSERT_GT(legacy.affected_probes, 0u);

  auto lab_b = lab::Lab::create(shared_config());
  const auto& im6_b = lab_b.add_deployment(cdn::catalog::imperva6());
  Engine engine(lab_b, im6_b);
  const auto report = engine.run(single_site_withdrawal(victim));
  ASSERT_TRUE(report.has_value()) << report.error();
  ASSERT_EQ(report->steps.size(), 1u);
  const StepReport& step = report->steps[0];

  EXPECT_EQ(step.affected_probes, legacy.affected_probes);
  EXPECT_EQ(step.still_served, legacy.still_served);
  EXPECT_EQ(step.failover_in_region, legacy.failover_in_region);
  EXPECT_EQ(step.cross_region, legacy.cross_region);
  EXPECT_DOUBLE_EQ(step.before_p50_ms, legacy.before_p50_ms);
  EXPECT_DOUBLE_EQ(step.before_p90_ms, legacy.before_p90_ms);
  EXPECT_DOUBLE_EQ(step.after_p50_ms, legacy.after_p50_ms);
  EXPECT_DOUBLE_EQ(step.after_p90_ms, legacy.after_p90_ms);
  EXPECT_DOUBLE_EQ(step.survival_rate(), legacy.survival_rate());
}

}  // namespace
}  // namespace ranycast::chaos
