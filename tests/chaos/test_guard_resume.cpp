// ISSUE acceptance gate: a chaos timeline killed at any step and resumed
// from its checkpoint must produce a final report byte-identical to an
// uninterrupted same-seed run — at worker counts {1, 2, hardware}. Also:
// corrupted or foreign checkpoints are rejected, never silently replayed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::chaos {
namespace {

namespace fs = std::filesystem;

lab::LabConfig tiny_config(std::uint64_t seed = 2023) {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = seed;
  return config;
}

/// A timeline exercising routing, geo-DB and measurement-plane faults, with
/// withdraw/restore pairs so fast-forward replay must track undo state too.
FaultPlan cascade_plan() {
  FaultPlan plan;
  plan.name = "resume-cascade";
  FaultEvent e;

  e.kind = FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::GeoDbStale;
  e.db = 0;
  e.magnitude = 0.4;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::MeasurementDegrade;
  e.faults.ping_loss_prob = 0.2;
  e.faults.dns_timeout_prob = 0.1;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::RegionWithdraw;
  e.region = 0;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::RegionRestore;
  e.region = 0;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::MeasurementRestore;
  plan.events.push_back(e);

  return plan;
}

std::string checkpoint_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() / "ranycast_chaos_resume";
  fs::create_directories(dir);
  return (dir / (tag + ".ck")).string();
}

/// Uninterrupted baseline through the *guarded* path (no checkpoint file),
/// serialized to the exact bytes the CLI would emit.
std::string baseline_json(std::uint64_t seed = 2023) {
  auto laboratory = lab::Lab::create(tiny_config(seed));
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  return outcome ? report_to_json(outcome->report).dump(2) : std::string();
}

/// Run to `abort_at` completed steps with checkpointing, stop, then resume
/// in a fresh lab and return the final report bytes.
std::string abort_and_resume_json(std::size_t abort_at, const std::string& tag,
                                  std::uint64_t seed = 2023) {
  const std::string ck = checkpoint_path(tag);
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config(seed));
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_at) supervisor.cancel();
    };
    auto first = engine.run_guarded(cascade_plan(), supervisor, policy);
    EXPECT_TRUE(first.has_value()) << first.error();
    if (!first) return {};
    EXPECT_EQ(first->sweep.completed, abort_at);
    EXPECT_TRUE(first->report.truncated);
    EXPECT_EQ(first->report.completed_steps, abort_at);
    EXPECT_EQ(first->report.steps.size(), abort_at);
  }
  auto laboratory = lab::Lab::create(tiny_config(seed));
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto second = engine.run_guarded(cascade_plan(), supervisor, policy);
  EXPECT_TRUE(second.has_value()) << second.error();
  if (!second) return {};
  EXPECT_TRUE(second->sweep.resumed);
  EXPECT_EQ(second->sweep.resumed_from, abort_at);
  EXPECT_FALSE(second->report.truncated);
  fs::remove(ck);
  return report_to_json(second->report).dump(2);
}

TEST(GuardResume, ByteIdenticalAtEveryAbortPoint) {
  const std::string expected = baseline_json();
  ASSERT_FALSE(expected.empty());
  const std::size_t n = cascade_plan().events.size();
  // The ISSUE's abort matrix: first step, middle, last-but-one.
  for (const std::size_t abort_at : {std::size_t{1}, n / 2, n - 1}) {
    EXPECT_EQ(abort_and_resume_json(abort_at, "abort_" + std::to_string(abort_at)),
              expected)
        << "aborted after step " << abort_at;
  }
}

TEST(GuardResume, ByteIdenticalAcrossWorkerCounts) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string expected = baseline_json();
  const std::size_t n = cascade_plan().events.size();

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);
  for (const unsigned workers : sweep) {
    pool.resize(workers);
    EXPECT_EQ(baseline_json(), expected) << workers << " workers, uninterrupted";
    EXPECT_EQ(abort_and_resume_json(n / 2, "threads_" + std::to_string(workers)),
              expected)
        << workers << " workers, abort at " << n / 2;
  }
  pool.resize(original);
}

TEST(GuardResume, GuardedMatchesUnguardedRun) {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  auto plain = engine.run(cascade_plan());
  ASSERT_TRUE(plain.has_value()) << plain.error();
  EXPECT_EQ(plain->completed_steps, plain->planned_steps);
  EXPECT_FALSE(plain->truncated);
  EXPECT_EQ(report_to_json(*plain).dump(2), baseline_json());
}

TEST(GuardResume, CorruptedCheckpointIsRejected) {
  const std::string ck = checkpoint_path("corrupt");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(cascade_plan(), supervisor, policy).has_value());
  }
  // Flip one payload byte; the CRC must catch it on resume.
  {
    std::fstream f(ck, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte{};
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(40);
    f.write(&byte, 1);
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("CRC"), std::string::npos) << outcome.error();
  fs::remove(ck);
}

TEST(GuardResume, TruncatedCheckpointIsRejected) {
  const std::string ck = checkpoint_path("truncated");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(cascade_plan(), supervisor, policy).has_value());
  }
  const auto full_size = fs::file_size(ck);
  fs::resize_file(ck, full_size / 2);
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  EXPECT_FALSE(engine.run_guarded(cascade_plan(), supervisor, policy).has_value());
  fs::remove(ck);
}

TEST(GuardResume, CheckpointFromOtherSeedIsRejected) {
  const std::string ck = checkpoint_path("other_seed");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config(2023));
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(cascade_plan(), supervisor, policy).has_value());
  }
  auto laboratory = lab::Lab::create(tiny_config(777));  // different experiment
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("fingerprint"), std::string::npos) << outcome.error();
  fs::remove(ck);
}

TEST(GuardResume, DeadlineTruncationIsAccountedExplicitly) {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::RunLimits limits;
  limits.deadline_s = 1e-9;  // already expired at the first boundary
  guard::Supervisor supervisor(limits);
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_TRUE(outcome->report.truncated);
  EXPECT_EQ(outcome->report.completed_steps, 0u);
  EXPECT_EQ(outcome->report.planned_steps, cascade_plan().events.size());
  EXPECT_EQ(outcome->sweep.stopped, guard::StopReason::DeadlineExpired);
  const io::Json json = report_to_json(outcome->report);
  EXPECT_TRUE(json.as_object().at("truncated").as_bool());
}

}  // namespace
}  // namespace ranycast::chaos
