// ISSUE acceptance gate: a chaos timeline killed at any step and resumed
// from its checkpoint must produce a final report byte-identical to an
// uninterrupted same-seed run — at worker counts {1, 2, hardware}. With the
// checkpoint lineage, single-point damage (a corrupt newest generation, a
// torn manifest) must self-heal transparently; only total damage or a
// foreign checkpoint is rejected, never silently replayed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/guard/chain.hpp"

namespace ranycast::chaos {
namespace {

namespace fs = std::filesystem;

lab::LabConfig tiny_config(std::uint64_t seed = 2023) {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = seed;
  return config;
}

/// A timeline exercising routing, geo-DB and measurement-plane faults, with
/// withdraw/restore pairs so fast-forward replay must track undo state too.
FaultPlan cascade_plan() {
  FaultPlan plan;
  plan.name = "resume-cascade";
  FaultEvent e;

  e.kind = FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::GeoDbStale;
  e.db = 0;
  e.magnitude = 0.4;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::MeasurementDegrade;
  e.faults.ping_loss_prob = 0.2;
  e.faults.dns_timeout_prob = 0.1;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::RegionWithdraw;
  e.region = 0;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::RegionRestore;
  e.region = 0;
  plan.events.push_back(e);

  e = FaultEvent{};
  e.kind = FaultKind::MeasurementRestore;
  plan.events.push_back(e);

  return plan;
}

std::string checkpoint_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() / "ranycast_chaos_resume";
  fs::create_directories(dir);
  return (dir / (tag + ".ck")).string();
}

/// Remove the whole lineage — manifest, generation files, quarantined
/// casualties, stray tmp files — so a test never adopts a previous run's
/// generations via the directory scan.
void remove_chain_files(const std::string& ck) {
  const fs::path manifest(ck);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(manifest.parent_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(manifest.filename().string(), 0) == 0) fs::remove(entry.path());
  }
}

/// Newest on-disk generation file ("<ck>.g<N>" with the largest N).
std::string newest_generation(const std::string& ck) {
  std::string best;
  std::uint64_t best_gen = 0;
  const std::string prefix = fs::path(ck).filename().string() + ".g";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(fs::path(ck).parent_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const auto gen = std::stoull(digits);
    if (gen >= best_gen) {
      best_gen = gen;
      best = entry.path().string();
    }
  }
  return best;
}

/// Flip one byte in place (read-modify-write, so the byte always changes).
void corrupt_byte(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  char byte{};
  f.seekg(offset);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(offset);
  f.write(&byte, 1);
}

/// Uninterrupted baseline through the *guarded* path (no checkpoint file),
/// serialized to the exact bytes the CLI would emit.
std::string baseline_json(std::uint64_t seed = 2023) {
  auto laboratory = lab::Lab::create(tiny_config(seed));
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  return outcome ? report_to_json(outcome->report).dump(2) : std::string();
}

/// Run to `abort_at` completed steps with checkpointing, stop, then resume
/// in a fresh lab and return the final report bytes.
std::string abort_and_resume_json(std::size_t abort_at, const std::string& tag,
                                  std::uint64_t seed = 2023) {
  const std::string ck = checkpoint_path(tag);
  remove_chain_files(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config(seed));
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    Engine engine(laboratory, im6);
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_at) supervisor.cancel();
    };
    auto first = engine.run_guarded(cascade_plan(), supervisor, policy);
    EXPECT_TRUE(first.has_value()) << first.error();
    if (!first) return {};
    EXPECT_EQ(first->sweep.completed, abort_at);
    EXPECT_TRUE(first->report.truncated);
    EXPECT_EQ(first->report.completed_steps, abort_at);
    EXPECT_EQ(first->report.steps.size(), abort_at);
  }
  auto laboratory = lab::Lab::create(tiny_config(seed));
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto second = engine.run_guarded(cascade_plan(), supervisor, policy);
  EXPECT_TRUE(second.has_value()) << second.error();
  if (!second) return {};
  EXPECT_TRUE(second->sweep.resumed);
  EXPECT_EQ(second->sweep.resumed_from, abort_at);
  EXPECT_FALSE(second->report.truncated);
  remove_chain_files(ck);
  return report_to_json(second->report).dump(2);
}

/// Checkpointed run aborted after `abort_at` steps, leaving the chain on
/// disk for the caller to damage before resuming.
void run_and_abort(const std::string& ck, std::size_t abort_at,
                   std::uint64_t seed = 2023) {
  auto laboratory = lab::Lab::create(tiny_config(seed));
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.after_step = [&](std::size_t done, std::size_t) {
    if (done == abort_at) supervisor.cancel();
  };
  ASSERT_TRUE(engine.run_guarded(cascade_plan(), supervisor, policy).has_value());
}

TEST(GuardResume, ByteIdenticalAtEveryAbortPoint) {
  const std::string expected = baseline_json();
  ASSERT_FALSE(expected.empty());
  const std::size_t n = cascade_plan().events.size();
  // The ISSUE's abort matrix: first step, middle, last-but-one.
  for (const std::size_t abort_at : {std::size_t{1}, n / 2, n - 1}) {
    EXPECT_EQ(abort_and_resume_json(abort_at, "abort_" + std::to_string(abort_at)),
              expected)
        << "aborted after step " << abort_at;
  }
}

TEST(GuardResume, ByteIdenticalAcrossWorkerCounts) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string expected = baseline_json();
  const std::size_t n = cascade_plan().events.size();

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);
  for (const unsigned workers : sweep) {
    pool.resize(workers);
    EXPECT_EQ(baseline_json(), expected) << workers << " workers, uninterrupted";
    EXPECT_EQ(abort_and_resume_json(n / 2, "threads_" + std::to_string(workers)),
              expected)
        << workers << " workers, abort at " << n / 2;
  }
  pool.resize(original);
}

TEST(GuardResume, GuardedMatchesUnguardedRun) {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  auto plain = engine.run(cascade_plan());
  ASSERT_TRUE(plain.has_value()) << plain.error();
  EXPECT_EQ(plain->completed_steps, plain->planned_steps);
  EXPECT_FALSE(plain->truncated);
  EXPECT_EQ(report_to_json(*plain).dump(2), baseline_json());
}

TEST(GuardResume, CorruptNewestGenerationQuarantinesAndFallsBack) {
  const std::string ck = checkpoint_path("corrupt_gen");
  remove_chain_files(ck);
  run_and_abort(ck, 2);

  // Flip one payload byte in the NEWEST generation: resume must quarantine
  // it, fall back to the previous generation and still converge to the
  // uninterrupted baseline — transparently, not as an error.
  const std::string newest = newest_generation(ck);
  ASSERT_FALSE(newest.empty()) << "no generation files next to " << ck;
  corrupt_byte(newest, 40);

  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_TRUE(outcome->sweep.resumed);
  // Fallback resumes from the previous generation's cursor, one step back.
  EXPECT_EQ(outcome->sweep.resumed_from, 1u);
  EXPECT_EQ(report_to_json(outcome->report).dump(2), baseline_json());
  EXPECT_FALSE(fs::exists(newest));
  EXPECT_TRUE(fs::exists(newest + ".quarantined"));
  remove_chain_files(ck);
}

TEST(GuardResume, TornManifestHealsViaDirectoryScan) {
  const std::string ck = checkpoint_path("torn_manifest");
  remove_chain_files(ck);
  run_and_abort(ck, 2);

  // Tear the manifest in half (the classic no-dir-fsync rename loss). The
  // generations are intact, so resume must rebuild the chain from the
  // directory scan and proceed as if nothing happened.
  const auto full_size = fs::file_size(ck);
  fs::resize_file(ck, full_size / 2);

  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_TRUE(outcome->sweep.resumed);
  EXPECT_EQ(outcome->sweep.resumed_from, 2u);
  EXPECT_EQ(report_to_json(outcome->report).dump(2), baseline_json());
  remove_chain_files(ck);
}

TEST(GuardResume, EveryGenerationCorruptIsRejected) {
  const std::string ck = checkpoint_path("all_corrupt");
  remove_chain_files(ck);
  run_and_abort(ck, 2);

  // Damage every generation: self-healing has nothing left to fall back to,
  // so resume must surface a structured corruption error — never silently
  // restart from scratch.
  std::size_t generations = 0;
  for (std::string gen = newest_generation(ck); !gen.empty();
       gen = newest_generation(ck)) {
    corrupt_byte(gen, 40);
    fs::rename(gen, gen + ".damaged");  // park it so the scan loop advances
    ++generations;
  }
  ASSERT_GE(generations, 2u);
  for (const auto& entry : fs::directory_iterator(fs::path(ck).parent_path())) {
    const std::string name = entry.path().string();
    if (name.size() > 8 && name.rfind(ck + ".g", 0) == 0 &&
        name.compare(name.size() - 8, 8, ".damaged") == 0) {
      fs::rename(name, name.substr(0, name.size() - 8));
    }
  }

  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("damaged"), std::string::npos) << outcome.error();
  remove_chain_files(ck);
}

TEST(GuardResume, CheckpointFromOtherSeedIsRejected) {
  const std::string ck = checkpoint_path("other_seed");
  remove_chain_files(ck);
  run_and_abort(ck, 2, /*seed=*/2023);

  auto laboratory = lab::Lab::create(tiny_config(777));  // different experiment
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("fingerprint"), std::string::npos) << outcome.error();
  // Operator error, not bit rot: the foreign chain must survive untouched.
  EXPECT_TRUE(guard::chain_exists(ck));
  EXPECT_FALSE(fs::exists(newest_generation(ck) + ".quarantined"));
  remove_chain_files(ck);
}

TEST(GuardResume, DeadlineTruncationIsAccountedExplicitly) {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  Engine engine(laboratory, im6);
  guard::RunLimits limits;
  limits.deadline_s = 1e-9;  // already expired at the first boundary
  guard::Supervisor supervisor(limits);
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(cascade_plan(), supervisor, policy);
  ASSERT_TRUE(outcome.has_value()) << outcome.error();
  EXPECT_TRUE(outcome->report.truncated);
  EXPECT_EQ(outcome->report.completed_steps, 0u);
  EXPECT_EQ(outcome->report.planned_steps, cascade_plan().events.size());
  EXPECT_EQ(outcome->sweep.stopped, guard::StopReason::DeadlineExpired);
  const io::Json json = report_to_json(outcome->report);
  EXPECT_TRUE(json.as_object().at("truncated").as_bool());
}

}  // namespace
}  // namespace ranycast::chaos
