// Cooperative cancellation of parallel_for: a cancelled loop throws
// exec::CancelledError, never runs another item after acknowledging the
// request, never poisons the pool, and loses to a real exception when both
// race (exactly one error propagates).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "ranycast/exec/pool.hpp"

namespace ranycast::exec {
namespace {

using namespace std::chrono_literals;

TEST(Cancellation, RequestFromAnotherThreadStopsTheLoop) {
  ThreadPool pool(4);
  CancelFlag cancel;
  std::atomic<std::size_t> started{0};
  constexpr std::size_t kN = 1'000'000;

  std::thread canceller([&] {
    // Wait until the loop is demonstrably in flight, then pull the plug.
    while (started.load() < 64) std::this_thread::yield();
    cancel.request();
  });
  EXPECT_THROW(pool.parallel_for(
                   kN,
                   [&](std::size_t) {
                     started.fetch_add(1);
                     std::this_thread::sleep_for(50us);
                   },
                   &cancel),
               CancelledError);
  canceller.join();
  // Far fewer items than kN ran: the loop stopped at a chunk boundary
  // instead of draining a million sleeps.
  EXPECT_LT(started.load(), kN);
}

TEST(Cancellation, NoItemRunsAfterTheThrow) {
  ThreadPool pool(4);
  CancelFlag cancel;
  std::atomic<std::size_t> ran{0};
  std::thread canceller([&] {
    while (ran.load() < 32) std::this_thread::yield();
    cancel.request();
  });
  EXPECT_THROW(pool.parallel_for(
                   100'000,
                   [&](std::size_t) {
                     ran.fetch_add(1);
                     std::this_thread::sleep_for(20us);
                   },
                   &cancel),
               CancelledError);
  canceller.join();
  // parallel_for drained every worker before throwing: the count must be
  // frozen now. Any still-running task would show up within this window.
  const std::size_t frozen = ran.load();
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(ran.load(), frozen);
}

TEST(Cancellation, PoolStaysReusableAfterCancel) {
  ThreadPool pool(4);
  CancelFlag cancel;
  cancel.request();
  EXPECT_THROW(
      pool.parallel_for(10'000, [](std::size_t) {}, &cancel), CancelledError);
  cancel.reset();
  std::atomic<std::size_t> count{0};
  pool.parallel_for(
      1'000, [&](std::size_t) { count.fetch_add(1); }, &cancel);
  EXPECT_EQ(count.load(), 1'000u);
}

TEST(Cancellation, PreCancelledSerialLoopRunsNothing) {
  ThreadPool pool(1);
  CancelFlag cancel;
  cancel.request();
  std::size_t ran = 0;
  EXPECT_THROW(
      pool.parallel_for(100, [&](std::size_t) { ++ran; }, &cancel), CancelledError);
  EXPECT_EQ(ran, 0u);
}

TEST(Cancellation, CompletedLoopIgnoresLateRequest) {
  ThreadPool pool(4);
  CancelFlag cancel;
  std::atomic<std::size_t> count{0};
  // Cancel requested only after every item already ran: no CancelledError,
  // because nothing was actually skipped.
  pool.parallel_for(
      500, [&](std::size_t) { count.fetch_add(1); }, &cancel);
  cancel.request();
  EXPECT_EQ(count.load(), 500u);
}

TEST(Cancellation, ExceptionWinsOverCancellation) {
  ThreadPool pool(4);
  CancelFlag cancel;
  // The failing item requests cancellation itself right after throwing
  // range-wide: both stop paths race, exactly one error must come out, and
  // it must be the exception (the cause), not CancelledError (the effect).
  try {
    pool.parallel_for(
        100'000,
        [&](std::size_t i) {
          if (i == 1'000) {
            cancel.request();
            throw std::runtime_error("item 1000 failed");
          }
          std::this_thread::sleep_for(5us);
        },
        &cancel);
    FAIL() << "expected an exception";
  } catch (const CancelledError&) {
    FAIL() << "CancelledError shadowed the real failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 1000 failed");
  }
}

TEST(Cancellation, ScopedCancelGovernsImplicitFlag) {
  ThreadPool pool(4);
  CancelFlag cancel;
  cancel.request();
  {
    ScopedCancel scope(&cancel);
    // No explicit flag passed: the loop picks up the installed default.
    EXPECT_THROW(pool.parallel_for(10'000, [](std::size_t) {}), CancelledError);
  }
  // Scope ended: the same call runs to completion again.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(1'000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1'000u);
}

TEST(Cancellation, ScopedCancelRestoresPreviousFlag) {
  ThreadPool pool(2);
  CancelFlag outer;
  outer.request();
  {
    ScopedCancel outer_scope(&outer);
    {
      CancelFlag inner;  // not requested
      ScopedCancel inner_scope(&inner);
      std::atomic<std::size_t> count{0};
      pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
      EXPECT_EQ(count.load(), 100u);
    }
    // Inner scope gone: the outer (requested) flag is in force again.
    EXPECT_THROW(pool.parallel_for(10'000, [](std::size_t) {}), CancelledError);
  }
}

}  // namespace
}  // namespace ranycast::exec
