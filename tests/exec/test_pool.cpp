// ranycast::exec — the deterministic thread pool the parallel catchment
// engine and measurement fan-out are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ranycast/exec/pool.hpp"

namespace ranycast::exec {
namespace {

TEST(ThreadPool, EveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroAndOneItems) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "fn called for n=0"; });
  int called = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++called;
  });
  EXPECT_EQ(called, 1);
}

TEST(ThreadPool, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ResultsIdenticalAcrossWorkerCounts) {
  constexpr std::size_t kN = 5'000;
  auto compute = [](ThreadPool& pool) {
    return parallel_map<std::uint64_t>(pool, kN, [](std::size_t i) {
      std::uint64_t h = i * 0x9E3779B97F4A7C15ull;
      h ^= h >> 31;
      return h * 0xBF58476D1CE4E5B9ull;
    });
  };
  ThreadPool serial(1);
  const auto expected = compute(serial);
  for (unsigned workers : {2u, 3u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(compute(pool), expected) << workers << " workers";
  }
}

TEST(ThreadPool, ResizeSweepsWorkerCounts) {
  ThreadPool pool(1);
  constexpr std::size_t kN = 2'000;
  auto sum = [&] {
    std::vector<std::uint64_t> out(kN);
    pool.parallel_for(kN, [&](std::size_t i) { out[i] = i * i; });
    return std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  };
  const std::uint64_t expected = sum();
  for (unsigned workers : {2u, 4u, 1u, 3u}) {
    pool.resize(workers);
    EXPECT_EQ(pool.worker_count(), workers);
    EXPECT_EQ(sum(), expected) << workers << " workers";
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::uint64_t> out(kOuter, 0);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    // The inner loop must not re-enter the pool (deadlock) — it runs
    // serially on the worker that owns item `o`.
    std::uint64_t acc = 0;
    pool.parallel_for(kInner, [&](std::size_t i) { acc += o * kInner + i; });
    out[o] = acc;
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kInner; ++i) expected += o * kInner + i;
    EXPECT_EQ(out[o], expected);
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1'000,
                        [&](std::size_t i) {
                          if (i == 417) throw std::runtime_error("item 417");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, DefaultWorkerCountHonorsEnv) {
  ::setenv("RANYCAST_THREADS", "3", 1);
  EXPECT_EQ(default_worker_count(), 3u);
  ::setenv("RANYCAST_THREADS", "0", 1);
  EXPECT_GE(default_worker_count(), 1u);  // invalid -> hardware fallback
  ::setenv("RANYCAST_THREADS", "999", 1);
  EXPECT_EQ(default_worker_count(), 64u);  // oversubscription ceiling
  ::unsetenv("RANYCAST_THREADS");
  EXPECT_GE(default_worker_count(), 1u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
}

}  // namespace
}  // namespace ranycast::exec
