#include "ranycast/proposals/anyopt.hpp"

#include <gtest/gtest.h>

#include "ranycast/tangled/testbed.hpp"

namespace ranycast::proposals {
namespace {

class AnyOptTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 500;
    config.census.total_probes = 1200;
    return lab::Lab::create(config);
  }

  AnyOptTest() : lab_(make_lab()) {}

  lab::Lab lab_;
};

TEST_F(AnyOptTest, LearnsAllPairs) {
  const auto spec = tangled::global_spec();
  const auto model = AnyOptModel::learn(lab_, spec);
  EXPECT_EQ(model.site_count(), 12u);
}

TEST_F(AnyOptTest, SingletonSubsetPredictsItself) {
  const auto spec = tangled::global_spec();
  const auto model = AnyOptModel::learn(lab_, spec);
  const atlas::Probe* p = lab_.census().retained().front();
  for (std::size_t s = 0; s < 3; ++s) {
    const std::size_t subset[] = {s};
    const auto predicted = model.predict(p->asn, subset);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_EQ(*predicted, s);
  }
}

TEST_F(AnyOptTest, EmptySubsetYieldsNullopt) {
  const auto spec = tangled::global_spec();
  const auto model = AnyOptModel::learn(lab_, spec);
  const atlas::Probe* p = lab_.census().retained().front();
  EXPECT_FALSE(model.predict(p->asn, {}).has_value());
}

TEST_F(AnyOptTest, PairwisePredictionMatchesPairwiseDeployment) {
  // For two-site subsets the prediction is the measured experiment itself.
  const auto spec = tangled::global_spec();
  const auto model = AnyOptModel::learn(lab_, spec);
  const std::size_t subset[] = {0, 5};
  const atlas::Probe* p = lab_.census().retained().front();
  const auto predicted = model.predict(p->asn, subset);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_TRUE(*predicted == 0 || *predicted == 5);
}

TEST_F(AnyOptTest, FullSetPredictionIsMostlyAccurate) {
  // AnyOpt's premise: pairwise results predict full-deployment catchments.
  const auto spec = tangled::global_spec();
  const auto model = AnyOptModel::learn(lab_, spec);
  const auto& full = lab_.add_deployment(spec);
  const double accuracy = model.validate(lab_, full);
  EXPECT_GT(accuracy, 0.75) << "pairwise tournament should predict most catchments";
}

TEST_F(AnyOptTest, OptimizerReturnsUsableSubset) {
  const auto result = anyopt_optimize(lab_, tangled::global_spec());
  ASSERT_FALSE(result.chosen_sites.empty());
  EXPECT_LE(result.chosen_sites.size(), 12u);
  ASSERT_NE(result.deployment, nullptr);
  EXPECT_GT(result.measured_mean_ms, 0.0);
  // The optimizer's subset should not be much worse than announcing
  // everything (it may even be better - that is AnyOpt's point).
  const auto& everything = lab_.add_deployment(tangled::global_spec());
  double total = 0.0;
  std::size_t counted = 0;
  for (const atlas::Probe* p : lab_.census().retained()) {
    if (const auto rtt = lab_.ping(*p, everything.deployment.regions()[0].service_ip)) {
      total += rtt->ms;
      ++counted;
    }
  }
  const double all_mean = total / static_cast<double>(counted);
  EXPECT_LT(result.measured_mean_ms, all_mean * 1.25);
}

}  // namespace
}  // namespace ranycast::proposals
