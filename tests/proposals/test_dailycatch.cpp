#include "ranycast/proposals/dailycatch.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/tangled/testbed.hpp"

namespace ranycast::proposals {
namespace {

class DailyCatchTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 600;
    config.census.total_probes = 1500;
    return lab::Lab::create(config);
  }

  DailyCatchTest() : lab_(make_lab()) {}

  lab::Lab lab_;
};

TEST_F(DailyCatchTest, TransitOnlyKeepsOnlyCustomerAttachments) {
  const auto dep = filtered_deployment(cdn::catalog::imperva6(), true, false, lab_.world(),
                                       lab_.registry());
  for (const cdn::Site& s : dep.sites()) {
    EXPECT_FALSE(s.attachments.empty());
    for (const cdn::Attachment& a : s.attachments) {
      EXPECT_EQ(a.rel, topo::Rel::Customer);
    }
  }
}

TEST_F(DailyCatchTest, AllPeerPrefersPeersButNeverStrands) {
  const auto base = cdn::build_deployment(cdn::catalog::imperva6(), lab_.world(),
                                          lab_.registry());
  const auto dep = filtered_deployment(cdn::catalog::imperva6(), false, true, lab_.world(),
                                       lab_.registry());
  ASSERT_EQ(dep.sites().size(), base.sites().size());
  for (std::size_t i = 0; i < dep.sites().size(); ++i) {
    const auto& site = dep.sites()[i];
    ASSERT_FALSE(site.attachments.empty()) << "stranded site " << i;
    const bool base_had_peers =
        std::any_of(base.sites()[i].attachments.begin(), base.sites()[i].attachments.end(),
                    [](const cdn::Attachment& a) { return topo::is_peer(a.rel); });
    for (const cdn::Attachment& a : site.attachments) {
      if (base_had_peers) {
        EXPECT_TRUE(topo::is_peer(a.rel));
      } else {
        EXPECT_EQ(a.rel, topo::Rel::Customer);  // the fallback transit uplink
      }
    }
  }
}

TEST_F(DailyCatchTest, ChoosesTheBetterMeasuredConfiguration) {
  const auto outcome = run_dailycatch(lab_, tangled::global_spec());
  ASSERT_NE(outcome.transit_only, nullptr);
  ASSERT_NE(outcome.all_peer, nullptr);
  ASSERT_NE(outcome.chosen, nullptr);
  const double chosen_mean =
      outcome.chose_transit() ? outcome.transit_mean_ms : outcome.peer_mean_ms;
  EXPECT_LE(chosen_mean, outcome.transit_mean_ms);
  EXPECT_LE(chosen_mean, outcome.peer_mean_ms);
}

TEST_F(DailyCatchTest, BothConfigurationsRemainUsable) {
  const auto outcome = run_dailycatch(lab_, tangled::global_spec());
  const atlas::Probe* p = lab_.census().retained().front();
  EXPECT_TRUE(
      lab_.ping(*p, outcome.transit_only->deployment.regions()[0].service_ip).has_value());
  EXPECT_TRUE(
      lab_.ping(*p, outcome.all_peer->deployment.regions()[0].service_ip).has_value());
}

}  // namespace
}  // namespace ranycast::proposals
