#include "ranycast/proposals/single_provider.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/tangled/testbed.hpp"

namespace ranycast::proposals {
namespace {

class SingleProviderTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 600;
    config.census.total_probes = 1500;
    return lab::Lab::create(config);
  }

  SingleProviderTest() : lab_(make_lab()) {}

  lab::Lab lab_;
};

TEST_F(SingleProviderTest, BestProviderIsTier1WithCoverage) {
  const auto spec = tangled::global_spec();
  const Asn provider = best_single_provider(spec, lab_.world());
  ASSERT_NE(provider, kInvalidAsn);
  const topo::AsNode* node = lab_.world().graph.find(provider);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->kind, topo::AsKind::Tier1);
}

TEST_F(SingleProviderTest, EverySiteAttachesOnlyToProvider) {
  const auto spec = tangled::global_spec();
  const Asn provider = best_single_provider(spec, lab_.world());
  const auto dep =
      single_provider_deployment(spec, provider, lab_.world(), lab_.registry());
  EXPECT_EQ(dep.sites().size(), spec.sites.size());
  for (const cdn::Site& s : dep.sites()) {
    ASSERT_EQ(s.attachments.size(), 1u);
    EXPECT_EQ(s.attachments[0].neighbor, provider);
    EXPECT_EQ(s.attachments[0].rel, topo::Rel::Customer);
  }
}

TEST_F(SingleProviderTest, StaysDeployableAndReachable) {
  const auto spec = tangled::global_spec();
  const Asn provider = best_single_provider(spec, lab_.world());
  const auto& handle = lab_.add_deployment(
      single_provider_deployment(spec, provider, lab_.world(), lab_.registry()));
  std::size_t reachable = 0;
  const auto retained = lab_.census().retained();
  for (const atlas::Probe* p : retained) {
    if (lab_.ping(*p, handle.deployment.regions()[0].service_ip)) ++reachable;
  }
  EXPECT_EQ(reachable, retained.size());
}

TEST_F(SingleProviderTest, FreshPrefixesDoNotCollideWithBase) {
  const auto spec = tangled::global_spec();
  const auto& base = lab_.add_deployment(spec);
  const Asn provider = best_single_provider(spec, lab_.world());
  const auto& variant = lab_.add_deployment(
      single_provider_deployment(spec, provider, lab_.world(), lab_.registry()));
  EXPECT_NE(base.deployment.regions()[0].prefix, variant.deployment.regions()[0].prefix);
}

TEST_F(SingleProviderTest, CatchmentConfinedToProviderCone) {
  // Inside one provider, BGP's inter-provider policies cannot act: every
  // client's route enters the CDN through the chosen carrier.
  const auto spec = tangled::global_spec();
  const Asn provider = best_single_provider(spec, lab_.world());
  const auto& handle = lab_.add_deployment(
      single_provider_deployment(spec, provider, lab_.world(), lab_.registry()));
  for (const atlas::Probe* p : lab_.census().retained()) {
    const bgp::Route* r = handle.route_for(p->asn, 0);
    ASSERT_NE(r, nullptr);
    ASSERT_GE(r->as_path.size(), 2u);
    EXPECT_EQ(r->as_path[1], provider);  // first hop out of the CDN
  }
}

}  // namespace
}  // namespace ranycast::proposals
