// The durability layer under adversarial conditions: write_all must survive
// EINTR and short writes, write_file_atomic must never leave a half-written
// destination, and the seeded fault plan must be exactly replayable — the
// same seed over the same operation sequence injects the same faults.
#include "ranycast/vfs/vfs.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "ranycast/vfs/fault.hpp"

namespace ranycast::vfs {
namespace {

namespace fs = std::filesystem;

std::string scratch(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("ranycast_vfs_test." + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / tag).string();
}

std::string blob(std::size_t n) {
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + (i * 31) % 26));
  }
  return out;
}

std::string slurp(const std::string& path) {
  auto bytes = read_file(path);
  EXPECT_TRUE(bytes.has_value()) << (bytes ? "" : bytes.error().to_string());
  if (!bytes) return {};
  return std::string(bytes->begin(), bytes->end());
}

TEST(Vfs, WriteFileAtomicRoundTrips) {
  const std::string path = scratch("roundtrip.bin");
  const std::string data = blob(4096);
  auto written = write_file_atomic(path, std::string_view(data));
  ASSERT_TRUE(written.has_value()) << written.error().to_string();
  EXPECT_EQ(slurp(path), data);
  EXPECT_FALSE(exists(path + ".tmp"));  // staging file never survives
}

TEST(Vfs, WriteAllLoopsOverEintrAndShortWrites) {
  const std::string path = scratch("short_writes.bin");
  const std::string data = blob(64 * 1024);
  FaultStats stats;
  {
    FaultPlan plan;
    plan.seed = 42;
    plan.p_eintr = 0.3;
    plan.p_short_write = 0.5;
    ScopedFaultPlan faults(plan);
    auto file = File::create(path);
    ASSERT_TRUE(file.has_value()) << file.error().to_string();
    auto written = file->write_all(std::string_view(data));
    ASSERT_TRUE(written.has_value()) << written.error().to_string();
    ASSERT_TRUE(file->close().has_value());
    stats = faults.stats();
  }
  // The plan must actually have bitten, and the loop must have healed it.
  EXPECT_GT(stats.eintr + stats.short_write, 0u);
  EXPECT_EQ(slurp(path), data);
}

TEST(Vfs, FaultStreamIsDeterministic) {
  const std::string data = blob(32 * 1024);
  auto run_once = [&](std::uint64_t seed, const std::string& tag) {
    const std::string path = scratch(tag);
    ScopedFaultPlan faults(FaultPlan::storm(seed, 0.25));
    const bool ok = write_file_atomic(path, std::string_view(data)).has_value();
    const FaultStats s = faults.stats();
    return std::tuple<bool, std::uint64_t, std::uint64_t>(ok, s.decisions,
                                                          s.injected());
  };
  // Same seed, same op sequence -> byte-for-byte the same fault decisions.
  EXPECT_EQ(run_once(7, "det_a.bin"), run_once(7, "det_b.bin"));
  EXPECT_EQ(run_once(1234, "det_c.bin"), run_once(1234, "det_d.bin"));
}

TEST(Vfs, EnospcBudgetFailsWritesWithPartialFile) {
  const std::string path = scratch("enospc.bin");
  const std::string data = blob(1000);
  FaultPlan plan;
  plan.enospc_after_bytes = 64;  // the "disk" accepts 64 bytes, ever
  ScopedFaultPlan faults(plan);
  auto file = File::create(path);
  ASSERT_TRUE(file.has_value()) << file.error().to_string();
  auto written = file->write_all(std::string_view(data));
  ASSERT_FALSE(written.has_value());
  EXPECT_EQ(written.error().err, ENOSPC);
  EXPECT_TRUE(written.error().injected);
  EXPECT_TRUE(written.error().retryable());  // space can be freed
  (void)file->close();
  // A REAL torn file is left behind: a prefix within the byte budget.
  EXPECT_LE(fs::file_size(path), 64u);
  EXPECT_GT(faults.stats().enospc, 0u);
}

TEST(Vfs, EnospcAbortsAtomicWriteAndCleansUp) {
  const std::string path = scratch("enospc_atomic.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("previous")).has_value());
  {
    FaultPlan plan;
    plan.enospc_after_bytes = 8;
    ScopedFaultPlan faults(plan);
    EXPECT_FALSE(write_file_atomic(path, std::string_view(blob(512))).has_value());
  }
  // Old contents intact, no torn tmp file littering the directory.
  EXPECT_EQ(slurp(path), "previous");
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(Vfs, TornRenameLeavesDetectablePrefix) {
  const std::string path = scratch("torn.bin");
  const std::string data = blob(2048);
  FaultPlan plan;
  plan.p_torn_rename = 1.0;
  ScopedFaultPlan faults(plan);
  // The rename "succeeds" — the crash window tears the destination instead.
  auto written = write_file_atomic(path, std::string_view(data));
  ASSERT_TRUE(written.has_value()) << written.error().to_string();
  EXPECT_LT(fs::file_size(path), data.size());
  EXPECT_GT(faults.stats().torn_rename, 0u);
}

TEST(Vfs, BitflipOnReadIsInjected) {
  const std::string path = scratch("bitflip.bin");
  const std::string data = blob(1024);
  ASSERT_TRUE(write_file_atomic(path, std::string_view(data)).has_value());
  {
    FaultPlan plan;
    plan.p_bitflip_read = 1.0;
    ScopedFaultPlan faults(plan);
    auto bytes = read_file(path);
    ASSERT_TRUE(bytes.has_value()) << bytes.error().to_string();
    EXPECT_NE(std::string(bytes->begin(), bytes->end()), data);
    EXPECT_GT(faults.stats().bitflip_read, 0u);
  }
  // With the plan gone the file itself is undamaged: the flip was in-memory.
  EXPECT_EQ(slurp(path), data);
}

TEST(Vfs, FailedFsyncAbortsAtomicWrite) {
  const std::string path = scratch("fsyncgate.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("durable")).has_value());
  FaultPlan plan;
  plan.p_fsync_fail = 1.0;
  ScopedFaultPlan faults(plan);
  auto written = write_file_atomic(path, std::string_view("lost"));
  ASSERT_FALSE(written.has_value());
  EXPECT_EQ(written.error().op, "fsync");
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(Vfs, CloseFailurePropagates) {
  const std::string path = scratch("close_fail.bin");
  FaultPlan plan;
  plan.p_close_fail = 1.0;
  ScopedFaultPlan faults(plan);
  // A deferred write error surfacing at close() must fail the atomic write:
  // swallowing it is silent data loss (the NFS/quota classic).
  EXPECT_FALSE(write_file_atomic(path, std::string_view("x")).has_value());
  EXPECT_GT(faults.stats().close_fail, 0u);
}

TEST(Vfs, PathFilterScopesInjection) {
  const std::string hit = scratch("filtered_victim.bin");
  const std::string miss = scratch("innocent.bin");
  FaultPlan plan;
  plan.p_write_fail = 1.0;
  plan.path_filter = "filtered_victim";
  ScopedFaultPlan faults(plan);
  EXPECT_TRUE(write_file_atomic(miss, std::string_view("fine")).has_value());
  auto written = write_file_atomic(hit, std::string_view("doomed"));
  ASSERT_FALSE(written.has_value());
  EXPECT_TRUE(written.error().injected);
  EXPECT_NE(written.error().to_string().find("[injected]"), std::string::npos);
}

TEST(Vfs, NoPlanMeansNoFaults) {
  ASSERT_FALSE(faults_active());
  const std::string path = scratch("clean.bin");
  const std::string data = blob(8192);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(write_file_atomic(path, std::string_view(data)).has_value());
  }
  EXPECT_EQ(slurp(path), data);
}

TEST(Vfs, AppendTruncateSemantics) {
  const std::string path = scratch("append.ndjson");
  {
    auto file = File::open_append(path, /*truncate=*/true);
    ASSERT_TRUE(file.has_value());
    ASSERT_TRUE(file->write_all(std::string_view("one\n")).has_value());
  }
  {
    auto file = File::open_append(path, /*truncate=*/false);
    ASSERT_TRUE(file.has_value());
    ASSERT_TRUE(file->write_all(std::string_view("two\n")).has_value());
  }
  EXPECT_EQ(slurp(path), "one\ntwo\n");
  {
    auto file = File::open_append(path, /*truncate=*/true);
    ASSERT_TRUE(file.has_value());
    ASSERT_TRUE(file->write_all(std::string_view("fresh\n")).has_value());
  }
  EXPECT_EQ(slurp(path), "fresh\n");
}

}  // namespace
}  // namespace ranycast::vfs
