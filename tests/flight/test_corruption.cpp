// Journal forensics under damage: every line obs::Journal writes carries a
// CRC-32 tag, and the flight reader must (a) count each mid-file corruption
// exactly, (b) skip damaged lines instead of aborting, (c) treat a single
// cut FINAL line as the benign signature of a kill — not as damage — and
// (d) keep accepting legacy journals written before the tag existed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ranycast/flight/flight.hpp"
#include "ranycast/obs/journal.hpp"

namespace ranycast::flight {
namespace {

namespace fs = std::filesystem;
using F = obs::JournalField;

std::string scratch(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("ranycast_flight_corruption." + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / (tag + ".ndjson")).string();
}

/// Write `n` tagged journal lines the production way.
void write_journal(const std::string& path, std::size_t n) {
  obs::Journal journal;
  ASSERT_TRUE(journal.open(path, /*append=*/false)) << journal.error();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(journal.event("chaos_step", {F::u64_field("index", i)}));
  }
  journal.close();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines,
                 bool final_newline = true) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size() || final_newline) out << '\n';
  }
}

/// Flip one byte early in line `index` (inside the JSON body, before the
/// CRC tag, so the recomputed CRC cannot match).
void flip_line(std::vector<std::string>& lines, std::size_t index) {
  ASSERT_LT(index, lines.size());
  ASSERT_GT(lines[index].size(), 12u);
  lines[index][10] ^= 0x04;
}

TEST(JournalCorruption, CleanJournalIsUndamaged) {
  const std::string path = scratch("clean");
  write_journal(path, 5);
  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->events.size(), 5u);
  EXPECT_EQ(journal->corrupt_lines, 0u);
  EXPECT_EQ(journal->malformed_lines, 0u);
  EXPECT_FALSE(journal->truncated_tail);
  EXPECT_FALSE(journal->damaged());
}

TEST(JournalCorruption, MidFileFlipIsCountedAndSkipped) {
  const std::string path = scratch("one_flip");
  write_journal(path, 6);
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 6u);
  flip_line(lines, 2);
  write_lines(path, lines);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->corrupt_lines, 1u);
  EXPECT_EQ(journal->events.size(), 5u);  // the damaged line is skipped
  EXPECT_EQ(journal->malformed_lines, 0u);
  EXPECT_FALSE(journal->truncated_tail);
  EXPECT_TRUE(journal->damaged());
}

TEST(JournalCorruption, ExactCorruptLineAccounting) {
  const std::string path = scratch("three_flips");
  write_journal(path, 8);
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 8u);
  flip_line(lines, 1);
  flip_line(lines, 3);
  flip_line(lines, 5);
  write_lines(path, lines);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->corrupt_lines, 3u);
  EXPECT_EQ(journal->events.size(), 5u);
  EXPECT_TRUE(journal->damaged());
}

TEST(JournalCorruption, FlipThatStaysValidJsonIsStillCaught) {
  // The reason the CRC is checked BEFORE the JSON parse: a bit flip inside
  // a numeric field often yields a perfectly parseable line with a wrong
  // value — structurally fine, semantically poison.
  const std::string path = scratch("valid_json_flip");
  write_journal(path, 3);
  auto lines = read_lines(path);
  const auto digit = lines[1].find("\"index\":1");
  ASSERT_NE(digit, std::string::npos);
  lines[1][digit + 8] = '7';  // 1 -> 7: still valid JSON
  write_lines(path, lines);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->corrupt_lines, 1u);
  EXPECT_EQ(journal->events.size(), 2u);
  EXPECT_TRUE(journal->damaged());
}

TEST(JournalCorruption, SplicedGarbageIsMalformedNotFatal) {
  const std::string path = scratch("spliced");
  write_journal(path, 4);
  auto lines = read_lines(path);
  lines.insert(lines.begin() + 2, "@@@ splice: not json, no crc @@@");
  write_lines(path, lines);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->events.size(), 4u);
  EXPECT_EQ(journal->malformed_lines, 1u);
  EXPECT_EQ(journal->corrupt_lines, 0u);
  EXPECT_FALSE(journal->truncated_tail);  // mid-file, not a kill-cut
  EXPECT_TRUE(journal->damaged());
}

TEST(JournalCorruption, KillCutTailIsBenign) {
  const std::string path = scratch("kill_cut");
  write_journal(path, 5);
  auto lines = read_lines(path);
  // A SIGKILL mid-write leaves a prefix of the final line and no newline.
  lines.back() = lines.back().substr(0, lines.back().size() / 2);
  write_lines(path, lines, /*final_newline=*/false);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->events.size(), 4u);
  EXPECT_EQ(journal->malformed_lines, 1u);
  EXPECT_TRUE(journal->truncated_tail);
  EXPECT_FALSE(journal->damaged());  // expected kill signature, not rot
}

TEST(JournalCorruption, KillCutPlusMidFileDamageIsStillDamage) {
  const std::string path = scratch("cut_and_rot");
  write_journal(path, 6);
  auto lines = read_lines(path);
  flip_line(lines, 1);
  lines.back() = lines.back().substr(0, 10);
  write_lines(path, lines, /*final_newline=*/false);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->corrupt_lines, 1u);
  EXPECT_TRUE(journal->truncated_tail);
  EXPECT_TRUE(journal->damaged());  // the tail is excused, the rot is not
}

TEST(JournalCorruption, LegacyUntaggedLinesAreAccepted) {
  const std::string path = scratch("legacy");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{\"type\":\"run_manifest\",\"ts_ns\":1,\"tool\":\"old\"}\n";
  out << "{\"type\":\"chaos_step\",\"ts_ns\":2,\"index\":0}\n";
  out << "{\"type\":\"stopped\",\"ts_ns\":3,\"reason\":\"none\"}\n";
  out.close();

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  EXPECT_EQ(journal->events.size(), 3u);
  EXPECT_EQ(journal->corrupt_lines, 0u);
  EXPECT_EQ(journal->malformed_lines, 0u);
  EXPECT_FALSE(journal->damaged());
}

TEST(JournalCorruption, SummarizeReportsCorruptionCounts) {
  const std::string path = scratch("summary");
  write_journal(path, 4);
  auto lines = read_lines(path);
  flip_line(lines, 1);
  write_lines(path, lines);

  auto journal = load_journal(path);
  ASSERT_TRUE(journal.has_value()) << journal.error();
  const std::string text = summarize(*journal);
  EXPECT_NE(text.find("1 corrupt"), std::string::npos) << text;
}

}  // namespace
}  // namespace ranycast::flight
