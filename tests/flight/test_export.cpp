// ranycast::flight round trip: journals written by obs::Journal (including
// ones cut mid-line by a kill) load back, and the Chrome-trace export is
// schema-complete — every event carries ph/ts/pid/tid and async begin/end
// pairs balance, the same contract tools/check_trace.py enforces in CI.
#include "ranycast/flight/flight.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "ranycast/io/json.hpp"
#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::flight {
namespace {

namespace fs = std::filesystem;
using F = obs::JournalField;

std::string temp_path(const std::string& tag) {
  // ctest registers each case individually, so cases from this binary can run
  // as concurrent processes — keep their scratch files apart by pid.
  const auto dir = fs::temp_directory_path() /
                   ("ranycast_flight_test." + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / tag).string();
}

/// A journal shaped like a killed-and-resumed chaos run: manifest, phases,
/// steps (step 2 duplicated pre/post kill), a transient window, a resume
/// marker, and a final line cut mid-write.
std::string write_sample_journal() {
  const std::string path = temp_path("sample.ndjson");
  fs::remove(path);
  {
    obs::Journal journal;
    EXPECT_TRUE(journal.open(path, /*append=*/false));
    journal.event("run_manifest", {F::str("tool", "test"), F::u64_field("planned_steps", 3)});
    journal.event("phase_begin", {F::str("phase", "chaos.run")});
    journal.event("chaos_step",
                  {F::u64_field("index", 0), F::str("kind", "site_withdraw"),
                   F::u64_field("dur_ns", 1'000'000)});
    journal.event("chaos_step",
                  {F::u64_field("index", 1), F::str("kind", "geo_db_stale"),
                   F::u64_field("dur_ns", 2'000'000)});
    // Step 2 completed but the process died before the checkpoint: after
    // resume the same index is journaled again — consumers keep the last.
    journal.event("chaos_step",
                  {F::u64_field("index", 2), F::str("kind", "region_withdraw"),
                   F::u64_field("dur_ns", 3'000'000)});
  }
  {
    obs::Journal journal;
    EXPECT_TRUE(journal.open(path, /*append=*/true));
    journal.event("resumed", {F::u64_field("cursor", 2), F::u64_field("total", 3)}, true);
    journal.event("chaos_step",
                  {F::u64_field("index", 2), F::str("kind", "region_withdraw"),
                   F::u64_field("dur_ns", 2'500'000)});
    journal.event(
        "transient_window",
        {F::u64_field("index", 2), F::u64_field("probes", 100),
         F::raw("regions",
                "[{\"region\":0,\"converged_us\":120,\"max_blackhole_us\":80,"
                "\"blackholed\":4},"
                "{\"region\":1,\"converged_us\":60,\"max_blackhole_us\":0,"
                "\"blackholed\":0}]")});
    journal.event("stopped", {F::str("reason", "none"), F::u64_field("completed", 3)}, true);
  }
  // SIGKILL mid-write: an O_APPEND line can be cut, never interleaved.
  std::ofstream cut(path, std::ios::binary | std::ios::app);
  cut << "{\"type\":\"chaos_step\",\"ts_ns\":99,\"ind";
  return path;
}

TEST(JournalReader, KilledJournalLoadsUpToTheCutLine) {
  const auto loaded = load_journal(write_sample_journal());
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded->events.size(), 9u);
  EXPECT_EQ(loaded->malformed_lines, 1u);  // the cut tail, counted not fatal
  EXPECT_EQ(loaded->resume_markers, 1u);
  EXPECT_EQ(loaded->events.front().type, "run_manifest");
  EXPECT_EQ(loaded->events.back().type, "stopped");
  // ts_ns is relative to the process trace epoch, which the journal's first
  // event may itself pin — the front event can legitimately read 0, so only
  // monotonicity is guaranteed.
  for (std::size_t i = 1; i < loaded->events.size(); ++i) {
    EXPECT_GE(loaded->events[i].ts_ns, loaded->events[i - 1].ts_ns) << i;
  }
}

TEST(JournalReader, MissingFileIsAnError) {
  EXPECT_FALSE(load_journal(temp_path("does_not_exist.ndjson")).has_value());
}

TEST(JournalReader, FlightDumpRoundTripsThreadIdentity) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::clear_trace();
  obs::set_thread_name("export.main");
  {
    obs::Span outer("export.outer");
    obs::Span inner("export.inner");
  }
  const std::string path = temp_path("flight.ndjson");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << obs::flight_ndjson();
  }
  obs::clear_trace();
  obs::set_enabled(was_enabled);

  const auto threads = load_flight_dump(path);
  ASSERT_TRUE(threads.has_value()) << threads.error();
  ASSERT_EQ(threads->size(), 1u);
  EXPECT_EQ((*threads)[0].name, "export.main");
  EXPECT_NE((*threads)[0].os_tid, 0u);
  ASSERT_EQ((*threads)[0].events.size(), 2u);
  EXPECT_EQ((*threads)[0].events[0].name, "export.inner");  // completion order
  EXPECT_EQ((*threads)[0].events[1].name, "export.outer");
  fs::remove(path);
}

TEST(ChromeTrace, EveryEventHasPhTsPidTidAndAsyncPairsBalance) {
  const auto journal = load_journal(write_sample_journal());
  ASSERT_TRUE(journal.has_value());

  obs::FlightThreadSnapshot thread;
  thread.slot = 0;
  thread.os_tid = 4242;
  thread.name = "main";
  obs::TraceEvent span;
  span.name = "lab.create";
  span.parent = "";
  span.depth = 0;
  span.start_ns = 1'000;
  span.dur_ns = 5'000;
  span.seq = 0;
  span.tid = 4242;
  thread.events.push_back(span);
  thread.recorded = 1;

  TraceOptions options;
  options.pid = 7;
  const std::string text = chrome_trace(*journal, {thread}, options);
  const auto doc = io::parse_json_or_throw(text);
  const io::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());

  std::map<std::pair<std::string, double>, int> open_async;
  bool saw_span = false, saw_step_counter = false, saw_blackhole = false;
  for (const auto& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    // The check_trace.py contract, enforced here as well.
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_DOUBLE_EQ(e.find("pid")->as_number(), 7.0);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
      if (e.find("name")->as_string() == "lab.create") {
        saw_span = true;
        EXPECT_DOUBLE_EQ(e.find("tid")->as_number(), 4242.0);
        EXPECT_DOUBLE_EQ(e.find("dur")->as_number(), 5.0);  // ns -> us
      }
    } else if (ph == "b" || ph == "e") {
      const auto key = std::make_pair(e.find("cat")->as_string(),
                                      e.find("id")->as_number());
      if (ph == "b") {
        ++open_async[key];
        if (key.first == "blackhole") saw_blackhole = true;
      } else {
        ASSERT_GT(open_async[key], 0) << "async 'e' before its 'b'";
        --open_async[key];
      }
    } else if (ph == "C" && e.find("name")->as_string() == "chaos.step_ms") {
      saw_step_counter = true;
    }
  }
  for (const auto& [key, open] : open_async) {
    EXPECT_EQ(open, 0) << "unbalanced async track " << key.first;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_step_counter);
  EXPECT_TRUE(saw_blackhole);  // region 0 had max_blackhole_us > 0
}

TEST(ChromeTrace, EmptyInputsStillProduceAValidDocument) {
  const std::string text = chrome_trace(JournalFile{}, {});
  const auto doc = io::parse_json_or_throw(text);
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_TRUE(doc.find("traceEvents")->is_array());
}

TEST(Summarize, RollsUpTypesStepsAndResumeMarkers) {
  const auto journal = load_journal(write_sample_journal());
  ASSERT_TRUE(journal.has_value());
  const std::string text = summarize(*journal);
  EXPECT_NE(text.find("chaos_step"), std::string::npos);
  // 4 chaos_step lines but 3 distinct indexes after last-wins dedup.
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("resume"), std::string::npos);
}

TEST(Tail, ReturnsTheLastNEvents) {
  const auto journal = load_journal(write_sample_journal());
  ASSERT_TRUE(journal.has_value());
  const std::string two = tail(*journal, 2);
  EXPECT_NE(two.find("stopped"), std::string::npos);
  EXPECT_NE(two.find("transient_window"), std::string::npos);
  EXPECT_EQ(two.find("run_manifest"), std::string::npos);
}

}  // namespace
}  // namespace ranycast::flight
