// JournalTailer: incremental reads of a journal a live writer is still
// appending to. The contract under test: every committed (newline-
// terminated) line is surfaced exactly once across any interleaving with
// the writer — a partial tail is retried, never consumed, never miscounted
// — and the tailer's accumulated view agrees exactly with a final
// load_journal() of the same file, including under a vfs fault storm with
// writers on several threads (the concurrent reader-vs-writer soak).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/flight/flight.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/vfs/fault.hpp"

namespace ranycast::flight {
namespace {

namespace fs = std::filesystem;
using F = obs::JournalField;

constexpr const char* kScratchTag = "ranycast_flight_tailer";

std::string scratch(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string(kScratchTag) + "." + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / (tag + ".ndjson")).string();
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

TEST(JournalTailer, MissingFileIsAnEmptyPollNotAnError) {
  JournalTailer tailer(scratch("never_created"));
  const auto poll = tailer.poll();
  ASSERT_TRUE(poll.has_value()) << poll.error();
  EXPECT_TRUE(poll->events.empty());
  EXPECT_FALSE(poll->rotated);
  EXPECT_EQ(tailer.offset(), 0u);
}

TEST(JournalTailer, DeliversCommittedLinesIncrementallyAndExactlyOnce) {
  const std::string path = scratch("incremental");
  fs::remove(path);
  obs::Journal journal;
  ASSERT_TRUE(journal.open(path, /*append=*/false)) << journal.error();
  JournalTailer tailer(path);

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(journal.event("tail_probe", {F::u64_field("seq", i)}));
    if (i % 3 != 2) continue;  // poll only sometimes: batches accumulate
    const auto poll = tailer.poll();
    ASSERT_TRUE(poll.has_value());
    for (const JournalEvent& e : poll->events) {
      EXPECT_EQ(e.type, "tail_probe");
      EXPECT_EQ(e.fields.number_or("seq", -1.0), static_cast<double>(delivered))
          << "duplicate or gap";
      ++delivered;
    }
  }
  const auto final_poll = tailer.poll();
  ASSERT_TRUE(final_poll.has_value());
  delivered += final_poll->events.size();
  EXPECT_EQ(delivered, 20u);
  // Nothing left: the next poll is empty.
  EXPECT_TRUE(tailer.poll()->events.empty());
}

TEST(JournalTailer, PartialTailIsRetriedNotConsumed) {
  const std::string path = scratch("partial");
  fs::remove(path);
  obs::Journal journal;
  ASSERT_TRUE(journal.open(path, /*append=*/false)) << journal.error();
  ASSERT_TRUE(journal.event("tail_probe", {F::u64_field("seq", 0)}));
  journal.close();

  std::ifstream in(path);
  std::string committed;
  std::getline(in, committed);
  in.close();

  JournalTailer tailer(path);
  ASSERT_EQ(tailer.poll()->events.size(), 1u);
  const std::uint64_t committed_offset = tailer.offset();

  // A writer caught mid-append: half a line, no newline. The tailer must
  // neither consume it nor count it malformed.
  append_raw(path, committed.substr(0, committed.size() / 2));
  for (int i = 0; i < 3; ++i) {
    const auto poll = tailer.poll();
    ASSERT_TRUE(poll.has_value());
    EXPECT_TRUE(poll->events.empty()) << "retry " << i;
    EXPECT_EQ(poll->malformed_lines, 0u) << "retry " << i;
    EXPECT_EQ(tailer.offset(), committed_offset) << "retry " << i;
  }

  // The writer finishes the line: it is delivered exactly once, whole.
  append_raw(path, committed.substr(committed.size() / 2) + "\n");
  const auto poll = tailer.poll();
  ASSERT_TRUE(poll.has_value());
  ASSERT_EQ(poll->events.size(), 1u);
  EXPECT_EQ(poll->events[0].fields.number_or("seq", 99.0), 0.0);
  EXPECT_TRUE(tailer.poll()->events.empty());
}

TEST(JournalTailer, RotationResetsToTheStartOfTheNewFile) {
  const std::string path = scratch("rotation");
  fs::remove(path);
  {
    obs::Journal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/false));
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(journal.event("tail_probe", {F::u64_field("seq", i)}));
    }
  }
  JournalTailer tailer(path);
  ASSERT_EQ(tailer.poll()->events.size(), 5u);

  // The file is replaced by a shorter successor (log rotation).
  {
    obs::Journal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/false));
    ASSERT_TRUE(journal.event("tail_probe", {F::u64_field("seq", 100)}));
  }
  const auto poll = tailer.poll();
  ASSERT_TRUE(poll.has_value());
  EXPECT_TRUE(poll->rotated);
  ASSERT_EQ(poll->events.size(), 1u);
  EXPECT_EQ(poll->events[0].fields.number_or("seq", -1.0), 100.0);
}

TEST(JournalTailer, CountsDamageExactlyLikeLoadJournal) {
  const std::string path = scratch("damage");
  fs::remove(path);
  {
    obs::Journal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/false));
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(journal.event("tail_probe", {F::u64_field("seq", i)}));
    }
  }
  // Flip a byte inside line 2's JSON body: its CRC tag can no longer match.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::size_t line = 0, pos = 0;
  while (line < 2) {
    pos = bytes.find('\n', pos) + 1;
    ++line;
  }
  bytes[pos + 10] ^= 0x01;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  append_raw(path, "not json at all\n");

  JournalTailer tailer(path);
  const auto poll = tailer.poll();
  ASSERT_TRUE(poll.has_value());
  const auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(poll->events.size(), loaded->events.size());
  EXPECT_EQ(poll->events.size(), 5u);
  EXPECT_EQ(poll->corrupt_lines, loaded->corrupt_lines);
  EXPECT_EQ(poll->corrupt_lines, 1u);
  EXPECT_EQ(poll->malformed_lines, loaded->malformed_lines);
  EXPECT_EQ(poll->malformed_lines, 1u);
}

// ---------------------------------------------------------------------------
// The concurrent soak: writer threads appending through obs::Journal (all
// journal I/O rides ranycast::vfs, so a fault storm tears real lines) while
// the tailer polls the same file. Afterwards the tailer's accumulated view
// must match load_journal() exactly: every committed line exactly once,
// identical damage accounting, with at most one uncommitted tail pending.
// ---------------------------------------------------------------------------

TEST(JournalTailerConcurrent, ReaderSeesEveryCommittedLineExactlyOnceUnderFaultStorm) {
  constexpr std::size_t kLinesPerWriter = 150;
  for (const unsigned writers :
       {1u, 2u, std::max(2u, std::thread::hardware_concurrency())}) {
    const std::string path = scratch("concurrent_w" + std::to_string(writers));
    fs::remove(path);
    {
      obs::Journal create;  // fault-free creation of the empty journal
      ASSERT_TRUE(create.open(path, /*append=*/false)) << create.error();
    }

    vfs::FaultPlan plan;
    plan.seed = 1000 + writers;
    plan.p_eintr = 0.10;
    plan.p_short_write = 0.10;   // torn mid-line appends
    plan.p_write_fail = 0.05;    // lines lost outright
    plan.p_fsync_fail = 0.05;
    plan.p_close_fail = 0.05;
    plan.path_filter = kScratchTag;

    std::vector<JournalEvent> streamed;
    std::size_t corrupt = 0, malformed = 0;
    JournalTailer tailer(path);
    std::uint64_t fault_decisions = 0;
    {
      const vfs::ScopedFaultPlan faults(plan);
      std::atomic<unsigned> running{writers};
      std::vector<std::thread> threads;
      threads.reserve(writers);
      for (unsigned w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
          obs::Journal journal;  // one O_APPEND fd per writer: line-atomic
          if (journal.open(path, /*append=*/true)) {
            for (std::size_t i = 0; i < kLinesPerWriter; ++i) {
              journal.event("tail_probe", {F::u64_field("writer", w),
                                           F::u64_field("seq", i)},
                            /*durable=*/(i % 16) == 0);
              if (i % 8 == 0) std::this_thread::yield();
            }
          }
          running.fetch_sub(1, std::memory_order_release);
        });
      }
      // Poll concurrently with the storm. The tailer reads outside vfs, so
      // only the writers are being tortured.
      while (running.load(std::memory_order_acquire) > 0) {
        const auto poll = tailer.poll();
        ASSERT_TRUE(poll.has_value()) << poll.error();
        EXPECT_FALSE(poll->rotated);
        for (const JournalEvent& e : poll->events) streamed.push_back(e);
        corrupt += poll->corrupt_lines;
        malformed += poll->malformed_lines;
      }
      for (auto& t : threads) t.join();
      fault_decisions = faults.stats().decisions;
    }
    EXPECT_GT(fault_decisions, 0u) << writers << " writers";

    // Drain what the final writes committed.
    for (;;) {
      const auto poll = tailer.poll();
      ASSERT_TRUE(poll.has_value());
      for (const JournalEvent& e : poll->events) streamed.push_back(e);
      corrupt += poll->corrupt_lines;
      malformed += poll->malformed_lines;
      if (poll->events.empty() && poll->corrupt_lines == 0 &&
          poll->malformed_lines == 0) {
        break;
      }
    }

    const auto loaded = load_journal(path);
    ASSERT_TRUE(loaded.has_value()) << loaded.error();
    // An unterminated tail (a torn final write) is pending for the tailer
    // but counted by load_journal as the kill-cut signature.
    const bool pending_tail = tailer.offset() < fs::file_size(path);
    ASSERT_EQ(streamed.size(), loaded->events.size()) << writers << " writers";
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(render_event(streamed[i]), render_event(loaded->events[i]))
          << writers << " writers, event " << i;
    }
    EXPECT_EQ(corrupt, loaded->corrupt_lines) << writers << " writers";
    EXPECT_EQ(malformed + (pending_tail ? 1 : 0), loaded->malformed_lines)
        << writers << " writers";
    if (pending_tail) EXPECT_TRUE(loaded->truncated_tail);

    // Exactly-once also means no duplicates: every surfaced (writer, seq)
    // pair is unique.
    std::vector<std::uint64_t> keys;
    keys.reserve(streamed.size());
    for (const JournalEvent& e : streamed) {
      keys.push_back(
          static_cast<std::uint64_t>(e.fields.number_or("writer", 1e6)) *
              1'000'000 +
          static_cast<std::uint64_t>(e.fields.number_or("seq", 1e6)));
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << writers << " writers";
  }
}

}  // namespace
}  // namespace ranycast::flight
