#include "ranycast/topo/ip_registry.hpp"

#include <gtest/gtest.h>

namespace ranycast::topo {
namespace {

TEST(IpRegistry, BlocksAreStablePerAsn) {
  IpRegistry reg;
  const Prefix p1 = reg.as_block(make_asn(10));
  const Prefix p2 = reg.as_block(make_asn(20));
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reg.as_block(make_asn(10)), p1);
  EXPECT_EQ(p1.length(), 18);
}

TEST(IpRegistry, BlocksDoNotOverlap) {
  IpRegistry reg;
  const Prefix p1 = reg.as_block(make_asn(1));
  const Prefix p2 = reg.as_block(make_asn(2));
  EXPECT_FALSE(p1.contains(p2.address()));
  EXPECT_FALSE(p2.contains(p1.address()));
}

TEST(IpRegistry, RouterIpInsideOwnerBlockAndReverseLookup) {
  IpRegistry reg;
  const Asn a = make_asn(7);
  const CityId city{3};
  const Ipv4Addr ip = reg.router_ip(a, city);
  EXPECT_TRUE(reg.as_block(a).contains(ip));
  const auto owner = reg.owner(ip);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->asn, a);
  EXPECT_EQ(owner->city, city);
  EXPECT_TRUE(owner->is_router);
}

TEST(IpRegistry, RouterIpDeterministic) {
  IpRegistry reg;
  EXPECT_EQ(reg.router_ip(make_asn(7), CityId{3}), reg.router_ip(make_asn(7), CityId{3}));
  EXPECT_NE(reg.router_ip(make_asn(7), CityId{3}), reg.router_ip(make_asn(7), CityId{4}));
}

TEST(IpRegistry, ProbeIpRegistersCity) {
  IpRegistry reg;
  const Asn a = make_asn(9);
  const Ipv4Addr ip = reg.probe_ip(a, 0, CityId{5});
  const auto owner = reg.owner(ip);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->asn, a);
  EXPECT_EQ(owner->city, CityId{5});
  EXPECT_FALSE(owner->is_router);
}

TEST(IpRegistry, ProbeIpsDistinctPerHost) {
  IpRegistry reg;
  const Asn a = make_asn(9);
  EXPECT_NE(reg.probe_ip(a, 0), reg.probe_ip(a, 1));
}

TEST(IpRegistry, UnallocatedSpaceHasNoOwner) {
  IpRegistry reg;
  EXPECT_FALSE(reg.owner(Ipv4Addr(1, 2, 3, 4)).has_value());
}

TEST(IpRegistry, BlockOwnershipWithoutExplicitRegistration) {
  IpRegistry reg;
  const Asn a = make_asn(11);
  const Prefix block = reg.as_block(a);
  const auto owner = reg.owner(block.at(12345));
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->asn, a);
  EXPECT_FALSE(owner->is_router);
}

TEST(IpRegistry, SpecialAllocationsAreAlignedAndDisjoint) {
  IpRegistry reg;
  const Prefix a = reg.allocate_special(24);
  const Prefix b = reg.allocate_special(24);
  EXPECT_EQ(a.address().bits() % 256, 0u);
  EXPECT_EQ(b.address().bits() % 256, 0u);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b.address()));
}

TEST(IpRegistry, SpecialSpaceDoesNotCollideWithAsSpace) {
  IpRegistry reg;
  const Prefix special = reg.allocate_special(24);
  for (int i = 0; i < 100; ++i) {
    const Prefix block = reg.as_block(make_asn(static_cast<std::uint32_t>(i + 1)));
    EXPECT_FALSE(block.contains(special.address()));
  }
}

}  // namespace
}  // namespace ranycast::topo
