#include "ranycast/topo/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ranycast::topo {
namespace {

GeneratorParams small_params(std::uint64_t seed = 1) {
  GeneratorParams p;
  p.seed = seed;
  p.stub_count = 400;
  p.international_transits = 24;
  return p;
}

TEST(Generator, ProducesExpectedPopulation) {
  const World world = generate_world(small_params());
  const auto& g = world.graph;
  std::size_t tier1 = 0, transit = 0, stub = 0;
  for (const AsNode& n : g.nodes()) {
    switch (n.kind) {
      case AsKind::Tier1:
        ++tier1;
        break;
      case AsKind::Transit:
        ++transit;
        break;
      case AsKind::Stub:
        ++stub;
        break;
    }
  }
  EXPECT_EQ(tier1, 24u);
  EXPECT_GE(transit, 50u);
  EXPECT_EQ(stub, 400u);
}

TEST(Generator, Tier1sFormFullClique) {
  const World world = generate_world(small_params());
  const auto& g = world.graph;
  std::vector<Asn> tier1s;
  for (const AsNode& n : g.nodes()) {
    if (n.kind == AsKind::Tier1) tier1s.push_back(n.asn);
  }
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      EXPECT_TRUE(g.has_edge(tier1s[i], tier1s[j]));
    }
  }
}

TEST(Generator, Tier1sHaveNoProviders) {
  const World world = generate_world(small_params());
  for (const AsNode& n : world.graph.nodes()) {
    if (n.kind != AsKind::Tier1) continue;
    for (const Edge& e : n.edges) {
      EXPECT_NE(e.rel, Rel::Provider) << "tier-1 AS " << value(n.asn) << " has a provider";
    }
  }
}

TEST(Generator, EveryStubHasAProvider) {
  const World world = generate_world(small_params());
  for (const AsNode& n : world.graph.nodes()) {
    if (n.kind != AsKind::Stub) continue;
    const bool has_provider = std::any_of(n.edges.begin(), n.edges.end(),
                                          [](const Edge& e) { return e.rel == Rel::Provider; });
    EXPECT_TRUE(has_provider) << "stub AS " << value(n.asn);
  }
}

TEST(Generator, StubProvidersInterconnectAtStubHome) {
  const World world = generate_world(small_params());
  for (const AsNode& n : world.graph.nodes()) {
    if (n.kind != AsKind::Stub) continue;
    for (const Edge& e : n.edges) {
      if (e.rel != Rel::Provider) continue;
      ASSERT_EQ(e.cities.size(), 1u);
      EXPECT_EQ(e.cities[0], n.home_city);
    }
  }
}

TEST(Generator, EdgeCitiesNeverEmpty) {
  const World world = generate_world(small_params());
  for (const AsNode& n : world.graph.nodes()) {
    for (const Edge& e : n.edges) {
      EXPECT_FALSE(e.cities.empty());
    }
  }
}

TEST(Generator, IxpsHaveMembersAndRouteServerSessions) {
  const World world = generate_world(small_params());
  EXPECT_GE(world.graph.ixps().size(), 10u);
  std::size_t route_server_edges = 0;
  for (const AsNode& n : world.graph.nodes()) {
    for (const Edge& e : n.edges) {
      if (e.rel == Rel::PeerRouteServer) ++route_server_edges;
    }
  }
  EXPECT_GT(route_server_edges, 0u);
}

TEST(Generator, TransitIndexMatchesFootprints) {
  const World world = generate_world(small_params());
  for (const auto& [city, asns] : world.transits_by_city) {
    for (Asn a : asns) {
      const AsNode* n = world.graph.find(a);
      ASSERT_NE(n, nullptr);
      EXPECT_TRUE(n->present_in(city));
    }
  }
}

TEST(Generator, StubsIndexedByHomeCity) {
  const World world = generate_world(small_params());
  std::size_t indexed = 0;
  for (const auto& [city, asns] : world.stubs_by_city) {
    indexed += asns.size();
    for (Asn a : asns) {
      EXPECT_EQ(world.graph.find(a)->home_city, city);
    }
  }
  EXPECT_EQ(indexed, 400u);
}

TEST(Generator, DeterministicForSameSeed) {
  const World a = generate_world(small_params(77));
  const World b = generate_world(small_params(77));
  ASSERT_EQ(a.graph.nodes().size(), b.graph.nodes().size());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (std::size_t i = 0; i < a.graph.nodes().size(); ++i) {
    const AsNode& na = a.graph.nodes()[i];
    const AsNode& nb = b.graph.nodes()[i];
    EXPECT_EQ(na.asn, nb.asn);
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.home_city, nb.home_city);
    ASSERT_EQ(na.edges.size(), nb.edges.size());
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const World a = generate_world(small_params(1));
  const World b = generate_world(small_params(2));
  // Stub placement is seed-dependent, so edge counts differ almost surely.
  EXPECT_NE(a.graph.edge_count(), b.graph.edge_count());
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, RelationshipsAreConsistentBothWays) {
  const World world = generate_world(small_params(GetParam()));
  const auto& g = world.graph;
  for (const AsNode& n : g.nodes()) {
    for (const Edge& e : n.edges) {
      const AsNode* peer = g.find(e.neighbor);
      ASSERT_NE(peer, nullptr);
      const auto back = std::find_if(peer->edges.begin(), peer->edges.end(),
                                     [&](const Edge& be) { return be.neighbor == n.asn; });
      ASSERT_NE(back, peer->edges.end());
      EXPECT_EQ(back->rel, reverse(e.rel));
      EXPECT_EQ(back->cities, e.cities);
    }
  }
}

TEST_P(GeneratorSeedSweep, NoCustomerProviderCycles) {
  // The provider hierarchy must be acyclic (tier-1s at the top).
  const World world = generate_world(small_params(GetParam()));
  const auto& g = world.graph;
  const std::size_t n = g.nodes().size();
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  bool cycle = false;
  // Recursive DFS along customer->provider edges (hierarchy depth is small).
  auto dfs = [&](auto&& self, std::size_t node) -> void {
    state[node] = 1;
    for (const Edge& e : g.nodes()[node].edges) {
      if (e.rel != Rel::Provider || cycle) continue;
      const std::size_t next = *g.index_of(e.neighbor);
      if (state[next] == 1) {
        cycle = true;
        return;
      }
      if (state[next] == 0) self(self, next);
    }
    state[node] = 2;
  };
  for (std::size_t start = 0; start < n && !cycle; ++start) {
    if (state[start] == 0) dfs(dfs, start);
  }
  EXPECT_FALSE(cycle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep, ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace ranycast::topo
