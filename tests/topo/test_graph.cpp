#include "ranycast/topo/graph.hpp"

#include <gtest/gtest.h>

namespace ranycast::topo {
namespace {

constexpr CityId kCity{0};

TEST(Graph, AddAsAssignsSequentialAsns) {
  Graph g;
  const Asn a = g.add_as(AsKind::Stub, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  EXPECT_EQ(value(a), 1u);
  EXPECT_EQ(value(b), 2u);
  EXPECT_EQ(g.nodes().size(), 2u);
}

TEST(Graph, FindByAsn) {
  Graph g;
  const Asn a = g.add_as(AsKind::Tier1, kCity, {kCity}, true);
  ASSERT_NE(g.find(a), nullptr);
  EXPECT_EQ(g.find(a)->kind, AsKind::Tier1);
  EXPECT_TRUE(g.find(a)->international);
  EXPECT_EQ(g.find(make_asn(999)), nullptr);
}

TEST(Graph, EmptyFootprintFallsBackToHome) {
  Graph g;
  const Asn a = g.add_as(AsKind::Stub, CityId{5}, {});
  ASSERT_EQ(g.find(a)->footprint.size(), 1u);
  EXPECT_EQ(g.find(a)->footprint[0], CityId{5});
}

TEST(Graph, TransitCreatesReciprocalEdges) {
  Graph g;
  const Asn c = g.add_as(AsKind::Stub, kCity, {kCity});
  const Asn p = g.add_as(AsKind::Transit, kCity, {kCity});
  ASSERT_TRUE(g.add_transit(c, p, {kCity}));
  ASSERT_EQ(g.find(c)->edges.size(), 1u);
  ASSERT_EQ(g.find(p)->edges.size(), 1u);
  EXPECT_EQ(g.find(c)->edges[0].rel, Rel::Provider);
  EXPECT_EQ(g.find(c)->edges[0].neighbor, p);
  EXPECT_EQ(g.find(p)->edges[0].rel, Rel::Customer);
  EXPECT_EQ(g.find(p)->edges[0].neighbor, c);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, PeeringKinds) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  ASSERT_TRUE(g.add_peering(a, b, true, {kCity}));
  EXPECT_EQ(g.find(a)->edges[0].rel, Rel::PeerRouteServer);
  EXPECT_EQ(g.find(b)->edges[0].rel, Rel::PeerRouteServer);
}

TEST(Graph, RejectsDuplicateAndDegenerateEdges) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  EXPECT_TRUE(g.add_transit(a, b, {kCity}));
  EXPECT_FALSE(g.add_transit(a, b, {kCity}));   // duplicate
  EXPECT_FALSE(g.add_peering(a, b, false, {kCity}));  // already related
  EXPECT_FALSE(g.add_transit(a, a, {kCity}));   // self loop
  EXPECT_FALSE(g.add_transit(a, make_asn(99), {kCity}));  // unknown
  EXPECT_FALSE(g.add_peering(a, b, false, {}));  // no interconnect city
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, HasEdgeIsSymmetric) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  g.add_peering(a, b, false, {kCity});
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, a));
}

TEST(Graph, IndexOfDense) {
  Graph g;
  const Asn a = g.add_as(AsKind::Stub, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Stub, kCity, {kCity});
  EXPECT_EQ(g.index_of(a), 0u);
  EXPECT_EQ(g.index_of(b), 1u);
  EXPECT_FALSE(g.index_of(make_asn(77)).has_value());
}

TEST(Rel, ReverseIsInvolution) {
  for (Rel r : {Rel::Customer, Rel::Provider, Rel::PeerPublic, Rel::PeerRouteServer}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
  EXPECT_EQ(reverse(Rel::Customer), Rel::Provider);
  EXPECT_EQ(reverse(Rel::PeerPublic), Rel::PeerPublic);
}

TEST(Rel, IsPeerClassifier) {
  EXPECT_TRUE(is_peer(Rel::PeerPublic));
  EXPECT_TRUE(is_peer(Rel::PeerRouteServer));
  EXPECT_FALSE(is_peer(Rel::Customer));
  EXPECT_FALSE(is_peer(Rel::Provider));
}

TEST(Graph, LinkStateTogglesBothDirections) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  ASSERT_TRUE(g.add_peering(a, b, false, {kCity}));
  EXPECT_TRUE(g.link_is_up(a, b));
  EXPECT_TRUE(g.link_is_up(b, a));

  EXPECT_TRUE(g.set_link_state(a, b, false));
  EXPECT_FALSE(g.link_is_up(a, b));
  EXPECT_FALSE(g.link_is_up(b, a));
  // The adjacency survives in the graph for cheap restoration.
  EXPECT_TRUE(g.has_edge(a, b));

  EXPECT_TRUE(g.set_link_state(b, a, true));
  EXPECT_TRUE(g.link_is_up(a, b));
}

TEST(Graph, LinkStateRejectsUnknownAdjacency) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  EXPECT_FALSE(g.set_link_state(a, b, false));          // no edge
  EXPECT_FALSE(g.set_link_state(a, make_asn(99), false));  // unknown AS
  EXPECT_FALSE(g.link_is_up(a, b));
}

TEST(Graph, RouteServerStateTogglesMultilateralPeeringsOnly) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn b = g.add_as(AsKind::Transit, kCity, {kCity});
  const Asn c = g.add_as(AsKind::Transit, kCity, {kCity});
  ASSERT_TRUE(g.add_peering(a, b, true, {kCity}));   // via route server
  ASSERT_TRUE(g.add_peering(a, c, false, {kCity}));  // bilateral
  Ixp ixp;
  ixp.name = "IX-TST";
  ixp.city = kCity;
  ixp.members = {a, b, c};
  const auto idx = g.add_ixp(std::move(ixp));

  EXPECT_EQ(g.set_route_server_state(idx, false), 1u);
  EXPECT_FALSE(g.link_is_up(a, b));  // multilateral peering dropped
  EXPECT_TRUE(g.link_is_up(a, c));   // bilateral peering unaffected

  EXPECT_EQ(g.set_route_server_state(idx, true), 1u);
  EXPECT_TRUE(g.link_is_up(a, b));
}

TEST(Graph, IxpRegistry) {
  Graph g;
  const Asn a = g.add_as(AsKind::Transit, kCity, {kCity});
  Ixp ixp;
  ixp.name = "IX-TST";
  ixp.city = kCity;
  ixp.members = {a};
  const auto idx = g.add_ixp(std::move(ixp));
  ASSERT_EQ(g.ixps().size(), 1u);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(g.ixps()[0].name, "IX-TST");
}

}  // namespace
}  // namespace ranycast::topo
