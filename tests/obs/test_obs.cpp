#include "ranycast/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "ranycast/io/json.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::obs {
namespace {

// Captured before any test (and before gtest) can call set_enabled: the
// library default must track the RANYCAST_OBS environment variable, which
// the test runner does not set.
const bool g_enabled_at_startup = enabled();

/// Every test runs with a clean slate and restores the switch afterwards.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    reset_all();
  }
  void TearDown() override {
    reset_all();
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_{false};
};

TEST(ObsEnv, DisabledByDefaultWithoutEnvVar) {
  if (std::getenv("RANYCAST_OBS") == nullptr) {
    EXPECT_FALSE(g_enabled_at_startup);
  }
}

TEST_F(ObsTest, CounterCountsAndResetsInPlace) {
  Counter& c = MetricsRegistry::global().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  reset_all();
  // The same reference keeps working after a reset.
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(MetricsRegistry::global().counters().at("test.counter"), 7u);
}

TEST_F(ObsTest, CounterIsExactUnderConcurrentIncrements) {
  Counter& c = MetricsRegistry::global().counter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, DisabledRecordingIsANoOp) {
  Counter& c = MetricsRegistry::global().counter("test.gated");
  Histogram& h = MetricsRegistry::global().histogram("test.gated_us");
  set_enabled(false);
  c.add(100);
  h.record(5.0);
  {
    Span span("test.gated_span");
    ScopedTimer timer(h);
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(trace_events().empty());
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  Gauge& g = MetricsRegistry::global().gauge("test.gauge");
  g.set(2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreUpperInclusive) {
  const double bounds[] = {10.0, 20.0};
  Histogram h{bounds};
  h.record(10.0);  // lands in (−inf, 10]
  h.record(10.5);  // lands in (10, 20]
  h.record(25.0);  // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 25.0);
  EXPECT_DOUBLE_EQ(s.sum, 45.5);
}

TEST_F(ObsTest, HistogramQuantilesMatchKnownUniformDistribution) {
  // 100 samples spread evenly over (0, 100), ten per decade bucket: the
  // interpolated quantiles land exactly on q * 100.
  const double bounds[] = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  Histogram h{bounds};
  for (int i = 0; i < 100; ++i) h.record(i + 0.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1e-9);
  const auto s = h.snapshot();
  EXPECT_NEAR(s.p50, 50.0, 1e-9);
  EXPECT_NEAR(s.p90, 90.0, 1e-9);
  EXPECT_NEAR(s.p99, 99.0, 1e-9);
}

TEST_F(ObsTest, HistogramQuantileClampsToObservedRange) {
  const double bounds[] = {100.0};
  Histogram h{bounds};
  h.record(40.0);
  h.record(60.0);
  // Both samples share one bucket: interpolation cannot leave [min, max].
  EXPECT_GE(h.quantile(0.01), 40.0);
  EXPECT_LE(h.quantile(0.99), 60.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 60.0);
  Histogram empty{bounds};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST_F(ObsTest, SpansNestAndCompleteInOrder) {
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
  }
  { Span after("test.after"); }
  const auto events = trace_events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner closes before outer.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].parent, "test.outer");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].parent, "");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[2].name, "test.after");
  EXPECT_EQ(events[2].depth, 0u);
  for (std::uint64_t i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].seq, i);
  // The parent's interval covers the child's.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].dur_ns, events[0].start_ns + events[0].dur_ns);

  const auto aggregates = span_aggregates();
  EXPECT_EQ(aggregates.at("test.outer").count, 1u);
  EXPECT_GE(aggregates.at("test.outer").total_us, aggregates.at("test.inner").total_us);
}

TEST_F(ObsTest, ScopedTimerRecordsIntoHistogram) {
  Histogram& h = MetricsRegistry::global().histogram("test.timer_us");
  { ScopedTimer timer(h); }
  { ScopedTimer by_name("test.timer_us"); }
  EXPECT_EQ(h.count(), 2u);
}

TEST_F(ObsTest, JsonReportIsValidJsonWithAllSections) {
  MetricsRegistry::global().counter("test.report_counter").add(3);
  MetricsRegistry::global().gauge("test.report_gauge").set(1.5);
  MetricsRegistry::global().histogram("test.report_us").record(12.0);
  MetricsRegistry::global().set_label("test.label", "va\"lue\n");
  { Span span("test.report_span"); }

  const auto parsed = io::parse_json_or_throw(json_report());
  ASSERT_TRUE(parsed.is_object());
  EXPECT_DOUBLE_EQ(parsed.find("counters")->find("test.report_counter")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(parsed.find("gauges")->find("test.report_gauge")->as_number(), 1.5);
  const io::Json* hist = parsed.find("histograms")->find("test.report_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist->find("p50")->as_number(), 12.0);
  EXPECT_EQ(parsed.find("labels")->find("test.label")->as_string(), "va\"lue\n");
  EXPECT_NE(parsed.find("spans")->find("test.report_span"), nullptr);
}

TEST_F(ObsTest, TraceNdjsonParsesLineByLine) {
  {
    Span outer("test.nd_outer");
    Span inner("test.nd_inner");
  }
  const std::string ndjson = trace_ndjson();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < ndjson.size()) {
    const auto end = ndjson.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const auto line = io::parse_json_or_throw(ndjson.substr(start, end - start));
    EXPECT_TRUE(line.find("name")->is_string());
    EXPECT_TRUE(line.find("dur_ns")->is_number());
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(ObsTest, BenchReportWrittenOnlyWhenEnabled) {
  const char* path = "BENCH_obs_selftest.json";
  std::remove(path);

  set_enabled(false);
  EXPECT_FALSE(write_bench_report("obs_selftest", 1.0));
  EXPECT_FALSE(std::ifstream(path).good());  // RANYCAST_OBS=0: no output at all

  set_enabled(true);
  MetricsRegistry::global().counter("lab.ping.calls").add(5);
  EXPECT_TRUE(write_bench_report("obs_selftest", 12.5));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto parsed = io::parse_json_or_throw(text);
  EXPECT_EQ(parsed.find("bench")->as_string(), "obs_selftest");
  EXPECT_DOUBLE_EQ(parsed.find("wall_ms")->as_number(), 12.5);
  // Fixed schema: solver/lab/measurement sections exist even when the
  // subsystems never ran, with zeroed values.
  EXPECT_DOUBLE_EQ(parsed.find("solver")->find("calls")->as_number(), 0.0);
  EXPECT_NE(parsed.find("solver")->find("stage_customer_us"), nullptr);
  EXPECT_NE(parsed.find("lab")->find("topology_us"), nullptr);
  EXPECT_DOUBLE_EQ(parsed.find("measurement")->find("ping_calls")->as_number(), 5.0);
  std::remove(path);
}

TEST_F(ObsTest, RegistryAndHistogramSafeUnderConcurrentSolves) {
  // The parallel catchment engine has many workers registering and recording
  // the same metrics at once. Registration must converge on one instance and
  // every recorded sample must land.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      auto& registry = MetricsRegistry::global();
      auto& counter = registry.counter("test.concurrent.calls");
      auto& hist = registry.histogram("test.concurrent.us");
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto& registry = MetricsRegistry::global();
  EXPECT_EQ(registry.counter("test.concurrent.calls").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram("test.concurrent.us").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, SpansAreThreadLocalUnderConcurrency) {
  // Span stacks are thread-local: concurrent spans must neither corrupt each
  // other's nesting nor lose completions.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Span outer("test.span.outer");
        Span inner("test.span.inner");
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();  // no crash/corruption; completion counts are best-effort
}

}  // namespace
}  // namespace ranycast::obs
