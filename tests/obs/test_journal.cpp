// The run journal: every event is one valid JSON line, truncate-vs-append
// semantics follow the fresh-run/--resume split, and the process-global
// install point degrades to a no-op when no journal is open.
#include "ranycast/obs/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ranycast/io/json.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::obs {
namespace {

namespace fs = std::filesystem;
using F = JournalField;

std::string journal_path(const std::string& tag) {
  // ctest registers each case individually, so cases from this binary can run
  // as concurrent processes — keep their scratch files apart by pid.
  const auto dir = fs::temp_directory_path() /
                   ("ranycast_journal_test." + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / (tag + ".ndjson")).string();
}

std::vector<io::Json> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<io::Json> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(io::parse_json_or_throw(line));
  }
  return lines;
}

TEST(Journal, EventLinesAreValidNdjsonWithTypedFields) {
  const std::string path = journal_path("typed");
  fs::remove(path);
  Journal journal;
  ASSERT_TRUE(journal.open(path, /*append=*/false)) << journal.error();
  EXPECT_TRUE(journal.event("run_manifest",
                            {F::str("tool", "test \"quoted\"\n"), F::u64_field("steps", 7),
                             F::i64_field("offset", -3), F::f64_field("ratio", 0.25),
                             F::bool_field("resume", true),
                             F::raw("regions", "[{\"region\":0}]")}));
  EXPECT_TRUE(journal.event("stopped", {F::str("reason", "none")}, /*durable=*/true));
  EXPECT_EQ(journal.events_written(), 2u);
  journal.close();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  const io::Json& manifest = lines[0];
  ASSERT_TRUE(manifest.is_object());
  EXPECT_EQ(manifest.find("type")->as_string(), "run_manifest");
  // The first event may pin the trace epoch itself and read ts_ns == 0;
  // only monotonicity across lines is guaranteed.
  EXPECT_LE(manifest.find("ts_ns")->as_number(),
            lines[1].find("ts_ns")->as_number());
  EXPECT_EQ(manifest.find("tool")->as_string(), "test \"quoted\"\n");
  EXPECT_DOUBLE_EQ(manifest.find("steps")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(manifest.find("offset")->as_number(), -3.0);
  EXPECT_DOUBLE_EQ(manifest.find("ratio")->as_number(), 0.25);
  EXPECT_TRUE(manifest.find("resume")->as_bool());
  const io::Json* regions = manifest.find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_TRUE(regions->is_array());
  EXPECT_DOUBLE_EQ(regions->as_array()[0].find("region")->as_number(), 0.0);
  EXPECT_EQ(lines[1].find("type")->as_string(), "stopped");
  // Timestamps share the flight-recorder clock, so journal and spans align.
  EXPECT_LE(static_cast<std::uint64_t>(lines[1].find("ts_ns")->as_number()),
            trace_now_ns());
  fs::remove(path);
}

TEST(Journal, FreshOpenTruncatesAndResumeOpenAppends) {
  const std::string path = journal_path("append");
  fs::remove(path);
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/false));
    EXPECT_TRUE(journal.event("phase_begin", {F::str("phase", "first")}));
  }
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/true));
    EXPECT_TRUE(journal.event("resumed", {F::u64_field("cursor", 3)}, /*durable=*/true));
  }
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("type")->as_string(), "phase_begin");
  EXPECT_EQ(lines[1].find("type")->as_string(), "resumed");

  {
    Journal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/false));  // fresh run: truncate
    EXPECT_TRUE(journal.event("phase_begin", {F::str("phase", "second")}));
  }
  lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("phase")->as_string(), "second");
  fs::remove(path);
}

TEST(Journal, GlobalInstallPointDegradesToNoOp) {
  ASSERT_EQ(journal(), nullptr);
  // No journal installed: not an error, nothing written anywhere.
  EXPECT_TRUE(journal_event("chaos_step", {F::u64_field("index", 0)}));

  const std::string path = journal_path("global");
  fs::remove(path);
  {
    Journal owned;
    ASSERT_TRUE(owned.open(path, /*append=*/false));
    set_journal(&owned);
    EXPECT_EQ(journal(), &owned);
    EXPECT_TRUE(journal_event("chaos_step", {F::u64_field("index", 1)}, /*durable=*/true));
    set_journal(nullptr);
    EXPECT_TRUE(journal_event("chaos_step", {F::u64_field("index", 2)}));
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);  // only the event sent while installed
  EXPECT_DOUBLE_EQ(lines[0].find("index")->as_number(), 1.0);
  fs::remove(path);
}

TEST(Journal, OpenFailureIsReportedNotFatal) {
  Journal journal;
  EXPECT_FALSE(journal.open("/nonexistent-dir/nested/journal.ndjson", false));
  EXPECT_FALSE(journal.is_open());
  EXPECT_FALSE(journal.error().empty());
  // Writing to a never-opened journal fails cleanly.
  EXPECT_FALSE(journal.event("phase_begin", {}));
}

TEST(Journal, MoveTransfersOwnershipOfTheFd) {
  const std::string path = journal_path("move");
  fs::remove(path);
  Journal first;
  ASSERT_TRUE(first.open(path, /*append=*/false));
  Journal second = std::move(first);
  EXPECT_FALSE(first.is_open());
  EXPECT_TRUE(second.is_open());
  EXPECT_TRUE(second.event("checkpoint", {F::u64_field("cursor", 5)}));
  second.close();
  EXPECT_EQ(read_lines(path).size(), 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace ranycast::obs
