// The flight recorder: per-thread bounded rings must never lose a span
// silently (retained + dropped == recorded), preserve thread identity, and
// inherit span parentage across pool dispatch — at worker counts {1, 2, hw}.
#include "ranycast/obs/flight.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/exec/pool.hpp"
#include "ranycast/io/json.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::obs {
namespace {

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    original_capacity_ = flight_capacity();
    set_enabled(true);
    reset_all();
  }
  void TearDown() override {
    reset_all();
    set_flight_capacity(original_capacity_);
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_{false};
  std::size_t original_capacity_{0};
};

std::uint64_t total_recorded(const std::vector<FlightThreadSnapshot>& threads) {
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.recorded;
  return total;
}

TEST_F(FlightTest, EveryCompletionIsRetainedOrCountedDropped) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Span outer("flight.outer");
        Span inner("flight.inner");
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snapshot = flight_snapshot();
  std::uint64_t retained = 0;
  for (const auto& t : snapshot) {
    EXPECT_EQ(t.events.size() + t.dropped, t.recorded) << "thread " << t.name;
    retained += t.events.size();
  }
  // 4 threads x 500 iterations x 2 spans, exact: rings are per-thread, so
  // concurrent completions cannot race each other's slots.
  EXPECT_EQ(total_recorded(snapshot),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 2);
  EXPECT_EQ(retained + dropped_events(),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 2);
}

TEST_F(FlightTest, OverflowKeepsTheMostRecentWindow) {
  set_flight_capacity(64);
  ASSERT_EQ(flight_capacity(), 64u);
  constexpr int kSpans = 200;
  for (int i = 0; i < kSpans; ++i) Span span("flight.overflow");

  const auto snapshot = flight_snapshot();
  const auto it = std::find_if(snapshot.begin(), snapshot.end(), [](const auto& t) {
    return t.recorded == kSpans;
  });
  ASSERT_NE(it, snapshot.end());
  EXPECT_EQ(it->events.size(), 64u);
  EXPECT_EQ(it->dropped, static_cast<std::uint64_t>(kSpans) - 64u);
  EXPECT_GE(dropped_events(), it->dropped);
  // Oldest-first within the retained window, and it is the *latest* window:
  // sequence numbers are strictly increasing and end at the last completion.
  for (std::size_t i = 1; i < it->events.size(); ++i) {
    EXPECT_LT(it->events[i - 1].seq, it->events[i].seq);
  }
}

TEST_F(FlightTest, CapacityIsClampedToDocumentedBounds) {
  set_flight_capacity(1);
  EXPECT_EQ(flight_capacity(), 64u);
  set_flight_capacity(std::size_t{1} << 40);
  EXPECT_EQ(flight_capacity(), std::size_t{1} << 22);
}

TEST_F(FlightTest, ThreadNamesAndOsTidsSurviveIntoSnapshots) {
  std::thread helper([] {
    set_thread_name("flight.helper");
    Span span("flight.named");
  });
  helper.join();

  const auto snapshot = flight_snapshot();
  const auto it = std::find_if(snapshot.begin(), snapshot.end(), [](const auto& t) {
    return t.name == "flight.helper";
  });
  ASSERT_NE(it, snapshot.end());
  EXPECT_NE(it->os_tid, 0u);
  ASSERT_EQ(it->events.size(), 1u);
  EXPECT_EQ(it->events[0].name, "flight.named");
  EXPECT_EQ(it->events[0].tid, it->os_tid);
  // Distinct threads never share a tid within one snapshot... unless the OS
  // recycled it, which a just-joined helper cannot have hit here.
  for (const auto& other : snapshot) {
    if (other.slot != it->slot) {
      EXPECT_NE(other.os_tid, it->os_tid);
    }
  }
}

TEST_F(FlightTest, PoolWorkersInheritTheEnqueuingSpanAsParent) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 1 && hardware != 2) sweep.push_back(hardware);

  for (const unsigned workers : sweep) {
    pool.resize(workers);
    clear_trace();
    constexpr std::size_t kItems = 64;
    {
      Span outer("flight.dispatch");
      pool.parallel_for(kItems, [](std::size_t) { Span item("flight.item"); });
    }
    const auto events = trace_events();
    std::size_t items_seen = 0;
    for (const auto& e : events) {
      if (e.name != std::string("flight.item")) continue;
      ++items_seen;
      EXPECT_EQ(e.parent, "flight.dispatch") << workers << " workers";
      EXPECT_EQ(e.depth, 1u) << workers << " workers";
    }
    // Default capacity is far above kItems: nothing may drop here.
    EXPECT_EQ(items_seen, kItems) << workers << " workers";
  }
  pool.resize(original);
}

TEST_F(FlightTest, PoolTelemetryAccountsEveryItemExactly) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();
  pool.resize(2);  // fresh stats slots

  constexpr std::size_t kItems = 1000;
  pool.parallel_for(kItems, [](std::size_t) {});
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t items = 0, chunks = 0;
  for (const auto& s : stats) {
    items += s.items;
    chunks += s.chunks;
  }
  EXPECT_EQ(items, kItems);
  EXPECT_GE(chunks, 1u);

  pool.publish_stats();
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("exec.pool.items").value(),
                   static_cast<double>(kItems));
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("exec.pool.workers").value(), 2.0);
  pool.resize(original);
}

TEST_F(FlightTest, FlightNdjsonCarriesThreadIdentityPerLine) {
  set_thread_name("flight.ndjson");
  { Span span("flight.nd_span"); }
  const std::string ndjson = flight_ndjson();
  ASSERT_FALSE(ndjson.empty());
  std::size_t start = 0;
  bool saw_span = false;
  while (start < ndjson.size()) {
    const auto end = ndjson.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const auto line = io::parse_json_or_throw(ndjson.substr(start, end - start));
    ASSERT_TRUE(line.is_object());
    EXPECT_TRUE(line.find("name")->is_string());
    EXPECT_TRUE(line.find("dur_ns")->is_number());
    EXPECT_TRUE(line.find("tid")->is_number());
    EXPECT_TRUE(line.find("thread")->is_string());
    if (line.find("name")->as_string() == "flight.nd_span") {
      saw_span = true;
      EXPECT_EQ(line.find("thread")->as_string(), "flight.ndjson");
    }
    start = end + 1;
  }
  EXPECT_TRUE(saw_span);
}

TEST_F(FlightTest, RssHighWaterIsSampledIntoTheGauge) {
  const std::uint64_t kb = rss_high_water_kb();
#if defined(__linux__)
  EXPECT_GT(kb, 0u);
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("process.rss_hwm_kb").value(),
                   static_cast<double>(kb));
#else
  (void)kb;
#endif
}

TEST_F(FlightTest, ClearTraceResetsRingsAndSequenceNumbers) {
  { Span span("flight.before_clear"); }
  EXPECT_FALSE(trace_events().empty());
  clear_trace();
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(dropped_events(), 0u);
  { Span span("flight.after_clear"); }
  const auto events = trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 0u);
}

}  // namespace
}  // namespace ranycast::obs
