#include "ranycast/bgpdata/rib_snapshot.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::bgpdata {
namespace {

class RibSnapshotTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 400;
    config.census.total_probes = 800;
    return lab::Lab::create(config);
  }

  RibSnapshotTest()
      : lab_(make_lab()), handle_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  RibSnapshot make_snapshot() {
    const cdn::Deployment* deps[] = {&handle_->deployment};
    return RibSnapshot::build(lab_.world(), lab_.registry(), deps);
  }

  lab::Lab lab_;
  const lab::DeploymentHandle* handle_;
};

TEST_F(RibSnapshotTest, ResolvesAsBlocks) {
  auto snapshot = make_snapshot();
  EXPECT_EQ(snapshot.route_count(),
            lab_.world().graph.nodes().size() + handle_->deployment.regions().size());
  for (const atlas::Probe& p : lab_.census().probes()) {
    const auto asn = snapshot.ip_to_asn(p.ip);
    ASSERT_TRUE(asn.has_value());
    EXPECT_EQ(*asn, p.asn);
    break;
  }
}

TEST_F(RibSnapshotTest, ResolvesAnycastPrefixesToCdnAsn) {
  auto snapshot = make_snapshot();
  for (const cdn::Region& r : handle_->deployment.regions()) {
    const auto asn = snapshot.ip_to_asn(r.service_ip);
    ASSERT_TRUE(asn.has_value());
    EXPECT_EQ(*asn, handle_->deployment.asn());
  }
}

TEST_F(RibSnapshotTest, UnroutedSpaceMisses) {
  auto snapshot = make_snapshot();
  EXPECT_FALSE(snapshot.ip_to_asn(Ipv4Addr(1, 1, 1, 1)).has_value());
  EXPECT_EQ(snapshot.map(Ipv4Addr(1, 1, 1, 1)).kind, MappedOwner::Kind::Unrouted);
}

TEST_F(RibSnapshotTest, IxpLansInvisibleInBgpButMapped) {
  auto snapshot = make_snapshot();
  const auto lans = allocate_ixp_lans(lab_.world(), lab_.registry(), snapshot);
  ASSERT_EQ(lans.size(), lab_.world().graph.ixps().size());
  ASSERT_GE(lans.size(), 5u);
  for (std::size_t i = 0; i < lans.size(); ++i) {
    const Ipv4Addr interface = lans[i].at(42);
    // pyasn-style lookup fails: the LAN is not announced in BGP.
    EXPECT_FALSE(snapshot.ip_to_asn(interface).has_value());
    // The PeeringDB-style registry still identifies the IXP.
    const auto owner = snapshot.map(interface);
    EXPECT_EQ(owner.kind, MappedOwner::Kind::Ixp);
    EXPECT_EQ(owner.ixp_name, lab_.world().graph.ixps()[i].name);
  }
}

TEST_F(RibSnapshotTest, MapPrefersBgpOverIxp) {
  auto snapshot = make_snapshot();
  allocate_ixp_lans(lab_.world(), lab_.registry(), snapshot);
  const auto& node = lab_.world().graph.nodes().front();
  const Ipv4Addr ip = lab_.registry().as_block(node.asn).at(7);
  const auto owner = snapshot.map(ip);
  EXPECT_EQ(owner.kind, MappedOwner::Kind::As);
  EXPECT_EQ(owner.asn, node.asn);
}

}  // namespace
}  // namespace ranycast::bgpdata
