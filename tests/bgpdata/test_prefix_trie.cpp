#include "ranycast/bgpdata/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ranycast/core/rng.hpp"

namespace ranycast::bgpdata {
namespace {

TEST(PrefixTrie, EmptyLookupMisses) {
  PrefixTrie<int> trie;
  EXPECT_FALSE(trie.lookup(Ipv4Addr(1, 2, 3, 4)).has_value());
  EXPECT_EQ(trie.size(), 0u);
}

TEST(PrefixTrie, ExactCoverLookup) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 255, 255, 255)), 1);
  EXPECT_FALSE(trie.lookup(Ipv4Addr(11, 0, 0, 0)).has_value());
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 24);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 3, 3)), 16);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 2, 0, 0)), 8);
}

TEST(PrefixTrie, DefaultRouteCoversEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix{Ipv4Addr{0u}, 0}, 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr(255, 255, 255, 255)), 7);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0u}), 7);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix{Ipv4Addr(192, 0, 2, 1), 32}, 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr(192, 0, 2, 1)), 99);
  EXPECT_FALSE(trie.lookup(Ipv4Addr(192, 0, 2, 2)).has_value());
}

TEST(PrefixTrie, InsertOverwritesValue) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, ExactLookupIgnoresCovering) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.exact(*Prefix::parse("10.0.0.0/8")), 8);
  EXPECT_FALSE(trie.exact(*Prefix::parse("10.1.0.0/16")).has_value());
  EXPECT_FALSE(trie.exact(*Prefix::parse("0.0.0.0/0")).has_value());
}

class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, AgreesWithLinearScan) {
  Rng rng{GetParam()};
  PrefixTrie<std::uint32_t> trie;
  std::vector<std::pair<Prefix, std::uint32_t>> reference;
  for (int i = 0; i < 300; ++i) {
    const int len = 8 + static_cast<int>(rng.below(17));  // /8 .. /24
    const Prefix p{Ipv4Addr{static_cast<std::uint32_t>(rng())}, len};
    const auto v = static_cast<std::uint32_t>(i);
    // Keep the reference consistent with overwrite semantics.
    const auto it = std::find_if(reference.begin(), reference.end(),
                                 [&](const auto& e) { return e.first == p; });
    if (it == reference.end()) {
      reference.emplace_back(p, v);
    } else {
      it->second = v;
    }
    trie.insert(p, v);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    std::optional<std::uint32_t> expected;
    int best_len = -1;
    for (const auto& [p, v] : reference) {
      if (p.contains(addr) && p.length() > best_len) {
        best_len = p.length();
        expected = v;
      }
    }
    EXPECT_EQ(trie.lookup(addr), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ranycast::bgpdata
