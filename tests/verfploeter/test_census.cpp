#include "ranycast/verfploeter/census.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::verfploeter {
namespace {

class CensusTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 800;
    config.census.total_probes = 2500;
    return lab::Lab::create(config);
  }

  CensusTest() : lab_(make_lab()), ns_(&lab_.add_deployment(cdn::catalog::imperva_ns())) {}

  lab::Lab lab_;
  const lab::DeploymentHandle* ns_;
};

TEST_F(CensusTest, FullCensusCoversAllStubAses) {
  const auto census = full_census(lab_, *ns_, 0);
  std::size_t stubs = 0;
  for (const auto& n : lab_.world().graph.nodes()) {
    if (n.kind == topo::AsKind::Stub) ++stubs;
  }
  EXPECT_EQ(census.total, stubs);  // global reachability: every stub routed
  std::size_t summed = 0;
  for (const auto& [site, count] : census.by_site) summed += count;
  EXPECT_EQ(summed, census.total);
}

TEST_F(CensusTest, FractionsFormADistribution) {
  const auto census = full_census(lab_, *ns_, 0);
  double total = 0.0;
  for (const auto& [site, count] : census.by_site) total += census.fraction(site);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(census.fraction(SiteId{999}), 0.0);
}

TEST_F(CensusTest, ProbeEstimateConvergesToCensus) {
  const auto truth = full_census(lab_, *ns_, 0);
  const auto tiny = probe_estimate(lab_, *ns_, 0, 50, 1);
  const auto large = probe_estimate(lab_, *ns_, 0, 2000, 1);
  const double tiny_error = total_variation(truth, tiny);
  const double large_error = total_variation(truth, large);
  EXPECT_LT(large_error, tiny_error);
  EXPECT_LT(large_error, 0.35);
}

TEST_F(CensusTest, ProbeEstimateIsBiasedTowardProbeRichSites) {
  // The probe platform's census skew (EMEA-heavy) shows up as nonzero
  // divergence even with every probe used - Verfploeter's motivation.
  const auto truth = full_census(lab_, *ns_, 0);
  const auto all = probe_estimate(lab_, *ns_, 0, 100000, 1);
  EXPECT_GT(total_variation(truth, all), 0.0);
}

TEST_F(CensusTest, TotalVariationProperties) {
  const auto a = full_census(lab_, *ns_, 0);
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  CatchmentCensus empty;
  EXPECT_LE(total_variation(a, empty), 1.0);
  const auto b = probe_estimate(lab_, *ns_, 0, 100, 2);
  EXPECT_DOUBLE_EQ(total_variation(a, b), total_variation(b, a));
}

TEST_F(CensusTest, EstimateDeterministicPerSeed) {
  const auto a = probe_estimate(lab_, *ns_, 0, 200, 7);
  const auto b = probe_estimate(lab_, *ns_, 0, 200, 7);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.by_site, b.by_site);
}

}  // namespace
}  // namespace ranycast::verfploeter
