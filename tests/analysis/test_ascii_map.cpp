#include "ranycast/analysis/ascii_map.hpp"

#include <gtest/gtest.h>

namespace ranycast::analysis {
namespace {

TEST(AsciiMap, EmptyRendersFrame) {
  AsciiMap map(10, 4);
  const std::string out = map.render();
  // 4 content rows + 2 border rows, each 12 chars + newline.
  EXPECT_EQ(out, "+----------+\n|          |\n|          |\n|          |\n|          |\n"
                 "+----------+\n");
}

TEST(AsciiMap, PlotsAtProjectedPosition) {
  AsciiMap map(36, 18);
  map.plot(geo::GeoPoint{0.0, 0.0}, 'x');  // equator, prime meridian: center
  const std::string out = map.render();
  const auto lines_start = out.find('\n') + 1;
  // Row 9 (0-based) of content, column 18.
  const std::size_t line_len = 36 + 3;  // borders + newline
  const char c = out[lines_start + 9 * line_len + 1 + 18];
  EXPECT_EQ(c, 'x');
}

TEST(AsciiMap, ExtremeCoordinatesClamp) {
  AsciiMap map(10, 5);
  map.plot(geo::GeoPoint{90.0, -180.0}, 'a');   // top-left
  map.plot(geo::GeoPoint{-90.0, 180.0}, 'b');   // bottom-right (clamped)
  const std::string out = map.render();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiMap, PriorityPinsSymbol) {
  AsciiMap map(10, 5);
  const geo::GeoPoint p{10.0, 10.0};
  map.plot(p, 'S', true);
  map.plot(p, 'x');  // later non-priority plot must not overwrite
  EXPECT_NE(map.render().find('S'), std::string::npos);
  EXPECT_EQ(map.render().find('x'), std::string::npos);
}

TEST(AsciiMap, NonPriorityOverwrites) {
  AsciiMap map(10, 5);
  const geo::GeoPoint p{10.0, 10.0};
  map.plot(p, 'x');
  map.plot(p, 'y');
  EXPECT_EQ(map.render().find('x'), std::string::npos);
  EXPECT_NE(map.render().find('y'), std::string::npos);
}

TEST(AsciiMap, LegendAppended) {
  AsciiMap map(10, 3);
  map.add_legend('a', "region A");
  const std::string out = map.render();
  EXPECT_NE(out.find(" a = region A\n"), std::string::npos);
}

TEST(AsciiMap, WestIsLeftNorthIsUp) {
  AsciiMap map(60, 20);
  map.plot(geo::GeoPoint{40.0, -100.0}, 'w');  // North America
  map.plot(geo::GeoPoint{-30.0, 140.0}, 'e');  // Australia
  const std::string out = map.render();
  EXPECT_LT(out.find('w'), out.find('e'));
}

}  // namespace
}  // namespace ranycast::analysis
