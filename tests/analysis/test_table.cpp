#include "ranycast/analysis/table.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ranycast::analysis {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.render();
  // Every line has the same length.
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, MissingCellsRenderEmpty) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

TEST(Format, Milliseconds) {
  EXPECT_EQ(fmt_ms(12.345), "12.3");
  EXPECT_EQ(fmt_ms(12.345, 2), "12.35");
  EXPECT_EQ(fmt_ms(0.0, 0), "0");
}

TEST(Format, Percentages) {
  EXPECT_EQ(fmt_pct(0.127), "12.7%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.0), "0.0%");
}

TEST(Format, KmAndCount) {
  EXPECT_EQ(fmt_km(1234.56), "1235");
  EXPECT_EQ(fmt_count(42), "42");
}

TEST(Format, NonFiniteValuesRenderAsNotAvailable) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(fmt_ms(nan), "n/a");
  EXPECT_EQ(fmt_ms(inf, 2), "n/a");
  EXPECT_EQ(fmt_ms(-inf), "n/a");
  EXPECT_EQ(fmt_pct(nan), "n/a");
  EXPECT_EQ(fmt_pct(inf, 0), "n/a");
  EXPECT_EQ(fmt_km(nan), "n/a");
}

}  // namespace
}  // namespace ranycast::analysis
