#include "ranycast/analysis/stats.hpp"

#include <gtest/gtest.h>

#include "ranycast/core/rng.hpp"

namespace ranycast::analysis {
namespace {

TEST(Cdf, EmptyIsSafe) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 0.0);
}

TEST(Cdf, SingleSample) {
  const Cdf cdf{{7.0}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(6.9), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(7.0), 1.0);
}

TEST(Cdf, QuantilesInterpolate) {
  const Cdf cdf{{0.0, 10.0}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.5);
}

TEST(Cdf, MinMaxMean) {
  const Cdf cdf{{3.0, 1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(Cdf, FractionAtOrBelowCountsTies) {
  const Cdf cdf{{1.0, 2.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.5), 0.25);
}

TEST(Cdf, SeriesIsMonotone) {
  Rng rng{5};
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal(100.0, 20.0));
  const Cdf cdf{std::move(samples)};
  const auto series = cdf.series(0.0, 200.0, 50);
  ASSERT_EQ(series.size(), 50u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
    EXPECT_GT(series[i].first, series[i - 1].first);
  }
  EXPECT_NEAR(series.back().second, 1.0, 0.01);
}

TEST(Cdf, QuantileClampsOutOfRange) {
  const Cdf cdf{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 2.0);
}

TEST(Percentile, MatchesKnownValues) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> v{50, 10, 40, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
}

TEST(Median, EvenCount) {
  const std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(v), 2.0);
}

class QuantileMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotonicity, QuantileIsNondecreasingInQ) {
  Rng rng{GetParam()};
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.exponential(30.0));
  const Cdf cdf{std::move(samples)};
  double prev = cdf.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = cdf.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotonicity, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ranycast::analysis
