#include "ranycast/analysis/classify.hpp"

#include <gtest/gtest.h>

namespace ranycast::analysis {
namespace {

TEST(MappingClassifier, EfficientBelowThreshold) {
  EXPECT_EQ(classify_mapping(20.0, 18.0, true), MappingOutcome::Efficient);
  EXPECT_EQ(classify_mapping(22.9, 18.0, false), MappingOutcome::Efficient);
}

TEST(MappingClassifier, SubOptimalWhenRegionIntended) {
  EXPECT_EQ(classify_mapping(30.0, 18.0, true), MappingOutcome::SubOptimalRegion);
}

TEST(MappingClassifier, IncorrectWhenRegionUnintended) {
  EXPECT_EQ(classify_mapping(30.0, 18.0, false), MappingOutcome::IncorrectRegion);
}

TEST(MappingClassifier, ThresholdIsBoundaryExclusive) {
  // Exactly 5 ms counts as inefficient (>= threshold).
  EXPECT_EQ(classify_mapping(23.0, 18.0, true), MappingOutcome::SubOptimalRegion);
  EXPECT_EQ(classify_mapping(22.999, 18.0, true), MappingOutcome::Efficient);
}

TEST(RttDeltaClassifier, ThreeWaySplit) {
  EXPECT_EQ(classify_rtt_delta(10.0, 20.0), RttDelta::Better);
  EXPECT_EQ(classify_rtt_delta(20.0, 10.0), RttDelta::Worse);
  EXPECT_EQ(classify_rtt_delta(12.0, 10.0), RttDelta::Similar);
  EXPECT_EQ(classify_rtt_delta(10.0, 12.0), RttDelta::Similar);
  EXPECT_EQ(classify_rtt_delta(10.0, 15.0), RttDelta::Similar);  // exactly -5
}

TEST(SiteShiftClassifier, SameSiteDominates) {
  EXPECT_EQ(classify_site_shift(true, 100.0, 9000.0), SiteShift::Same);
}

TEST(SiteShiftClassifier, DistanceComparison) {
  EXPECT_EQ(classify_site_shift(false, 100.0, 9000.0), SiteShift::Closer);
  EXPECT_EQ(classify_site_shift(false, 9000.0, 100.0), SiteShift::Further);
  EXPECT_EQ(classify_site_shift(false, 120.0, 100.0), SiteShift::Same);  // within tolerance
}

bgp::Route route_with_class(bgp::RouteClass cls) {
  bgp::Route r;
  r.cls = cls;
  r.as_path = {make_asn(65000)};
  r.geo_path = {CityId{0}};
  return r;
}

TEST(CauseClassifier, AsRelationshipOverride) {
  const auto g = route_with_class(bgp::RouteClass::Customer);
  const auto r = route_with_class(bgp::RouteClass::PeerPublic);
  EXPECT_EQ(classify_reduction_cause(g, r, true), ReductionCause::AsRelationshipOverride);
  EXPECT_EQ(classify_reduction_cause(g, r, false), ReductionCause::AsRelationshipOverride);
}

TEST(CauseClassifier, PeeringTypeOverrideRequiresFeedVisibility) {
  const auto g = route_with_class(bgp::RouteClass::PeerPublic);
  const auto r = route_with_class(bgp::RouteClass::PeerRouteServer);
  EXPECT_EQ(classify_reduction_cause(g, r, true), ReductionCause::PeeringTypeOverride);
  EXPECT_EQ(classify_reduction_cause(g, r, false), ReductionCause::Unknown);
}

TEST(CauseClassifier, UnknownForOtherCombinations) {
  const auto a = route_with_class(bgp::RouteClass::Provider);
  const auto b = route_with_class(bgp::RouteClass::Provider);
  EXPECT_EQ(classify_reduction_cause(a, b, true), ReductionCause::Unknown);
  const auto c = route_with_class(bgp::RouteClass::Customer);
  EXPECT_EQ(classify_reduction_cause(a, c, true), ReductionCause::Unknown);
}

TEST(Names, AllEnumsPrintable) {
  EXPECT_FALSE(to_string(MappingOutcome::Efficient).empty());
  EXPECT_FALSE(to_string(RttDelta::Better).empty());
  EXPECT_FALSE(to_string(SiteShift::Closer).empty());
  EXPECT_FALSE(to_string(ReductionCause::AsRelationshipOverride).empty());
}

}  // namespace
}  // namespace ranycast::analysis
