#include <gtest/gtest.h>

#include "ranycast/analysis/export.hpp"
#include "ranycast/analysis/load.hpp"

namespace ranycast::analysis {
namespace {

TEST(CsvWriter, PlainFields) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesSpecials) {
  CsvWriter csv({"name"});
  csv.add_row({"hello, world"});
  csv.add_row({"say \"hi\""});
  csv.add_row({"two\nlines"});
  EXPECT_EQ(csv.to_string(),
            "name\n\"hello, world\"\n\"say \"\"hi\"\"\"\n\"two\nlines\"\n");
}

TEST(CsvWriter, HeaderOnly) {
  CsvWriter csv({"x"});
  EXPECT_EQ(csv.to_string(), "x\n");
}

TEST(Gini, EvenLoadIsZero) {
  const double loads[] = {5, 5, 5, 5};
  EXPECT_NEAR(gini(loads), 0.0, 1e-12);
}

TEST(Gini, SingleHotSiteApproachesOne) {
  const double loads[] = {100, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_GT(gini(loads), 0.85);
}

TEST(Gini, KnownValue) {
  // Two sites, one twice as loaded: G = 1/6.
  const double loads[] = {1, 2};
  EXPECT_NEAR(gini(loads), 1.0 / 6.0, 1e-12);
}

TEST(Gini, EdgeCases) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

TEST(PeakToMean, EvenIsOne) {
  const double loads[] = {3, 3, 3};
  EXPECT_DOUBLE_EQ(peak_to_mean(loads), 1.0);
}

TEST(PeakToMean, Skewed) {
  const double loads[] = {9, 1, 1, 1};
  EXPECT_DOUBLE_EQ(peak_to_mean(loads), 3.0);
}

TEST(EffectiveSites, EvenEqualsCount) {
  const double loads[] = {2, 2, 2, 2};
  EXPECT_NEAR(effective_sites(loads), 4.0, 1e-9);
}

TEST(EffectiveSites, ConcentrationReducesIt) {
  const double loads[] = {97, 1, 1, 1};
  EXPECT_LT(effective_sites(loads), 1.5);
  EXPECT_GE(effective_sites(loads), 1.0);
}

TEST(EffectiveSites, IgnoresIdleSites) {
  const double a[] = {5, 5};
  const double b[] = {5, 5, 0, 0};
  EXPECT_NEAR(effective_sites(a), effective_sites(b), 1e-9);
}

}  // namespace
}  // namespace ranycast::analysis
