#include "ranycast/io/json.hpp"

#include <gtest/gtest.h>

namespace ranycast::io {
namespace {

Json parse(std::string_view text) { return parse_json_or_throw(text); }

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const Json arr = parse("[1, 2, 3]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(arr.as_array()[2].as_number(), 3.0);

  const Json obj = parse("{\"a\": 1, \"b\": [true]}");
  ASSERT_TRUE(obj.is_object());
  EXPECT_DOUBLE_EQ(obj.find("a")->as_number(), 1.0);
  EXPECT_TRUE(obj.find("b")->as_array()[0].as_bool());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, ParsesNested) {
  const Json j = parse(R"({"w": {"x": {"y": [1, {"z": "deep"}]}}})");
  const Json* w = j.find("w");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->find("x")->find("y")->as_array()[1].find("z")->as_string(), "deep");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");   // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xE2\x82\xAC");  // €
}

TEST(Json, WhitespaceTolerant) {
  const Json j = parse("  {\n\t\"a\" :\r [ ] }  ");
  EXPECT_TRUE(j.find("a")->is_array());
}

TEST(Json, RejectsMalformed) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
                          "{\"a\" 1}", "[1,]x", "nul"}) {
    const auto result = parse_json(bad);
    EXPECT_TRUE(std::holds_alternative<JsonParseError>(result)) << bad;
  }
}

TEST(Json, ErrorCarriesPosition) {
  const auto result = parse_json("[1, x]");
  ASSERT_TRUE(std::holds_alternative<JsonParseError>(result));
  EXPECT_EQ(std::get<JsonParseError>(result).position, 4u);
}

TEST(Json, DumpCompact) {
  JsonObject obj{{"b", Json(true)}, {"a", Json(1)}};
  EXPECT_EQ(Json(obj).dump(), "{\"a\":1,\"b\":true}");
  EXPECT_EQ(Json(JsonArray{Json(1), Json("x")}).dump(), "[1,\"x\"]");
  EXPECT_EQ(Json(nullptr).dump(), "null");
}

TEST(Json, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\nc").dump(), R"("a\"b\nc")");
}

TEST(Json, DumpIntegersWithoutDecimalNoise) {
  EXPECT_EQ(Json(2023).dump(), "2023");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

TEST(Json, RoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":"nested \"quote\""},"d":-7})";
  const Json parsed = parse(doc);
  const Json reparsed = parse(parsed.dump());
  EXPECT_EQ(reparsed.dump(), parsed.dump());
}

TEST(Json, PrettyPrintHasIndentation) {
  const Json j = parse(R"({"a":[1]})");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1\n  ]\n}"), std::string::npos);
}

TEST(Json, TypedReaders) {
  const Json j = parse(R"({"n": 3, "s": "str", "b": true})");
  EXPECT_EQ(j.int_or("n", 0), 3);
  EXPECT_EQ(j.int_or("missing", 9), 9);
  EXPECT_EQ(j.string_or("s", ""), "str");
  EXPECT_EQ(j.string_or("n", "fallback"), "fallback");  // wrong type
  EXPECT_TRUE(j.bool_or("b", false));
  EXPECT_DOUBLE_EQ(j.number_or("n", 0.0), 3.0);
}

}  // namespace
}  // namespace ranycast::io
