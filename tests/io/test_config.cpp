#include "ranycast/io/config.hpp"

#include <gtest/gtest.h>

namespace ranycast::io {
namespace {

TEST(Config, EmptyObjectYieldsDefaults) {
  const auto config = lab_config_from_json(parse_json_or_throw("{}"));
  const lab::LabConfig defaults;
  EXPECT_EQ(config.seed, defaults.seed);
  EXPECT_EQ(config.world.stub_count, defaults.world.stub_count);
  EXPECT_EQ(config.census.total_probes, defaults.census.total_probes);
  EXPECT_DOUBLE_EQ(config.latency.per_hop_ms, defaults.latency.per_hop_ms);
}

TEST(Config, OverridesApply) {
  const auto config = lab_config_from_json(parse_json_or_throw(R"({
    "seed": 99,
    "world": {"stub_count": 123, "tier1_count": 5, "tier1_city_coverage": 0.2},
    "census": {"total_probes": 777, "resolver_local_prob": 0.5},
    "latency": {"per_hop_ms": 0.9},
    "geo_dbs": [{"name": "custom", "wrong_country_prob": 0.25}]
  })"));
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.world.stub_count, 123);
  EXPECT_EQ(config.world.tier1_count, 5);
  EXPECT_DOUBLE_EQ(config.world.tier1_city_coverage, 0.2);
  EXPECT_EQ(config.census.total_probes, 777);
  EXPECT_DOUBLE_EQ(config.census.resolver_local_prob, 0.5);
  EXPECT_DOUBLE_EQ(config.latency.per_hop_ms, 0.9);
  EXPECT_EQ(config.geo_dbs[0].name, "custom");
  EXPECT_DOUBLE_EQ(config.geo_dbs[0].wrong_country_prob, 0.25);
  // The other databases keep their defaults.
  const lab::LabConfig defaults;
  EXPECT_EQ(config.geo_dbs[1].name, defaults.geo_dbs[1].name);
}

TEST(Config, UnknownKeysIgnored) {
  const auto config = lab_config_from_json(
      parse_json_or_throw(R"({"future_knob": 1, "world": {"also_future": 2}})"));
  const lab::LabConfig defaults;
  EXPECT_EQ(config.world.stub_count, defaults.world.stub_count);
}

TEST(Config, RoundTripsThroughJson) {
  lab::LabConfig original;
  original.seed = 4711;
  original.world.stub_count = 999;
  original.world.tier1_count = 17;
  original.census.total_probes = 4242;
  original.latency.jitter_max_ms = 3.25;
  original.geo_dbs[2].wrong_country_prob = 0.123;

  const auto json = lab_config_to_json(original);
  const auto restored = lab_config_from_json(json);
  EXPECT_EQ(restored.seed, original.seed);
  EXPECT_EQ(restored.world.stub_count, original.world.stub_count);
  EXPECT_EQ(restored.world.tier1_count, original.world.tier1_count);
  EXPECT_EQ(restored.census.total_probes, original.census.total_probes);
  EXPECT_DOUBLE_EQ(restored.latency.jitter_max_ms, original.latency.jitter_max_ms);
  EXPECT_DOUBLE_EQ(restored.geo_dbs[2].wrong_country_prob,
                   original.geo_dbs[2].wrong_country_prob);
}

TEST(Config, ObservabilityTriStateRoundTrips) {
  // Absent / null -> nullopt (defer to the RANYCAST_OBS environment switch).
  EXPECT_FALSE(lab_config_from_json(parse_json_or_throw("{}")).observability.has_value());
  EXPECT_FALSE(lab_config_from_json(parse_json_or_throw(R"({"observability": null})"))
                   .observability.has_value());
  const auto forced_on =
      lab_config_from_json(parse_json_or_throw(R"({"observability": true})"));
  ASSERT_TRUE(forced_on.observability.has_value());
  EXPECT_TRUE(*forced_on.observability);
  const auto forced_off =
      lab_config_from_json(parse_json_or_throw(R"({"observability": false})"));
  ASSERT_TRUE(forced_off.observability.has_value());
  EXPECT_FALSE(*forced_off.observability);

  lab::LabConfig original;
  original.observability = false;
  const auto restored = lab_config_from_json(lab_config_to_json(original));
  ASSERT_TRUE(restored.observability.has_value());
  EXPECT_FALSE(*restored.observability);
}

TEST(Config, SerializedFormParsesAsJson) {
  const auto json = lab_config_to_json(lab::LabConfig{});
  const auto reparsed = parse_json_or_throw(json.dump(2));
  EXPECT_TRUE(reparsed.is_object());
  EXPECT_NE(reparsed.find("world"), nullptr);
  EXPECT_NE(reparsed.find("geo_dbs"), nullptr);
}

TEST(Config, ReadFileReportsMissingFileAsError) {
  const auto result = read_file("/nonexistent/path/config.json");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().file, "/nonexistent/path/config.json");
  EXPECT_NE(result.error().message.find("cannot open"), std::string::npos);
  EXPECT_NE(result.error().to_string().find("/nonexistent/path/config.json"),
            std::string::npos);
}

TEST(Config, LoadConfigReportsMissingFileAsError) {
  const auto result = load_config("/nonexistent/path/config.json");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().file, "/nonexistent/path/config.json");
}

TEST(Config, ValidationRejectsZeroProbes) {
  lab::LabConfig config;
  config.census.total_probes = 0;
  const auto err = validate_lab_config(config, "lab.json");
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "census.total_probes");
  EXPECT_EQ(err->file, "lab.json");
  EXPECT_NE(err->to_string().find("census.total_probes"), std::string::npos);
}

TEST(Config, ValidationRejectsNegativeGeoDbErrorRate) {
  lab::LabConfig config;
  config.geo_dbs[1].wrong_country_prob = -0.25;
  const auto err = validate_lab_config(config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "geo_dbs[1].wrong_country_prob");
  EXPECT_NE(err->message.find("[0,1]"), std::string::npos);
}

TEST(Config, ValidationRejectsProbabilityAboveOne) {
  lab::LabConfig config;
  config.world.stub_ixp_join_prob = 1.5;
  const auto err = validate_lab_config(config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "world.stub_ixp_join_prob");
}

TEST(Config, ValidationAcceptsDefaults) {
  EXPECT_FALSE(validate_lab_config(lab::LabConfig{}).has_value());
}

TEST(Config, ConfiguredLabIsUsable) {
  const auto config = lab_config_from_json(parse_json_or_throw(
      R"({"world": {"stub_count": 200}, "census": {"total_probes": 300}})"));
  auto laboratory = lab::Lab::create(config);
  EXPECT_GT(laboratory.census().probes().size(), 100u);
  EXPECT_LE(laboratory.census().probes().size(), 300u);
}

}  // namespace
}  // namespace ranycast::io
