// Deterministic structure-aware fuzzing of the JSON layer and its two
// consumers: the lab-config binder and the chaos scenario parser.
//
// No libFuzzer: a fixed-seed xoshiro mutator walks the committed corpus in
// tests/fuzz/corpus/, producing byte flips, truncations, structural-token
// insertions and cross-file splices. Every mutant must either parse or
// return a structured error — never crash, hang, or throw past the API
// boundary. Parsed documents additionally go through dump() → reparse to
// check the printer emits what the parser accepts.
//
// Crashes found by this harness graduate to named regression cases at the
// bottom of the file (and, when input-shaped, to corpus files).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <variant>
#include <vector>

#include "ranycast/chaos/scenario.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/io/json.hpp"

#ifndef RANYCAST_FUZZ_CORPUS_DIR
#error "build must define RANYCAST_FUZZ_CORPUS_DIR"
#endif

namespace ranycast {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> load_corpus() {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(RANYCAST_FUZZ_CORPUS_DIR)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // directory order is not portable
  std::vector<std::string> corpus;
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    corpus.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  return corpus;
}

/// Tokens that matter to a JSON parser: inserting these moves the mutant
/// between syntactic states far more often than random bytes would.
constexpr std::string_view kStructural[] = {
    "{", "}", "[", "]", ":", ",", "\"", "\\", "true", "false", "null",
    "0",  "-", "e", ".", "1e309", "\"type\"", "{\"events\":", "\0\0",
};

std::string mutate(const std::vector<std::string>& corpus, Rng& rng) {
  std::string input = corpus[rng() % corpus.size()];
  const std::size_t rounds = 1 + rng() % 4;
  for (std::size_t round = 0; round < rounds; ++round) {
    switch (rng() % 5) {
      case 0: {  // flip a byte
        if (input.empty()) break;
        input[rng() % input.size()] ^= static_cast<char>(1 << (rng() % 8));
        break;
      }
      case 1: {  // truncate
        input.resize(input.empty() ? 0 : rng() % input.size());
        break;
      }
      case 2: {  // insert a structural token
        const auto token = kStructural[rng() % std::size(kStructural)];
        input.insert(rng() % (input.size() + 1), token.data(), token.size());
        break;
      }
      case 3: {  // splice a window from another corpus entry
        const std::string& donor = corpus[rng() % corpus.size()];
        if (donor.empty()) break;
        const std::size_t at = rng() % donor.size();
        const std::size_t len = 1 + rng() % (donor.size() - at);
        input.insert(rng() % (input.size() + 1), donor, at, len);
        break;
      }
      case 4: {  // overwrite with raw bytes (exercises UTF-8/control paths)
        if (input.empty()) break;
        input[rng() % input.size()] = static_cast<char>(rng() % 256);
        break;
      }
    }
  }
  return input;
}

/// One mutant through every parser: nothing may escape as a crash or an
/// unstructured exception. Returns true when the document parsed.
bool exercise(const std::string& input) {
  auto parsed = io::parse_json(input);
  if (std::holds_alternative<io::JsonParseError>(parsed)) return false;
  const io::Json& json = std::get<io::Json>(parsed);

  // Printer/parser agreement: what dump() emits must reparse to a document
  // that dumps identically (fixed point after one round).
  const std::string once = json.dump();
  auto reparsed = io::parse_json(once);
  EXPECT_TRUE(std::holds_alternative<io::Json>(reparsed))
      << "dump() produced unparseable output for: " << input.substr(0, 200);
  if (auto* round = std::get_if<io::Json>(&reparsed)) {
    EXPECT_EQ(round->dump(), once) << "dump() is not a fixed point";
  }

  // Binders are total on parsed documents: tolerant defaults or a
  // structured error, never a throw.
  const lab::LabConfig config = io::lab_config_from_json(json);
  (void)io::validate_lab_config(config);
  (void)chaos::plan_from_json(json, "<fuzz>");
  return true;
}

TEST(Fuzz, CorpusFilesThemselvesAreHandled) {
  const auto corpus = load_corpus();
  ASSERT_GE(corpus.size(), 5u) << "corpus went missing from " << RANYCAST_FUZZ_CORPUS_DIR;
  std::size_t parsed = 0;
  for (const auto& doc : corpus) parsed += exercise(doc) ? 1 : 0;
  // The corpus deliberately mixes valid and malformed documents.
  EXPECT_GE(parsed, 3u) << "valid seeds stopped parsing";
  EXPECT_LT(parsed, corpus.size()) << "malformed seeds stopped failing";
}

TEST(Fuzz, DeterministicMutationSweep) {
  const auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  // Fixed seed + bounded iterations: this is the CI smoke configuration.
  // For a deeper local run, raise kIterations; failures reproduce exactly.
  constexpr std::uint64_t kSeed = 20230805;
  constexpr int kIterations = 2000;
  Rng rng(kSeed);
  std::size_t parsed = 0;
  for (int i = 0; i < kIterations; ++i) {
    const std::string input = mutate(corpus, rng);
    SCOPED_TRACE("iteration " + std::to_string(i));
    parsed += exercise(input) ? 1 : 0;
  }
  // Structure-aware mutation keeps a healthy share of mutants parseable;
  // if this drops to ~0 the mutator degenerated into noise.
  EXPECT_GT(parsed, 0u);
}

// --- regression cases: inputs that once crashed or misbehaved -------------

TEST(FuzzRegression, DeepArrayNestingReturnsErrorNotCrash) {
  // Pre-depth-cap, 400 nested arrays overflowed the recursive-descent stack.
  const std::string deep(400, '[');
  auto result = io::parse_json(deep + "0" + std::string(400, ']'));
  ASSERT_TRUE(std::holds_alternative<io::JsonParseError>(result));
  EXPECT_NE(std::get<io::JsonParseError>(result).message.find("nesting"),
            std::string::npos);
}

TEST(FuzzRegression, DeepObjectNestingReturnsErrorNotCrash) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "{\"a\":";
  deep += "1";
  deep.append(400, '}');
  auto result = io::parse_json(deep);
  ASSERT_TRUE(std::holds_alternative<io::JsonParseError>(result));
}

TEST(FuzzRegression, NestingJustUnderTheCapStillParses) {
  const int depth = 250;  // cap is 256
  std::string doc(depth, '[');
  doc += "0";
  doc.append(depth, ']');
  EXPECT_TRUE(std::holds_alternative<io::Json>(io::parse_json(doc)));
}

TEST(FuzzRegression, LoneSurrogateAndControlBytesDoNotCrash) {
  (void)io::parse_json("\"\\udc00\"");
  (void)io::parse_json(std::string("\"\x01\x02\x7f\"", 5));
  (void)io::parse_json(std::string("\0", 1));
}

TEST(FuzzRegression, ScenarioBinderRejectsNonObjectEvents) {
  auto json = io::parse_json_or_throw(
      R"({"name": "x", "events": [42, {"type": "site_withdraw", "site": 0}]})");
  auto plan = chaos::plan_from_json(json, "<fuzz>");
  EXPECT_FALSE(plan.has_value());
}

TEST(FuzzRegression, LabBinderToleratesWrongScalarTypes) {
  // find()/int_or() fall back on type mismatch instead of throwing.
  auto json = io::parse_json_or_throw(
      R"({"seed": "not a number", "world": [1, 2], "census": {"total_probes": true}})");
  const lab::LabConfig config = io::lab_config_from_json(json);
  (void)io::validate_lab_config(config);
}

}  // namespace
}  // namespace ranycast
