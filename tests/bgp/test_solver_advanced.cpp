// Solver behaviours behind the paper's deployment findings: cross-region
// announcements, hot-potato geographic tie-breaking, peer-only origination
// reach, and multi-homed origination at one neighbor.
#include <gtest/gtest.h>

#include "ranycast/bgp/solver.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::bgp {
namespace {

using topo::AsKind;
using topo::Graph;
using topo::Rel;

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

constexpr Asn kCdn = make_asn(65000);

OriginAttachment attach(std::uint16_t site, CityId c, Asn neighbor,
                        Rel rel = Rel::Customer) {
  return OriginAttachment{SiteId{site}, c, neighbor, rel, true};
}

TEST(SolverAdvanced, HotPotatoTieBreakPrefersNearIngress) {
  // X (home FRA) hears the same-length customer routes from two customers,
  // one interconnecting in FRA, one in SIN. The geographic tie-break must
  // pick the near ingress.
  Graph g;
  const CityId fra = city("FRA");
  const CityId sin = city("SIN");
  const Asn x = g.add_as(AsKind::Tier1, fra, {fra, sin});
  const Asn near_c = g.add_as(AsKind::Transit, fra, {fra});
  const Asn far_c = g.add_as(AsKind::Transit, sin, {sin});
  g.add_transit(near_c, x, {fra});
  g.add_transit(far_c, x, {sin});

  const OriginAttachment origins[] = {
      attach(0, fra, near_c),
      attach(1, sin, far_c),
  };
  // Try several tie-break seeds: geography must dominate the hash.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto outcome = solve_anycast(g, kCdn, origins, seed);
    const Route* r = outcome.route_for(x);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->origin_site, SiteId{0}) << "seed " << seed;
  }
}

TEST(SolverAdvanced, CrossRegionAnnouncementServesBothPrefixes) {
  // A mixed site announces two prefixes through the same attachment; each
  // prefix is solved independently and both reach the client.
  Graph g;
  const CityId mia = city("MIA");
  const Asn provider = g.add_as(AsKind::Transit, mia, {mia});
  const Asn client = g.add_as(AsKind::Stub, mia, {mia});
  g.add_transit(client, provider, {mia});

  const OriginAttachment na_origin[] = {attach(0, mia, provider)};
  const OriginAttachment sa_origin[] = {attach(0, mia, provider)};
  const auto na = solve_anycast(g, kCdn, na_origin, 1);
  const auto sa = solve_anycast(g, kCdn, sa_origin, 2);
  EXPECT_NE(na.route_for(client), nullptr);
  EXPECT_NE(sa.route_for(client), nullptr);
}

TEST(SolverAdvanced, PeerOnlyOriginationIsNotGloballyReachable) {
  // Valley-free: a prefix announced only over a peering session reaches the
  // peer and its customer cone, nothing above it.
  Graph g;
  const CityId ams = city("AMS");
  const Asn peer = g.add_as(AsKind::Transit, ams, {ams});
  const Asn peers_provider = g.add_as(AsKind::Tier1, ams, {ams});
  const Asn cousin = g.add_as(AsKind::Transit, ams, {ams});
  const Asn peer_customer = g.add_as(AsKind::Stub, ams, {ams});
  g.add_transit(peer, peers_provider, {ams});
  g.add_transit(cousin, peers_provider, {ams});
  g.add_transit(peer_customer, peer, {ams});

  const OriginAttachment origins[] = {attach(0, ams, peer, Rel::PeerPublic)};
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  EXPECT_NE(outcome.route_for(peer), nullptr);
  EXPECT_NE(outcome.route_for(peer_customer), nullptr);  // down the cone
  EXPECT_EQ(outcome.route_for(peers_provider), nullptr);  // not up
  EXPECT_EQ(outcome.route_for(cousin), nullptr);          // not sideways
}

TEST(SolverAdvanced, MultipleAttachmentsAtOneNeighborPickOne) {
  // A CDN announcing via two sites to the SAME neighbor: the neighbor holds
  // exactly one best route; the other site still serves nobody through it.
  Graph g;
  const CityId lhr = city("LHR");
  const Asn neighbor = g.add_as(AsKind::Transit, lhr, {lhr});
  const OriginAttachment origins[] = {
      attach(0, lhr, neighbor),
      attach(1, lhr, neighbor),
  };
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  const Route* r = outcome.route_for(neighbor);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->origin_site == SiteId{0} || r->origin_site == SiteId{1});
}

TEST(SolverAdvanced, RouteServerOriginationLosesToTransitPath) {
  // An AS with a route-server session to the CDN *and* a provider path:
  // route-server peer (lpref 150) still beats provider (100).
  Graph g;
  const CityId fra = city("FRA");
  const Asn x = g.add_as(AsKind::Transit, fra, {fra});
  const Asn provider = g.add_as(AsKind::Tier1, fra, {fra});
  const Asn origin_neighbor = g.add_as(AsKind::Transit, fra, {fra});
  g.add_transit(x, provider, {fra});
  g.add_transit(origin_neighbor, provider, {fra});

  const OriginAttachment origins[] = {
      attach(0, fra, origin_neighbor),          // climbs to provider, descends to x
      attach(1, fra, x, Rel::PeerRouteServer),  // direct RS session at x
  };
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  const Route* r = outcome.route_for(x);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->origin_site, SiteId{1});
  EXPECT_EQ(r->cls, RouteClass::PeerRouteServer);
}

TEST(SolverAdvanced, EmptyOriginsYieldEmptyOutcome) {
  Graph g;
  const CityId ams = city("AMS");
  const Asn a = g.add_as(AsKind::Stub, ams, {ams});
  const auto outcome = solve_anycast(g, kCdn, {}, 1);
  EXPECT_EQ(outcome.route_for(a), nullptr);
  EXPECT_EQ(outcome.reachable_count(), 0u);
}

TEST(SolverAdvanced, IngressKmRecordedOnRoutes) {
  Graph g;
  const CityId sin = city("SIN");
  const CityId fra = city("FRA");
  const Asn provider = g.add_as(AsKind::Tier1, fra, {fra, sin});
  const Asn client = g.add_as(AsKind::Stub, fra, {fra});
  g.add_transit(client, provider, {fra});
  const OriginAttachment origins[] = {attach(0, sin, provider)};
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  const Route* at_provider = outcome.route_for(provider);
  ASSERT_NE(at_provider, nullptr);
  // Provider (home FRA) received the announcement at the SIN site.
  EXPECT_NEAR(at_provider->ingress_km,
              geo::Gazetteer::world().distance(fra, sin).km, 1.0);
}

}  // namespace
}  // namespace ranycast::bgp
