#include "ranycast/bgp/path_metrics.hpp"

#include <gtest/gtest.h>

#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::bgp {
namespace {

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

Route make_route(std::vector<Asn> path, std::vector<CityId> geo) {
  Route r;
  r.origin_site = SiteId{0};
  r.origin_asn = make_asn(65000);
  r.cls = RouteClass::Customer;
  r.as_path = std::move(path);
  r.geo_path = std::move(geo);
  return r;
}

TEST(LatencyModel, PathDistanceSumsSegments) {
  const LatencyModel m;
  // Client in AMS, route geo path: site LHR, interconnect FRA.
  // Data path: AMS -> FRA -> LHR.
  const Route r = make_route({make_asn(65000), make_asn(1)}, {city("LHR"), city("FRA")});
  const auto& gaz = geo::Gazetteer::world();
  const double expected =
      gaz.distance(city("AMS"), city("FRA")).km + gaz.distance(city("FRA"), city("LHR")).km;
  EXPECT_NEAR(m.path_distance(r, city("AMS")).km, expected, 1e-6);
}

TEST(LatencyModel, RttScalesWithDistance) {
  const LatencyModel m;
  const Route near = make_route({make_asn(65000)}, {city("AMS")});
  const Route far = make_route({make_asn(65000)}, {city("SYD")});
  const Rtt near_rtt = m.path_rtt(near, city("LHR"), make_asn(100));
  const Rtt far_rtt = m.path_rtt(far, city("LHR"), make_asn(100));
  EXPECT_LT(near_rtt.ms, 15.0);
  EXPECT_GT(far_rtt.ms, 150.0);
}

TEST(LatencyModel, RttIncludesAccessExtra) {
  const LatencyModel m;
  const Route r = make_route({make_asn(65000)}, {city("AMS")});
  const Rtt base = m.path_rtt(r, city("AMS"), make_asn(100), 0.0);
  const Rtt extra = m.path_rtt(r, city("AMS"), make_asn(100), 7.5);
  EXPECT_NEAR(extra.ms - base.ms, 7.5, 1e-9);
}

TEST(LatencyModel, RttDeterministicPerClientAndPath) {
  const LatencyModel m;
  const Route r = make_route({make_asn(65000), make_asn(1)}, {city("LHR"), city("FRA")});
  EXPECT_EQ(m.path_rtt(r, city("AMS"), make_asn(100)).ms,
            m.path_rtt(r, city("AMS"), make_asn(100)).ms);
  // Different clients see different jitter.
  EXPECT_NE(m.path_rtt(r, city("AMS"), make_asn(100)).ms,
            m.path_rtt(r, city("AMS"), make_asn(101)).ms);
}

TEST(LatencyModel, RttLowerBoundedBySpeedOfLight) {
  const LatencyModel m;
  const Route r = make_route({make_asn(65000)}, {city("SYD")});
  const double geo_ms = geo::rtt_lower_bound(m.path_distance(r, city("LHR"))).ms;
  EXPECT_GE(m.path_rtt(r, city("LHR"), make_asn(1)).ms, geo_ms);
}

class TracerouteTest : public ::testing::Test {
 protected:
  topo::IpRegistry registry_;
  LatencyModel latency_;
  TracerouteConfig config_{.phop_loss_prob = 0.0, .seed = 1};
  const Ipv4Addr dest_{Ipv4Addr(198, 18, 0, 1)};
};

TEST_F(TracerouteTest, HopStructureOnsiteRouter) {
  // Route: client AS 50 in AMS; path [cdn, A1=10, A2=20]; geo [LHR, FRA, BRU].
  const Route r = make_route({make_asn(65000), make_asn(10), make_asn(20)},
                             {city("LHR"), city("FRA"), city("BRU")});
  const auto t = synth_traceroute(r, city("AMS"), make_asn(50), 0.0, true, dest_, latency_,
                                  config_, registry_);
  // hops: client router, A2@BRU, A1@FRA, p-hop (CDN @ LHR).
  ASSERT_EQ(t.hops.size(), 4u);
  EXPECT_EQ(t.hops[0].owner, make_asn(50));
  EXPECT_EQ(t.hops[1].owner, make_asn(20));
  EXPECT_EQ(t.hops[1].city, city("BRU"));
  EXPECT_EQ(t.hops[2].owner, make_asn(10));
  EXPECT_EQ(t.hops[2].city, city("FRA"));
  EXPECT_EQ(t.phop().owner, make_asn(65000));  // CDN's on-site router
  EXPECT_EQ(t.phop().city, city("LHR"));
  EXPECT_TRUE(t.phop_valid);
}

TEST_F(TracerouteTest, HopStructureOffsiteRouter) {
  const Route r = make_route({make_asn(65000), make_asn(10)}, {city("LHR"), city("FRA")});
  const auto t = synth_traceroute(r, city("AMS"), make_asn(50), 0.0, false, dest_, latency_,
                                  config_, registry_);
  // p-hop belongs to the first-hop neighbor (AS 10) at the site city.
  EXPECT_EQ(t.phop().owner, make_asn(10));
  EXPECT_EQ(t.phop().city, city("LHR"));
}

TEST_F(TracerouteTest, HopRttsAreMonotonicallyNondecreasingInDistance) {
  const Route r = make_route({make_asn(65000), make_asn(10), make_asn(20)},
                             {city("SIN"), city("DXB"), city("FRA")});
  const auto t = synth_traceroute(r, city("AMS"), make_asn(50), 0.0, true, dest_, latency_,
                                  config_, registry_);
  for (std::size_t i = 1; i < t.hops.size(); ++i) {
    EXPECT_GE(t.hops[i].rtt.ms, t.hops[i - 1].rtt.ms);
  }
  EXPECT_GT(t.rtt.ms, 0.0);
}

TEST_F(TracerouteTest, PhopLossIsDeterministic) {
  TracerouteConfig lossy{.phop_loss_prob = 0.5, .seed = 3};
  const Route r = make_route({make_asn(65000), make_asn(10)}, {city("LHR"), city("FRA")});
  const auto t1 = synth_traceroute(r, city("AMS"), make_asn(50), 0.0, true, dest_, latency_,
                                   lossy, registry_);
  const auto t2 = synth_traceroute(r, city("AMS"), make_asn(50), 0.0, true, dest_, latency_,
                                   lossy, registry_);
  EXPECT_EQ(t1.phop_valid, t2.phop_valid);
}

TEST_F(TracerouteTest, PhopLossRateApproximatesConfig) {
  TracerouteConfig lossy{.phop_loss_prob = 0.3, .seed = 3};
  const Route base = make_route({make_asn(65000), make_asn(10)}, {city("LHR"), city("FRA")});
  int lost = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto t = synth_traceroute(base, city("AMS"), make_asn(static_cast<std::uint32_t>(i + 1)),
                                    0.0, true, dest_, latency_, lossy, registry_);
    if (!t.phop_valid) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.3, 0.05);
}

TEST_F(TracerouteTest, DirectNeighborClientHasMinimalPath) {
  // Client AS is the attachment neighbor itself: as_path == [cdn].
  const Route r = make_route({make_asn(65000)}, {city("LHR")});
  const auto t = synth_traceroute(r, city("LHR"), make_asn(50), 0.0, true, dest_, latency_,
                                  config_, registry_);
  ASSERT_EQ(t.hops.size(), 2u);  // client router + p-hop
  EXPECT_EQ(t.phop().owner, make_asn(65000));
}

}  // namespace
}  // namespace ranycast::bgp
