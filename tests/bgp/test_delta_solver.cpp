// Differential tests for the incremental DeltaSolver: every resolve must be
// byte-identical to a from-scratch solve_anycast over the same mutated
// inputs — on hand-built graphs, on generated worlds, under randomized
// fault soaks, and across fallback/verify/clone paths.
#include "ranycast/bgp/delta_solver.hpp"

#include <gtest/gtest.h>

#include "ranycast/core/rng.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/topo/generator.hpp"

namespace ranycast::bgp {
namespace {

using topo::AsKind;
using topo::Graph;
using topo::Rel;

constexpr Asn kCdn = make_asn(65000);
constexpr std::uint64_t kSeed = 2023;

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

OriginAttachment attach(SiteId site, CityId c, Asn neighbor, Rel rel = Rel::Customer) {
  return OriginAttachment{site, c, neighbor, rel, true};
}

/// Full route-level equality: selection fields plus materialized paths.
void expect_outcomes_equal(const Graph& g, const RoutingOutcome& got,
                           const RoutingOutcome& want, const char* what) {
  ASSERT_EQ(got.as_count(), want.as_count()) << what;
  for (const topo::AsNode& node : g.nodes()) {
    const Route* a = got.route_for(node.asn);
    const Route* b = want.route_for(node.asn);
    ASSERT_EQ(a == nullptr, b == nullptr)
        << what << ": reachability of AS" << value(node.asn);
    if (a == nullptr) continue;
    EXPECT_EQ(a->origin_site, b->origin_site) << what << ": AS" << value(node.asn);
    EXPECT_EQ(a->cls, b->cls) << what << ": AS" << value(node.asn);
    EXPECT_EQ(a->ingress_km, b->ingress_km) << what << ": AS" << value(node.asn);
    EXPECT_EQ(a->tiebreak, b->tiebreak) << what << ": AS" << value(node.asn);
    EXPECT_EQ(a->as_path, b->as_path) << what << ": AS" << value(node.asn);
    EXPECT_EQ(a->geo_path, b->geo_path) << what << ": AS" << value(node.asn);
  }
}

/// A small world with IXPs, used by the generated-topology tests. The
/// origins attach the CDN at a handful of transit ASes spread over the
/// graph, plus one route-server peering.
struct Fixture {
  topo::World world;
  std::vector<OriginAttachment> origins;

  explicit Fixture(int stubs = 260) {
    topo::GeneratorParams params;
    params.seed = 7;
    params.stub_count = stubs;
    params.tier1_count = 8;
    params.international_transits = 12;
    params.ixp_count = 6;
    world = topo::generate_world(params);
    const auto nodes = world.graph.nodes();
    std::uint16_t site = 0;
    for (std::size_t i = 0; i < nodes.size() && site < 5; ++i) {
      if (nodes[i].kind != AsKind::Transit) continue;
      if (i % 7 != 0) continue;  // spread the sites out
      origins.push_back(attach(SiteId{site}, nodes[i].home_city, nodes[i].asn));
      ++site;
    }
    // One peer origination at an IXP member, exercising stage 2.
    if (!world.graph.ixps().empty() && !world.graph.ixps()[0].members.empty()) {
      const topo::Ixp& ixp = world.graph.ixps()[0];
      origins.push_back(
          attach(SiteId{site}, ixp.city, ixp.members[0], Rel::PeerRouteServer));
    }
    EXPECT_GE(origins.size(), 4u);
  }

  Graph& graph() { return world.graph; }
};

TEST(DeltaSolver, PrimeMatchesFullSolve) {
  Fixture fx;
  DeltaSolver solver(fx.graph(), kCdn, 1);
  DeltaStats stats;
  const auto primed = solver.prime(0, fx.origins, kSeed, &stats);
  const auto scratch = solve_anycast(fx.graph(), kCdn, fx.origins, kSeed);
  expect_outcomes_equal(fx.graph(), primed, scratch, "prime");
  EXPECT_EQ(stats.full_regions, 1u);
  EXPECT_TRUE(solver.primed(0));
  EXPECT_FALSE(solver.primed(1));
}

TEST(DeltaSolver, EmptyDeltaChangesNothing) {
  Fixture fx;
  DeltaSolver solver(fx.graph(), kCdn, 1);
  solver.prime(0, fx.origins, kSeed);
  DeltaStats stats;
  const auto out = solver.resolve(0, fx.origins, {}, {}, &stats);
  const auto scratch = solve_anycast(fx.graph(), kCdn, fx.origins, kSeed);
  expect_outcomes_equal(fx.graph(), out, scratch, "empty delta");
  EXPECT_EQ(stats.delta_regions, 1u);
  EXPECT_EQ(stats.affected_ases, 0u);
  EXPECT_EQ(stats.full_regions, 0u);
}

TEST(DeltaSolver, TransitLinkFlapMatchesFullSolve) {
  Fixture fx;
  Graph& g = fx.graph();
  DeltaSolver solver(g, kCdn, 1);
  solver.prime(0, fx.origins, kSeed);

  // Down the first origin holder's first transit adjacency — squarely in
  // the hot part of the route tree.
  const auto holder = g.index_of(fx.origins[0].neighbor);
  ASSERT_TRUE(holder.has_value());
  Asn other = kInvalidAsn;
  for (const topo::Edge& e : g.nodes()[*holder].edges) {
    if (e.rel == Rel::Provider || e.rel == Rel::Customer) {
      other = e.neighbor;
      break;
    }
  }
  ASSERT_NE(other, kInvalidAsn);

  ASSERT_TRUE(g.set_link_state(fx.origins[0].neighbor, other, false));
  const LinkDelta down{fx.origins[0].neighbor, other, false};
  DeltaStats stats;
  const auto after_down = solver.resolve(0, fx.origins, {}, {&down, 1}, &stats);
  expect_outcomes_equal(g, after_down, solve_anycast(g, kCdn, fx.origins, kSeed),
                        "link down");
  EXPECT_EQ(stats.delta_regions + stats.full_regions, 1u);

  ASSERT_TRUE(g.set_link_state(fx.origins[0].neighbor, other, true));
  const LinkDelta up{fx.origins[0].neighbor, other, true};
  const auto after_up = solver.resolve(0, fx.origins, {}, {&up, 1});
  expect_outcomes_equal(g, after_up, solve_anycast(g, kCdn, fx.origins, kSeed),
                        "link up");
}

TEST(DeltaSolver, SiteWithdrawAndRestoreMatchFullSolve) {
  Fixture fx;
  Graph& g = fx.graph();
  DeltaSolver solver(g, kCdn, 1);
  solver.prime(0, fx.origins, kSeed);

  // Withdraw one site's origination.
  std::vector<OriginAttachment> without = fx.origins;
  without.erase(without.begin() + 1);
  const auto withdraw = diff_origin_changes(fx.origins, without);
  ASSERT_EQ(withdraw.size(), 1u);
  EXPECT_FALSE(withdraw[0].announce);
  DeltaStats stats;
  const auto after = solver.resolve(0, without, withdraw, {}, &stats);
  expect_outcomes_equal(g, after, solve_anycast(g, kCdn, without, kSeed), "withdraw");
  EXPECT_GT(stats.affected_ases + stats.full_regions, 0u);

  // Restore it (announcement lands at the end, in after-order).
  const auto restore = diff_origin_changes(without, fx.origins);
  ASSERT_EQ(restore.size(), 1u);
  EXPECT_TRUE(restore[0].announce);
  const auto back = solver.resolve(0, fx.origins, restore, {});
  expect_outcomes_equal(g, back, solve_anycast(g, kCdn, fx.origins, kSeed), "restore");
}

TEST(DeltaSolver, RouteServerOutageMatchesFullSolve) {
  Fixture fx;
  Graph& g = fx.graph();
  ASSERT_FALSE(g.ixps().empty());
  DeltaSolver solver(g, kCdn, 1);
  solver.prime(0, fx.origins, kSeed);

  const auto pairs = g.route_server_peerings(0);
  g.set_route_server_state(0, false);
  std::vector<LinkDelta> links;
  for (const auto& [a, b] : pairs) links.push_back(LinkDelta{a, b, false});
  const auto after = solver.resolve(0, fx.origins, {}, links);
  expect_outcomes_equal(g, after, solve_anycast(g, kCdn, fx.origins, kSeed),
                        "route-server down");

  g.set_route_server_state(0, true);
  for (LinkDelta& l : links) l.up = true;
  const auto back = solver.resolve(0, fx.origins, {}, links);
  expect_outcomes_equal(g, back, solve_anycast(g, kCdn, fx.origins, kSeed),
                        "route-server up");
}

TEST(DeltaSolver, RegionalWithdrawalFallsBackAndStillMatches) {
  Fixture fx;
  Graph& g = fx.graph();
  DeltaConfig cfg;
  cfg.enabled = true;
  cfg.fallback_frac = 1e-9;  // budget floor (64) << a whole-prefix withdrawal
  DeltaSolver solver(g, kCdn, 1, cfg);
  solver.prime(0, fx.origins, kSeed);

  const std::vector<OriginAttachment> none;
  const auto changes = diff_origin_changes(fx.origins, none);
  ASSERT_EQ(changes.size(), fx.origins.size());
  DeltaStats stats;
  const auto after = solver.resolve(0, none, changes, {}, &stats);
  EXPECT_EQ(stats.full_regions, 1u) << "whole-prefix withdrawal must exceed the budget";
  EXPECT_EQ(stats.delta_regions, 0u);
  expect_outcomes_equal(g, after, solve_anycast(g, kCdn, none, kSeed), "fallback");
  EXPECT_EQ(after.reachable_count(), 0u);
}

TEST(DeltaSolver, SampledVerifyRunsClean) {
  Fixture fx;
  Graph& g = fx.graph();
  DeltaConfig cfg;
  cfg.enabled = true;
  cfg.verify_every = 1;
  DeltaSolver solver(g, kCdn, 1, cfg);
  solver.prime(0, fx.origins, kSeed);

  std::vector<OriginAttachment> without = fx.origins;
  without.pop_back();
  DeltaStats stats;
  solver.resolve(0, without, diff_origin_changes(fx.origins, without), {}, &stats);
  EXPECT_EQ(stats.verified, 1u);
  EXPECT_EQ(stats.mismatches, 0u);
}

TEST(DeltaSolver, CloneDivergesIndependently) {
  Fixture fx;
  Graph& g = fx.graph();
  DeltaSolver solver(g, kCdn, 1);
  solver.prime(0, fx.origins, kSeed);
  const auto clone = solver.clone();

  // Mutate through the clone only.
  std::vector<OriginAttachment> without = fx.origins;
  without.erase(without.begin());
  const auto after =
      clone->resolve(0, without, diff_origin_changes(fx.origins, without), {});
  expect_outcomes_equal(g, after, solve_anycast(g, kCdn, without, kSeed), "clone");

  // The original still answers for the unmutated origin set.
  const auto original = solver.resolve(0, fx.origins, {}, {});
  expect_outcomes_equal(g, original, solve_anycast(g, kCdn, fx.origins, kSeed),
                        "original after clone");
}

TEST(DeltaSolver, RandomizedFaultSoakMatchesFullSolveEveryStep) {
  Fixture fx(320);
  Graph& g = fx.graph();
  DeltaSolver solver(g, kCdn, 1);
  solver.prime(0, fx.origins, kSeed);

  // Collect candidate transit links near the route tree to flap.
  std::vector<std::pair<Asn, Asn>> links;
  for (const topo::AsNode& node : g.nodes()) {
    for (const topo::Edge& e : node.edges) {
      if (e.rel == Rel::Provider && links.size() < 64) {
        links.emplace_back(node.asn, e.neighbor);
      }
    }
  }
  ASSERT_FALSE(links.empty());

  Rng rng{0xD17A};
  std::vector<OriginAttachment> origins = fx.origins;
  std::vector<bool> link_up(links.size(), true);
  std::vector<bool> origin_live(fx.origins.size(), true);
  for (int step = 0; step < 40; ++step) {
    std::vector<LinkDelta> link_delta;
    std::vector<OriginChange> changes;
    const std::vector<OriginAttachment> before = origins;
    if (rng() % 2 == 0) {
      const std::size_t i = rng() % links.size();
      link_up[i] = !link_up[i];
      ASSERT_TRUE(g.set_link_state(links[i].first, links[i].second, link_up[i]));
      link_delta.push_back(LinkDelta{links[i].first, links[i].second, link_up[i]});
    } else {
      const std::size_t i = rng() % fx.origins.size();
      origin_live[i] = !origin_live[i];
      origins.clear();
      for (std::size_t k = 0; k < fx.origins.size(); ++k) {
        if (origin_live[k]) origins.push_back(fx.origins[k]);
      }
      changes = diff_origin_changes(before, origins);
    }
    const auto out = solver.resolve(0, origins, changes, link_delta);
    const auto scratch = solve_anycast(g, kCdn, origins, kSeed);
    expect_outcomes_equal(g, out, scratch, "soak step");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DeltaSolver, HandBuiltPeerPreferenceDelta) {
  // X prefers its customer route; when the customer link dies it must fall
  // to the peer route — re-decided incrementally.
  Graph g;
  const CityId ams = city("AMS");
  const Asn x = g.add_as(AsKind::Transit, ams, {ams});
  const Asn c = g.add_as(AsKind::Transit, ams, {ams});
  const Asn p = g.add_as(AsKind::Transit, ams, {ams});
  g.add_transit(c, x, {ams});
  g.add_peering(x, p, false, {ams});
  const std::vector<OriginAttachment> origins = {
      attach(SiteId{0}, ams, c),
      attach(SiteId{1}, ams, p),
  };

  DeltaSolver solver(g, kCdn, 1);
  solver.prime(0, origins, kSeed);
  ASSERT_TRUE(g.set_link_state(c, x, false));
  const LinkDelta down{c, x, false};
  const auto out = solver.resolve(0, origins, {}, {&down, 1});
  expect_outcomes_equal(g, out, solve_anycast(g, kCdn, origins, kSeed), "peer fallback");
  ASSERT_NE(out.route_for(x), nullptr);
  EXPECT_EQ(out.route_for(x)->origin_site, SiteId{1});
  EXPECT_EQ(out.route_for(x)->cls, RouteClass::PeerPublic);
}

TEST(DiffOriginChanges, WithdrawalsThenAnnouncementsInOrder) {
  const CityId ams = city("AMS");
  const CityId fra = city("FRA");
  const std::vector<OriginAttachment> before = {
      attach(SiteId{0}, ams, make_asn(10)),
      attach(SiteId{1}, fra, make_asn(11)),
      attach(SiteId{2}, ams, make_asn(12)),
  };
  const std::vector<OriginAttachment> after = {
      attach(SiteId{1}, fra, make_asn(11)),
      attach(SiteId{3}, fra, make_asn(13)),
      attach(SiteId{4}, ams, make_asn(14)),
  };
  const auto changes = diff_origin_changes(before, after);
  ASSERT_EQ(changes.size(), 4u);
  EXPECT_FALSE(changes[0].announce);
  EXPECT_EQ(changes[0].origin.site, SiteId{0});
  EXPECT_FALSE(changes[1].announce);
  EXPECT_EQ(changes[1].origin.site, SiteId{2});
  EXPECT_TRUE(changes[2].announce);
  EXPECT_EQ(changes[2].origin.site, SiteId{3});
  EXPECT_TRUE(changes[3].announce);
  EXPECT_EQ(changes[3].origin.site, SiteId{4});

  EXPECT_TRUE(diff_origin_changes(before, before).empty());
}

}  // namespace
}  // namespace ranycast::bgp
