#include "ranycast/bgp/solver.hpp"

#include <gtest/gtest.h>

#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/topo/generator.hpp"

namespace ranycast::bgp {
namespace {

using topo::AsKind;
using topo::Graph;
using topo::Rel;

CityId city(const char* iata) {
  return *geo::Gazetteer::world().find_by_iata(iata);
}

constexpr Asn kCdn = make_asn(65000);

OriginAttachment attach(SiteId site, CityId c, Asn neighbor,
                        Rel rel = Rel::Customer) {
  return OriginAttachment{site, c, neighbor, rel, true};
}

TEST(Solver, SingleOriginReachesWholeGraph) {
  Graph g;
  const CityId ams = city("AMS");
  const Asn provider = g.add_as(AsKind::Transit, ams, {ams});
  const Asn stub = g.add_as(AsKind::Stub, ams, {ams});
  g.add_transit(stub, provider, {ams});

  const OriginAttachment o = attach(SiteId{0}, ams, provider);
  const auto outcome = solve_anycast(g, kCdn, {&o, 1}, 1);
  EXPECT_EQ(outcome.reachable_count(), 2u);
  ASSERT_NE(outcome.route_for(stub), nullptr);
  EXPECT_EQ(outcome.route_for(stub)->origin_site, SiteId{0});
  // The stub learns the route from its provider.
  EXPECT_EQ(outcome.route_for(stub)->cls, RouteClass::Provider);
  // The provider holds a customer route (the CDN is its customer).
  EXPECT_EQ(outcome.route_for(provider)->cls, RouteClass::Customer);
}

TEST(Solver, CustomerRoutePreferredOverPeerRoute) {
  Graph g;
  const CityId ams = city("AMS");
  // X has: a customer C announcing the prefix (via CDN), and a peer P also
  // announcing it. X must pick the customer route even if both are 1 hop.
  const Asn x = g.add_as(AsKind::Transit, ams, {ams});
  const Asn c = g.add_as(AsKind::Transit, ams, {ams});
  const Asn p = g.add_as(AsKind::Transit, ams, {ams});
  g.add_transit(c, x, {ams});
  g.add_peering(x, p, false, {ams});

  const OriginAttachment origins[] = {
      attach(SiteId{0}, ams, c),  // via customer path
      attach(SiteId{1}, ams, p),  // via peer path
  };
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  ASSERT_NE(outcome.route_for(x), nullptr);
  EXPECT_EQ(outcome.route_for(x)->origin_site, SiteId{0});
  EXPECT_EQ(outcome.route_for(x)->cls, RouteClass::Customer);
}

TEST(Solver, PublicPeerPreferredOverRouteServerPeer) {
  Graph g;
  const CityId fra = city("FRA");
  const Asn x = g.add_as(AsKind::Transit, fra, {fra});
  const Asn pub = g.add_as(AsKind::Transit, fra, {fra});
  const Asn rs = g.add_as(AsKind::Transit, fra, {fra});
  g.add_peering(x, pub, false, {fra});
  g.add_peering(x, rs, true, {fra});
  // Both peers have customer routes to different sites (same length).
  const Asn cust_pub = g.add_as(AsKind::Stub, fra, {fra});
  const Asn cust_rs = g.add_as(AsKind::Stub, fra, {fra});
  g.add_transit(cust_pub, pub, {fra});
  g.add_transit(cust_rs, rs, {fra});

  const OriginAttachment origins[] = {
      attach(SiteId{0}, fra, cust_pub),
      attach(SiteId{1}, fra, cust_rs),
  };
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  ASSERT_NE(outcome.route_for(x), nullptr);
  EXPECT_EQ(outcome.route_for(x)->origin_site, SiteId{0});
  EXPECT_EQ(outcome.route_for(x)->cls, RouteClass::PeerPublic);
}

TEST(Solver, ShorterPathWinsWithinClass) {
  Graph g;
  const CityId lhr = city("LHR");
  // Chain: origin neighbor A -> B -> X, plus direct origin neighbor D -> X.
  const Asn x = g.add_as(AsKind::Tier1, lhr, {lhr});
  const Asn a = g.add_as(AsKind::Transit, lhr, {lhr});
  const Asn b = g.add_as(AsKind::Transit, lhr, {lhr});
  const Asn d = g.add_as(AsKind::Transit, lhr, {lhr});
  g.add_transit(a, b, {lhr});
  g.add_transit(b, x, {lhr});
  g.add_transit(d, x, {lhr});

  const OriginAttachment origins[] = {
      attach(SiteId{0}, lhr, a),  // path to X: a,b -> length 3
      attach(SiteId{1}, lhr, d),  // path to X: d -> length 2
  };
  const auto outcome = solve_anycast(g, kCdn, origins, 1);
  ASSERT_NE(outcome.route_for(x), nullptr);
  EXPECT_EQ(outcome.route_for(x)->origin_site, SiteId{1});
  EXPECT_EQ(outcome.route_for(x)->path_length(), 2u);
}

TEST(Solver, ValleyFreeNoPeerRouteReexportedToPeer) {
  Graph g;
  const CityId ams = city("AMS");
  // origin peer -> P1; P1 peers with P2: P2 must NOT hear the route via P1.
  const Asn p1 = g.add_as(AsKind::Transit, ams, {ams});
  const Asn p2 = g.add_as(AsKind::Transit, ams, {ams});
  g.add_peering(p1, p2, false, {ams});

  const OriginAttachment o = attach(SiteId{0}, ams, p1, Rel::PeerPublic);
  const auto outcome = solve_anycast(g, kCdn, {&o, 1}, 1);
  ASSERT_NE(outcome.route_for(p1), nullptr);
  EXPECT_EQ(outcome.route_for(p2), nullptr);  // valley-free: not exported
}

TEST(Solver, PeerRouteExportedToCustomers) {
  Graph g;
  const CityId ams = city("AMS");
  const Asn p1 = g.add_as(AsKind::Transit, ams, {ams});
  const Asn cust = g.add_as(AsKind::Stub, ams, {ams});
  g.add_transit(cust, p1, {ams});

  const OriginAttachment o = attach(SiteId{0}, ams, p1, Rel::PeerPublic);
  const auto outcome = solve_anycast(g, kCdn, {&o, 1}, 1);
  ASSERT_NE(outcome.route_for(cust), nullptr);
  EXPECT_EQ(outcome.route_for(cust)->cls, RouteClass::Provider);
}

TEST(Solver, GeoPathTracksInterconnects) {
  Graph g;
  const CityId sin = city("SIN");
  const CityId nrt = city("NRT");
  const CityId lax = city("LAX");
  const Asn a = g.add_as(AsKind::Transit, sin, {sin, nrt});
  const Asn b = g.add_as(AsKind::Transit, lax, {nrt, lax});
  g.add_transit(a, b, {nrt});

  const OriginAttachment o = attach(SiteId{0}, sin, a);
  const auto outcome = solve_anycast(g, kCdn, {&o, 1}, 1);
  const Route* r = outcome.route_for(b);
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->geo_path.size(), 2u);
  EXPECT_EQ(r->geo_path[0], sin);  // site city
  EXPECT_EQ(r->geo_path[1], nrt);  // interconnect a-b
  ASSERT_EQ(r->as_path.size(), 2u);
  EXPECT_EQ(r->as_path[0], kCdn);
  EXPECT_EQ(r->as_path[1], a);
}

TEST(Solver, NearestExitPicksClosestInterconnect) {
  Graph g;
  const CityId sin = city("SIN");
  const CityId nrt = city("NRT");
  const CityId lhr = city("LHR");
  const Asn a = g.add_as(AsKind::Tier1, sin, {sin, nrt, lhr});
  const Asn b = g.add_as(AsKind::Tier1, nrt, {nrt, lhr});
  // Two interconnection options between a and b.
  g.add_peering(a, b, false, {nrt, lhr});
  const Asn cust = g.add_as(AsKind::Stub, nrt, {nrt});
  g.add_transit(cust, b, {nrt});

  // Origin via a customer of a, so a exports to peer b.
  const Asn seed_cust = g.add_as(AsKind::Transit, sin, {sin});
  g.add_transit(seed_cust, a, {sin});
  const OriginAttachment o = attach(SiteId{0}, sin, seed_cust);
  const auto outcome = solve_anycast(g, kCdn, {&o, 1}, 1);
  const Route* r = outcome.route_for(b);
  ASSERT_NE(r, nullptr);
  // a received the route at SIN; its nearest interconnect with b is NRT.
  EXPECT_EQ(r->geo_path.back(), nrt);
}

TEST(Solver, DeterministicAcrossRuns) {
  const topo::GeneratorParams params{.seed = 5, .stub_count = 300};
  const topo::World world = generate_world(params);
  std::vector<Asn> transits;
  for (const auto& n : world.graph.nodes()) {
    if (n.kind == AsKind::Transit) transits.push_back(n.asn);
    if (transits.size() == 4) break;
  }
  std::vector<OriginAttachment> origins;
  for (std::size_t i = 0; i < transits.size(); ++i) {
    origins.push_back(attach(SiteId{static_cast<std::uint16_t>(i)},
                             world.graph.find(transits[i])->home_city, transits[i]));
  }
  const auto o1 = solve_anycast(world.graph, kCdn, origins, 99);
  const auto o2 = solve_anycast(world.graph, kCdn, origins, 99);
  for (const auto& n : world.graph.nodes()) {
    const Route* r1 = o1.route_for(n.asn);
    const Route* r2 = o2.route_for(n.asn);
    ASSERT_EQ(r1 == nullptr, r2 == nullptr);
    if (r1 != nullptr) {
      EXPECT_EQ(r1->origin_site, r2->origin_site);
      EXPECT_EQ(r1->as_path, r2->as_path);
    }
  }
}

class SolverPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverPropertySweep, RoutesAreValleyFreeAndLoopFree) {
  topo::GeneratorParams params;
  params.seed = GetParam();
  params.stub_count = 300;
  const topo::World world = generate_world(params);
  // Originate from a few transit ASes spread over the graph.
  std::vector<OriginAttachment> origins;
  std::uint16_t site = 0;
  for (const auto& n : world.graph.nodes()) {
    if (n.kind != AsKind::Transit) continue;
    if (value(n.asn) % 37 != 0) continue;
    origins.push_back(attach(SiteId{site++}, n.home_city, n.asn));
    if (origins.size() == 6) break;
  }
  ASSERT_GE(origins.size(), 2u);
  const auto outcome = solve_anycast(world.graph, kCdn, origins, GetParam());

  for (const auto& n : world.graph.nodes()) {
    const Route* r = outcome.route_for(n.asn);
    if (r == nullptr) continue;
    // Loop-free AS path.
    std::set<std::uint32_t> seen;
    for (Asn a : r->as_path) {
      EXPECT_TRUE(seen.insert(value(a)).second) << "AS path loop";
    }
    EXPECT_EQ(seen.count(value(n.asn)), 0u) << "holder in its own path";
    // geo_path and as_path lengths always match (Route invariant).
    EXPECT_EQ(r->geo_path.size(), r->as_path.size());
    // Valley-free: once the path descends (provider->customer or peer), it
    // cannot climb again. We verify the holder's class is consistent: a
    // customer-class route must consist solely of customer hops, which we
    // check by confirming every AS on the path would also select it as a
    // customer route - approximated here by checking the path is made of
    // existing adjacent edges.
    // as_path[0] is the CDN's ASN (not a graph node); every subsequent pair
    // must be an existing adjacency, ending at the holder.
    const auto& g = world.graph;
    for (std::size_t i = 2; i < r->as_path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(r->as_path[i - 1], r->as_path[i]))
          << "non-adjacent ASes in path: " << value(r->as_path[i - 1]) << ","
          << value(r->as_path[i]);
    }
    if (r->as_path.size() > 1) {
      EXPECT_TRUE(g.has_edge(r->as_path.back(), n.asn));
    }
  }
}

TEST_P(SolverPropertySweep, AnycastPrefixGloballyReachable) {
  // Paper §4.5: regional prefixes are globally reachable. In our model this
  // holds as long as the prefix is originated via at least one transit
  // customer link (the route climbs to the tier-1 clique and descends
  // everywhere).
  topo::GeneratorParams params;
  params.seed = GetParam();
  params.stub_count = 300;
  const topo::World world = generate_world(params);
  std::vector<OriginAttachment> origins;
  for (const auto& n : world.graph.nodes()) {
    if (n.kind == AsKind::Transit) {
      origins.push_back(attach(SiteId{0}, n.home_city, n.asn));
      break;
    }
  }
  const auto outcome = solve_anycast(world.graph, kCdn, origins, GetParam());
  EXPECT_EQ(outcome.reachable_count(), world.graph.nodes().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertySweep, ::testing::Values(1, 7, 21, 42, 777));

}  // namespace
}  // namespace ranycast::bgp
