// Reproductions of the paper's two case studies as micro-topologies:
// Fig. 1 (customer-route preference drags a D.C. probe to Singapore) and
// Fig. 7 (public-peer preference drags a Belarusian probe to Singapore).
#include <gtest/gtest.h>

#include "ranycast/bgp/path_metrics.hpp"
#include "ranycast/bgp/solver.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::bgp {
namespace {

using topo::AsKind;
using topo::Graph;
using topo::Rel;

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

constexpr Asn kCdn = make_asn(65000);
constexpr SiteId kAshburn{0};
constexpr SiteId kSingapore{1};
constexpr SiteId kFrankfurt{2};
constexpr SiteId kAmsterdam{3};

/// Fig. 1: probe in Washington D.C. (AS 10745-like) buys transit from Zayo.
/// Zayo peers with Level 3 (which hosts the Ashburn site as a customer...
/// actually the site connects to Level 3) and has SingTel as a *customer*;
/// SingTel hosts the Singapore site. Under global anycast Zayo prefers the
/// customer route -> Singapore. Under regional anycast the Singapore site
/// announces a different prefix, so the probe reaches Ashburn.
struct Fig1Topology {
  Graph g;
  Asn zayo, level3, singtel, probe_as;

  Fig1Topology() {
    const CityId iad = city("IAD");
    const CityId sin = city("SIN");
    zayo = g.add_as(AsKind::Tier1, iad, {iad, sin});
    level3 = g.add_as(AsKind::Tier1, iad, {iad, sin});
    singtel = g.add_as(AsKind::Transit, sin, {sin});
    probe_as = g.add_as(AsKind::Stub, iad, {iad});
    g.add_peering(zayo, level3, false, {iad});
    g.add_transit(singtel, zayo, {sin});   // SingTel is Zayo's customer
    g.add_transit(probe_as, zayo, {iad});  // probe buys transit from Zayo
  }

  OriginAttachment ashburn() const {
    return OriginAttachment{kAshburn, city("IAD"), level3, Rel::Customer, true};
  }
  OriginAttachment singapore() const {
    return OriginAttachment{kSingapore, city("SIN"), singtel, Rel::Customer, true};
  }
};

TEST(Fig1CaseStudy, GlobalAnycastPrefersRemoteCustomerRoute) {
  Fig1Topology t;
  const OriginAttachment origins[] = {t.ashburn(), t.singapore()};
  const auto outcome = solve_anycast(t.g, kCdn, origins, 1);
  const Route* r = outcome.route_for(t.probe_as);
  ASSERT_NE(r, nullptr);
  // Zayo prefers its customer SingTel's announcement over its peer Level 3's,
  // so the D.C. probe is dragged to the Singapore site.
  EXPECT_EQ(r->origin_site, kSingapore);
}

TEST(Fig1CaseStudy, RegionalAnycastKeepsProbeLocal) {
  Fig1Topology t;
  // The US regional prefix is announced only from Ashburn.
  const OriginAttachment origins[] = {t.ashburn()};
  const auto outcome = solve_anycast(t.g, kCdn, origins, 1);
  const Route* r = outcome.route_for(t.probe_as);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->origin_site, kAshburn);
}

TEST(Fig1CaseStudy, LatencyGapMatchesGeography) {
  Fig1Topology t;
  const OriginAttachment global[] = {t.ashburn(), t.singapore()};
  const OriginAttachment regional[] = {t.ashburn()};
  const LatencyModel latency;
  const CityId probe_city = city("IAD");

  const auto global_outcome = solve_anycast(t.g, kCdn, global, 1);
  const auto regional_outcome = solve_anycast(t.g, kCdn, regional, 1);
  const Rtt global_rtt =
      latency.path_rtt(*global_outcome.route_for(t.probe_as), probe_city, t.probe_as);
  const Rtt regional_rtt =
      latency.path_rtt(*regional_outcome.route_for(t.probe_as), probe_city, t.probe_as);
  // Paper: 252 ms vs 2 ms. Exact numbers depend on the latency model; the
  // two-orders-of-magnitude shape must hold.
  EXPECT_GT(global_rtt.ms, 150.0);
  EXPECT_LT(regional_rtt.ms, 15.0);
}

/// Fig. 7: the Belarusian probe's AS (6697-like) publicly peers with Zayo at
/// DE-CIX and reaches Imperva only via the DE-CIX route server. Zayo prefers
/// its customer SingTel's route to the global prefix; AS 6697 prefers the
/// public peer (Zayo) over the route-server peer (Imperva's FRA site), so
/// globally it lands in Singapore. Regionally, FRA's prefix differs from
/// Singapore's, and the probe reaches Frankfurt.
struct Fig7Topology {
  Graph g;
  Asn zayo, twelve99, singtel, probe_as;

  Fig7Topology() {
    const CityId fra = city("FRA");
    const CityId ams = city("AMS");
    const CityId sin = city("SIN");
    const CityId msq = city("MSQ");
    zayo = g.add_as(AsKind::Tier1, fra, {fra, sin, msq});
    twelve99 = g.add_as(AsKind::Tier1, ams, {ams, fra});
    singtel = g.add_as(AsKind::Transit, sin, {sin});
    probe_as = g.add_as(AsKind::Stub, msq, {msq, fra});
    g.add_transit(singtel, zayo, {sin});
    g.add_peering(zayo, twelve99, false, {fra});
    g.add_peering(probe_as, zayo, false, {fra});  // public peering at DE-CIX
  }

  /// Imperva's FRA site peers with AS 6697 via the DE-CIX route server.
  OriginAttachment fra_route_server() const {
    return OriginAttachment{kFrankfurt, city("FRA"), probe_as, Rel::PeerRouteServer, true};
  }
  OriginAttachment ams_site() const {
    return OriginAttachment{kAmsterdam, city("AMS"), twelve99, Rel::Customer, true};
  }
  OriginAttachment singapore() const {
    return OriginAttachment{kSingapore, city("SIN"), singtel, Rel::Customer, true};
  }
};

TEST(Fig7CaseStudy, GlobalAnycastPrefersPublicPeerToRemoteSite) {
  Fig7Topology t;
  const OriginAttachment origins[] = {t.fra_route_server(), t.ams_site(), t.singapore()};
  const auto outcome = solve_anycast(t.g, kCdn, origins, 1);
  const Route* r = outcome.route_for(t.probe_as);
  ASSERT_NE(r, nullptr);
  // Public peering with Zayo (which prefers customer SingTel) beats the
  // route-server session with the local FRA site.
  EXPECT_EQ(r->origin_site, kSingapore);
  EXPECT_EQ(r->cls, RouteClass::PeerPublic);
}

TEST(Fig7CaseStudy, RegionalAnycastReachesFrankfurt) {
  Fig7Topology t;
  // EMEA regional prefix: announced from FRA (route server) and AMS only.
  const OriginAttachment origins[] = {t.fra_route_server(), t.ams_site()};
  const auto outcome = solve_anycast(t.g, kCdn, origins, 1);
  const Route* r = outcome.route_for(t.probe_as);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->origin_site, kFrankfurt);
  EXPECT_EQ(r->cls, RouteClass::PeerRouteServer);
}

}  // namespace
}  // namespace ranycast::bgp
