#include "ranycast/geo/gazetteer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ranycast::geo {
namespace {

const Gazetteer& gaz() { return Gazetteer::world(); }

TEST(Gazetteer, HasSubstantialWorldModel) {
  EXPECT_GE(gaz().cities().size(), 140u);
  EXPECT_GE(gaz().countries().size(), 70u);
}

TEST(Gazetteer, IataCodesAreUnique) {
  std::set<std::string_view> codes;
  for (const auto& c : gaz().cities()) {
    EXPECT_TRUE(codes.insert(c.iata).second) << "duplicate IATA " << c.iata;
    EXPECT_EQ(c.iata.size(), 3u);
  }
}

TEST(Gazetteer, CountryCodesAreUnique) {
  std::set<std::string_view> codes;
  for (const auto& c : gaz().countries()) {
    EXPECT_TRUE(codes.insert(c.iso2).second) << "duplicate country " << c.iso2;
    EXPECT_EQ(c.iso2.size(), 2u);
  }
}

TEST(Gazetteer, EveryCityHasValidCountry) {
  for (const auto& c : gaz().cities()) {
    ASSERT_LT(c.country, gaz().countries().size());
  }
}

TEST(Gazetteer, CoordinatesInRange) {
  for (const auto& c : gaz().cities()) {
    EXPECT_GE(c.location.lat_deg, -90.0);
    EXPECT_LE(c.location.lat_deg, 90.0);
    EXPECT_GE(c.location.lon_deg, -180.0);
    EXPECT_LE(c.location.lon_deg, 180.0);
  }
}

TEST(Gazetteer, FindByIata) {
  const auto ams = gaz().find_by_iata("AMS");
  ASSERT_TRUE(ams.has_value());
  EXPECT_EQ(gaz().city(*ams).name, "Amsterdam");
  EXPECT_EQ(gaz().country_code(*ams), "NL");
  EXPECT_FALSE(gaz().find_by_iata("ZZZ").has_value());
}

TEST(Gazetteer, AreaMappingFollowsPaper) {
  // EMEA = Europe + Middle East + Africa.
  EXPECT_EQ(area_of(Continent::Europe), Area::EMEA);
  EXPECT_EQ(area_of(Continent::MiddleEast), Area::EMEA);
  EXPECT_EQ(area_of(Continent::Africa), Area::EMEA);
  // NA excludes Central America.
  EXPECT_EQ(area_of(Continent::NorthAmerica), Area::NA);
  EXPECT_EQ(area_of(Continent::CentralAmerica), Area::LatAm);
  EXPECT_EQ(area_of(Continent::SouthAmerica), Area::LatAm);
  EXPECT_EQ(area_of(Continent::Asia), Area::APAC);
  EXPECT_EQ(area_of(Continent::Oceania), Area::APAC);
}

TEST(Gazetteer, SpecificCityAreas) {
  EXPECT_EQ(gaz().area_of_city(*gaz().find_by_iata("SVO")), Area::EMEA);  // Moscow
  EXPECT_EQ(gaz().area_of_city(*gaz().find_by_iata("MEX")), Area::LatAm); // Mexico City
  EXPECT_EQ(gaz().area_of_city(*gaz().find_by_iata("YYZ")), Area::NA);    // Toronto
  EXPECT_EQ(gaz().area_of_city(*gaz().find_by_iata("SYD")), Area::APAC);  // Sydney
  EXPECT_EQ(gaz().area_of_city(*gaz().find_by_iata("DXB")), Area::EMEA);  // Dubai
  EXPECT_EQ(gaz().area_of_city(*gaz().find_by_iata("JNB")), Area::EMEA);  // Johannesburg
}

TEST(Gazetteer, AllAreasPopulated) {
  for (std::size_t a = 0; a < kAreaCount; ++a) {
    EXPECT_GE(gaz().cities_in_area(static_cast<Area>(a)).size(), 7u)
        << "area " << to_string(static_cast<Area>(a));
  }
}

TEST(Gazetteer, CitiesInCountry) {
  const auto us = gaz().cities_in_country("US");
  EXPECT_GE(us.size(), 20u);
  const auto none = gaz().cities_in_country("XX");
  EXPECT_TRUE(none.empty());
}

TEST(Gazetteer, NearestCityIsSelfForCityPoints) {
  for (const char* iata : {"AMS", "SYD", "GRU", "IAD", "SIN"}) {
    const auto id = gaz().find_by_iata(iata);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(gaz().nearest_city(gaz().city(*id).location), *id);
  }
}

TEST(Gazetteer, NearestCityForArbitraryPoint) {
  // A point in the Dutch countryside is closest to Amsterdam.
  EXPECT_EQ(gaz().nearest_city(GeoPoint{52.2, 5.1}), *gaz().find_by_iata("AMS"));
}

TEST(Gazetteer, DistanceIsSymmetricAndPositive) {
  const auto a = *gaz().find_by_iata("LHR");
  const auto b = *gaz().find_by_iata("NRT");
  EXPECT_GT(gaz().distance(a, b).km, 9000.0);
  EXPECT_DOUBLE_EQ(gaz().distance(a, b).km, gaz().distance(b, a).km);
}

}  // namespace
}  // namespace ranycast::geo
