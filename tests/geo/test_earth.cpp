#include "ranycast/geo/earth.hpp"

#include <gtest/gtest.h>

namespace ranycast::geo {
namespace {

constexpr GeoPoint kNewYork{40.64, -73.78};
constexpr GeoPoint kLondon{51.47, -0.45};
constexpr GeoPoint kSydney{-33.95, 151.18};

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(haversine(kLondon, kLondon).km, 0.0);
}

TEST(Haversine, KnownDistances) {
  // JFK-LHR great-circle distance is about 5540 km.
  EXPECT_NEAR(haversine(kNewYork, kLondon).km, 5540.0, 60.0);
  // JFK-SYD is about 16,000 km.
  EXPECT_NEAR(haversine(kNewYork, kSydney).km, 16000.0, 200.0);
}

TEST(Haversine, Symmetric) {
  EXPECT_DOUBLE_EQ(haversine(kNewYork, kLondon).km, haversine(kLondon, kNewYork).km);
}

TEST(Haversine, AntipodalIsBounded) {
  // No two points can be farther than half the circumference (~20015 km).
  const GeoPoint a{0, 0}, b{0, 180};
  EXPECT_NEAR(haversine(a, b).km, 20015.0, 30.0);
}

TEST(Haversine, CrossesAntimeridianCorrectly) {
  // 10 degrees of longitude apart across the date line at the equator.
  const GeoPoint a{0, 175}, b{0, -175};
  EXPECT_NEAR(haversine(a, b).km, haversine(GeoPoint{0, 0}, GeoPoint{0, 10}).km, 1.0);
}

TEST(RttLowerBound, PaperConstant) {
  // 100 km per 1 ms RTT.
  EXPECT_DOUBLE_EQ(rtt_lower_bound(Km{100.0}).ms, 1.0);
  EXPECT_DOUBLE_EQ(rtt_lower_bound(Km{5540.0}).ms, 55.4);
}

TEST(MaxDistance, InvertsRttLowerBound) {
  const Km d{1234.5};
  EXPECT_NEAR(max_distance(rtt_lower_bound(d)).km, d.km, 1e-9);
}

class HaversineTriangle : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(HaversineTriangle, TriangleInequalityViaLondon) {
  const auto [lat, lon] = GetParam();
  const GeoPoint p{lat, lon};
  const double direct = haversine(kNewYork, p).km;
  const double via = haversine(kNewYork, kLondon).km + haversine(kLondon, p).km;
  EXPECT_LE(direct, via + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HaversineTriangle,
                         ::testing::Values(std::tuple{48.0, 2.0}, std::tuple{-33.0, 151.0},
                                           std::tuple{35.0, 139.0}, std::tuple{-23.0, -46.0},
                                           std::tuple{0.0, 0.0}, std::tuple{89.0, 10.0},
                                           std::tuple{-89.0, -170.0}));

}  // namespace
}  // namespace ranycast::geo
