#include "ranycast/resilience/failover.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::resilience {
namespace {

class FailoverTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 800;
    config.census.total_probes = 2500;
    return lab::Lab::create(config);
  }

  FailoverTest() : lab_(make_lab()), im6_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  /// A site that actually serves probes (so the experiment has subjects).
  SiteId busiest_site() {
    std::map<std::uint16_t, int> counts;
    for (const atlas::Probe* p : lab_.census().retained()) {
      const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
      const bgp::Route* r = im6_->route_for(p->asn, answer.region);
      if (r != nullptr) counts[value(r->origin_site)]++;
    }
    std::uint16_t best = 0;
    int best_count = -1;
    for (const auto& [site, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best = site;
      }
    }
    return SiteId{best};
  }

  lab::Lab lab_;
  const lab::DeploymentHandle* im6_;
};

TEST_F(FailoverTest, WithdrawSiteRemovesItsAnnouncements) {
  const SiteId victim{0};
  const auto dep = withdraw_site(im6_->deployment, victim, lab_.registry());
  EXPECT_TRUE(dep.site(victim).regions.empty());
  // Other sites keep announcing.
  std::size_t announcing = 0;
  for (const cdn::Site& s : dep.sites()) {
    if (!s.regions.empty()) ++announcing;
  }
  EXPECT_EQ(announcing, dep.sites().size() - 1);
}

TEST_F(FailoverTest, WithdrawnDeploymentUsesFreshPrefixes) {
  const auto dep = withdraw_site(im6_->deployment, SiteId{0}, lab_.registry());
  for (std::size_t r = 0; r < dep.regions().size(); ++r) {
    EXPECT_NE(dep.regions()[r].prefix, im6_->deployment.regions()[r].prefix);
  }
}

TEST_F(FailoverTest, AllAffectedProbesSurviveFailover) {
  // §4.5's robustness claim: regional prefixes stay reachable, so a site
  // failure reroutes rather than blackholes (the US region has many sites).
  const SiteId victim = busiest_site();
  const auto report = fail_site(lab_, *im6_, victim);
  ASSERT_GT(report.affected_probes, 10u);
  EXPECT_EQ(report.still_served, report.affected_probes);
  EXPECT_DOUBLE_EQ(report.survival_rate(), 1.0);
}

TEST_F(FailoverTest, FailoverCostsLatencyButStaysBounded) {
  const SiteId victim = busiest_site();
  const auto report = fail_site(lab_, *im6_, victim);
  // Losing the best site cannot improve the median for its own catchment.
  EXPECT_GE(report.after_p50_ms + 1.0, report.before_p50_ms);
  // Regional failover is bounded: the spill stays inside the regional
  // announcement set, not on another continent.
  EXPECT_LT(report.after_p90_ms, 250.0);
}

TEST_F(FailoverTest, RegionalFailoverMostlyStaysInArea) {
  const SiteId victim = busiest_site();
  const auto report = fail_site(lab_, *im6_, victim);
  ASSERT_GT(report.still_served, 0u);
  EXPECT_GT(static_cast<double>(report.failover_in_region) /
                static_cast<double>(report.still_served),
            0.6);
}

TEST_F(FailoverTest, NobodyServedByOtherSitesIsAffected) {
  const auto report = fail_site(lab_, *im6_, busiest_site());
  const auto retained = lab_.census().retained();
  EXPECT_LT(report.affected_probes, retained.size());
}

TEST_F(FailoverTest, OneSiteRegionSurvivesOnlyViaOtherRegions) {
  // §4.5's edge case: a region announced by exactly one site. Withdrawing
  // that site removes the regional prefix from the routing system entirely —
  // there is no in-region failover. The service survives anyway because the
  // other regions' prefixes stay globally announced; the clients land
  // cross-region.
  cdn::DeploymentSpec spec;
  spec.name = "solo-latam";
  spec.asn = make_asn(64599);
  spec.region_names = {"latam", "rest"};
  spec.sites.push_back(cdn::SiteSpec{"GRU", {0}});  // the region's ONLY site
  for (const char* iata : {"AMS", "FRA", "LHR", "JFK", "ORD", "LAX", "NRT", "SIN"}) {
    spec.sites.push_back(cdn::SiteSpec{iata, {1}});
  }
  // geo::Area order: EMEA, NA, LatAm, APAC — LatAm clients to region 0.
  spec.area_defaults = {1, 1, 0, 1};
  const auto& handle = lab_.add_deployment(spec);

  const auto report = fail_site(lab_, handle, SiteId{0});
  ASSERT_GT(report.affected_probes, 0u);
  // Everyone survives, but nobody fails over "within the region": the whole
  // regional prefix is gone, so every survivor is a cross-region client.
  EXPECT_EQ(report.still_served, report.affected_probes);
  EXPECT_DOUBLE_EQ(report.survival_rate(), 1.0);
  EXPECT_EQ(report.failover_in_region, 0u);
  EXPECT_EQ(report.cross_region, report.still_served);
  // The cross-region detour costs real latency.
  EXPECT_GE(report.after_p50_ms, report.before_p50_ms);
}

}  // namespace
}  // namespace ranycast::resilience
