#include "ranycast/resilience/stability.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::resilience {
namespace {

class StabilityTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 600;
    config.census.total_probes = 1200;
    return lab::Lab::create(config);
  }

  StabilityTest() : lab_(make_lab()), im6_(&lab_.add_deployment(cdn::catalog::imperva6())) {}

  lab::Lab lab_;
  const lab::DeploymentHandle* im6_;
};

TEST_F(StabilityTest, MostCatchmentsArePinnedByPolicy) {
  // The paper observed identical site partitions weekly for two months; in
  // the model, most catchments must be invariant to the arbitrary tie-break
  // (they are decided by local-pref, path length and geography). The CA
  // region (2 sites, heavy tie-breaking) is the stress case; the clear
  // majority must still be pinned.
  const auto report = catchment_stability(lab_, im6_->deployment, 0, 5);
  EXPECT_EQ(report.trials, 5u);
  EXPECT_GT(report.ases_observed, 500u);
  EXPECT_GT(report.stable_fraction(), 0.65);
  EXPECT_GT(report.mean_pairwise_agreement, report.stable_fraction());
}

TEST_F(StabilityTest, SomeCatchmentsHangOnTieBreaks) {
  // ... but not all: the paper's "BGP route-selection uncertainty" (§5.3)
  // must exist, or identical-path RTT differences would be inexplicable.
  const auto report = catchment_stability(lab_, im6_->deployment, 1, 5);
  EXPECT_LT(report.stable_fraction(), 1.0);
}

TEST_F(StabilityTest, SingleTrialIsTriviallyStable) {
  const auto report = catchment_stability(lab_, im6_->deployment, 0, 1);
  EXPECT_DOUBLE_EQ(report.stable_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(report.mean_pairwise_agreement, 1.0);
}

TEST_F(StabilityTest, DeterministicAcrossCalls) {
  const auto a = catchment_stability(lab_, im6_->deployment, 0, 3);
  const auto b = catchment_stability(lab_, im6_->deployment, 0, 3);
  EXPECT_EQ(a.ases_stable, b.ases_stable);
  EXPECT_DOUBLE_EQ(a.mean_pairwise_agreement, b.mean_pairwise_agreement);
}

}  // namespace
}  // namespace ranycast::resilience
