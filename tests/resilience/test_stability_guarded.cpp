// Guarded stability campaigns: trial-by-trial supervision must not change
// the science — a complete guarded run equals the plain parallel one, a
// killed-and-resumed campaign equals an uninterrupted campaign, and partial
// campaigns report exactly how many trials they measured.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/resilience/stability.hpp"

namespace ranycast::resilience {
namespace {

namespace fs = std::filesystem;

lab::LabConfig tiny_config(std::uint64_t seed = 2023) {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = seed;
  return config;
}

std::string checkpoint_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() / "ranycast_stability_resume";
  fs::create_directories(dir);
  return (dir / (tag + ".ck")).string();
}

bool reports_equal(const StabilityReport& a, const StabilityReport& b) {
  return a.trials == b.trials && a.ases_observed == b.ases_observed &&
         a.ases_stable == b.ases_stable &&
         a.mean_pairwise_agreement == b.mean_pairwise_agreement;
}

TEST(StabilityGuarded, CompleteRunMatchesPlainParallelRun) {
  constexpr int kTrials = 6;
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const StabilityReport plain =
      catchment_stability(laboratory, im6.deployment, 0, kTrials);

  auto guarded_lab = lab::Lab::create(tiny_config());
  const auto& handle = guarded_lab.add_deployment(cdn::catalog::imperva6());
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  auto guarded = catchment_stability_guarded(guarded_lab, handle.deployment, 0, kTrials,
                                             supervisor, policy);
  ASSERT_TRUE(guarded.has_value()) << guarded.error().to_string();
  EXPECT_TRUE(guarded->sweep.complete());
  EXPECT_TRUE(reports_equal(guarded->report, plain));
}

TEST(StabilityGuarded, ResumeMatchesUninterruptedAtEveryAbortPoint) {
  constexpr int kTrials = 6;
  auto baseline_lab = lab::Lab::create(tiny_config());
  const auto& baseline_handle = baseline_lab.add_deployment(cdn::catalog::imperva6());
  const StabilityReport expected =
      catchment_stability(baseline_lab, baseline_handle.deployment, 0, kTrials);

  for (const std::size_t abort_at :
       {std::size_t{1}, std::size_t{kTrials / 2}, std::size_t{kTrials - 1}}) {
    const std::string ck = checkpoint_path("abort_" + std::to_string(abort_at));
    fs::remove(ck);
    {
      auto laboratory = lab::Lab::create(tiny_config());
      const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
      guard::Supervisor supervisor;
      guard::CheckpointPolicy policy;
      policy.path = ck;
      policy.after_step = [&](std::size_t done, std::size_t) {
        if (done == abort_at) supervisor.cancel();
      };
      auto first = catchment_stability_guarded(laboratory, handle.deployment, 0, kTrials,
                                               supervisor, policy);
      ASSERT_TRUE(first.has_value()) << first.error().to_string();
      EXPECT_EQ(first->sweep.completed, abort_at);
      EXPECT_EQ(first->report.trials, abort_at) << "partial report covers what ran";
    }
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.resume = true;
    auto second = catchment_stability_guarded(laboratory, handle.deployment, 0, kTrials,
                                              supervisor, policy);
    ASSERT_TRUE(second.has_value()) << second.error().to_string();
    EXPECT_TRUE(second->sweep.resumed);
    EXPECT_EQ(second->sweep.resumed_from, abort_at);
    EXPECT_TRUE(reports_equal(second->report, expected))
        << "aborted after trial " << abort_at;
    fs::remove(ck);
  }
}

TEST(StabilityGuarded, CheckpointBindsRegionAndTrialCount) {
  constexpr int kTrials = 4;
  const std::string ck = checkpoint_path("binding");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(catchment_stability_guarded(laboratory, handle.deployment, 0, kTrials,
                                            supervisor, policy)
                    .has_value());
  }
  // Same config, different trial count: a different campaign.
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = catchment_stability_guarded(laboratory, handle.deployment, 0,
                                             kTrials + 1, supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().kind, guard::GuardErrorKind::FingerprintMismatch);
  fs::remove(ck);
}

}  // namespace
}  // namespace ranycast::resilience
