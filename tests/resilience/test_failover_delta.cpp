// fail_site derives its deployment through lab::add_deployment_derived,
// which reuses the base deployment's primed selection planes when the delta
// path is on. The FailoverReport must not depend on that switch: identical
// labs with delta on and off must produce field-identical reports.
#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/resilience/failover.hpp"

namespace ranycast::resilience {
namespace {

FailoverReport run_fail_site(bool delta, SiteId site) {
  lab::LabConfig config;
  config.world.stub_count = 600;
  config.census.total_probes = 1800;
  config.seed = 2023;
  auto laboratory = lab::Lab::create(config);
  if (delta) {
    bgp::DeltaConfig cfg;
    cfg.enabled = true;
    cfg.verify_every = 1;  // belt and braces: in-engine differential too
    laboratory.set_delta_config(cfg);
  }
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  return fail_site(laboratory, im6, site);
}

TEST(FailoverDelta, ReportIdenticalWithDeltaOnAndOff) {
  for (const std::uint16_t site : {std::uint16_t{0}, std::uint16_t{3}}) {
    SCOPED_TRACE("site " + std::to_string(site));
    const FailoverReport full = run_fail_site(false, SiteId{site});
    const FailoverReport delta = run_fail_site(true, SiteId{site});
    EXPECT_EQ(delta.failed_site, full.failed_site);
    EXPECT_EQ(delta.failed_city, full.failed_city);
    EXPECT_EQ(delta.affected_probes, full.affected_probes);
    EXPECT_EQ(delta.still_served, full.still_served);
    EXPECT_EQ(delta.failover_in_region, full.failover_in_region);
    EXPECT_EQ(delta.cross_region, full.cross_region);
    EXPECT_EQ(delta.before_p50_ms, full.before_p50_ms);
    EXPECT_EQ(delta.after_p50_ms, full.after_p50_ms);
    EXPECT_EQ(delta.before_p90_ms, full.before_p90_ms);
    EXPECT_EQ(delta.after_p90_ms, full.after_p90_ms);
  }
}

}  // namespace
}  // namespace ranycast::resilience
