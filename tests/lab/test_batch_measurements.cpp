// Batch measurement fan-out (dns_lookup_all / ping_all / traceroute_all)
// must answer exactly what the scalar primitives would: slot i equals the
// scalar call for probes[i], including registry-allocated traceroute hop
// addresses — the batch warm prepass must replicate the sequential
// first-touch order bit-for-bit.
#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::lab {
namespace {

LabConfig tiny_config() {
  LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 800;
  config.seed = 77;
  return config;
}

TEST(BatchMeasurements, DnsAndPingMatchScalarCalls) {
  auto laboratory = Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();
  const Ipv4Addr ip = im6.deployment.regions()[0].service_ip;

  const auto answers = laboratory.dns_lookup_all(retained, im6, dns::QueryMode::Ldns);
  const auto rtts = laboratory.ping_all(retained, ip);
  ASSERT_EQ(answers.size(), retained.size());
  ASSERT_EQ(rtts.size(), retained.size());
  for (std::size_t i = 0; i < retained.size(); ++i) {
    const auto scalar_answer = laboratory.dns_lookup(*retained[i], im6, dns::QueryMode::Ldns);
    EXPECT_EQ(answers[i].region, scalar_answer.region);
    EXPECT_EQ(answers[i].address, scalar_answer.address);
    EXPECT_EQ(answers[i].degraded, scalar_answer.degraded);
    const auto scalar_rtt = laboratory.ping(*retained[i], ip);
    ASSERT_EQ(rtts[i].has_value(), scalar_rtt.has_value());
    if (rtts[i]) EXPECT_EQ(rtts[i]->ms, scalar_rtt->ms);
  }
}

TEST(BatchMeasurements, TracerouteMatchesSequentialLoopOnFreshLab) {
  // Two labs with the same config; one runs the scalar loop, the other the
  // batch API. Hop IPs depend on registry first-touch order, so equality
  // here proves the batch warm pass replicates the sequential order.
  auto lab_scalar = Lab::create(tiny_config());
  auto lab_batch = Lab::create(tiny_config());
  const auto& dep_s = lab_scalar.add_deployment(cdn::catalog::imperva6());
  const auto& dep_b = lab_batch.add_deployment(cdn::catalog::imperva6());
  const auto retained_s = lab_scalar.census().retained();
  const auto retained_b = lab_batch.census().retained();
  ASSERT_EQ(retained_s.size(), retained_b.size());
  const Ipv4Addr ip_s = dep_s.deployment.regions()[0].service_ip;
  const Ipv4Addr ip_b = dep_b.deployment.regions()[0].service_ip;
  ASSERT_EQ(ip_s, ip_b);

  const auto batch = lab_batch.traceroute_all(retained_b, ip_b);
  ASSERT_EQ(batch.size(), retained_b.size());
  for (std::size_t i = 0; i < retained_s.size(); ++i) {
    const auto scalar = lab_scalar.traceroute(*retained_s[i], ip_s);
    ASSERT_EQ(batch[i].has_value(), scalar.has_value()) << "probe " << i;
    if (!scalar) continue;
    ASSERT_EQ(batch[i]->hops.size(), scalar->hops.size());
    EXPECT_EQ(batch[i]->rtt.ms, scalar->rtt.ms);
    EXPECT_EQ(batch[i]->phop_valid, scalar->phop_valid);
    for (std::size_t h = 0; h < scalar->hops.size(); ++h) {
      EXPECT_EQ(batch[i]->hops[h].ip, scalar->hops[h].ip);
      EXPECT_EQ(batch[i]->hops[h].owner, scalar->hops[h].owner);
      EXPECT_EQ(batch[i]->hops[h].city, scalar->hops[h].city);
      EXPECT_EQ(batch[i]->hops[h].rtt.ms, scalar->hops[h].rtt.ms);
    }
  }
}

TEST(BatchMeasurements, TracerouteBatchUnderMeasurementFaults) {
  // Fault decisions are pure hashes of (seed, probe, target, attempt), so
  // the batch path must drop exactly the probes the scalar path drops.
  auto lab_scalar = Lab::create(tiny_config());
  auto lab_batch = Lab::create(tiny_config());
  MeasurementFaults faults;
  faults.ping_loss_prob = 0.35;
  faults.max_retries = 1;
  lab_scalar.set_measurement_faults(faults);
  lab_batch.set_measurement_faults(faults);
  const auto& dep_s = lab_scalar.add_deployment(cdn::catalog::imperva6());
  const auto& dep_b = lab_batch.add_deployment(cdn::catalog::imperva6());
  const auto retained_s = lab_scalar.census().retained();
  const auto retained_b = lab_batch.census().retained();
  const Ipv4Addr ip = dep_s.deployment.regions()[0].service_ip;
  ASSERT_EQ(ip, dep_b.deployment.regions()[0].service_ip);

  const auto batch = lab_batch.traceroute_all(retained_b, ip);
  std::size_t gave_up = 0;
  for (std::size_t i = 0; i < retained_s.size(); ++i) {
    const auto scalar = lab_scalar.traceroute(*retained_s[i], ip);
    ASSERT_EQ(batch[i].has_value(), scalar.has_value()) << "probe " << i;
    if (!batch[i]) ++gave_up;
    if (scalar) {
      EXPECT_EQ(batch[i]->hops.back().ip, scalar->hops.back().ip);
    }
  }
  EXPECT_GT(gave_up, 0u);  // the loss probability must actually bite
}

TEST(BatchMeasurements, UnknownAddressYieldsAllEmpty) {
  auto laboratory = Lab::create(tiny_config());
  laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();
  const auto traces = laboratory.traceroute_all(retained, Ipv4Addr{0x7F000001});
  ASSERT_EQ(traces.size(), retained.size());
  for (const auto& t : traces) EXPECT_FALSE(t.has_value());
  const auto rtts = laboratory.ping_all(retained, Ipv4Addr{0x7F000001});
  for (const auto& r : rtts) EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace ranycast::lab
