#include "ranycast/analysis/stats.hpp"
#include "ranycast/lab/comparison.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::lab {
namespace {

class ComparisonTest : public ::testing::Test {
 protected:
  static Lab make_lab() {
    LabConfig config;
    config.world.stub_count = 800;
    config.census.total_probes = 2500;
    return Lab::create(config);
  }

  ComparisonTest()
      : lab_(make_lab()),
        im6_(&lab_.add_deployment(cdn::catalog::imperva6())),
        ns_(&lab_.add_deployment(cdn::catalog::imperva_ns())) {}

  Lab lab_;
  const DeploymentHandle* im6_;
  const DeploymentHandle* ns_;
};

TEST_F(ComparisonTest, ProducesPairedGroups) {
  const auto result = compare_regional_global(lab_, *im6_, *ns_);
  EXPECT_GT(result.groups_total, 300u);
  EXPECT_GT(result.groups_retained, 200u);
  EXPECT_LE(result.groups_retained, result.groups_total);
  EXPECT_EQ(result.groups.size(), result.groups_retained);
}

TEST_F(ComparisonTest, RetentionRateInPaperBallpark) {
  // Paper §5.3: 82.1% of groups retained after the overlap filters.
  const auto result = compare_regional_global(lab_, *im6_, *ns_);
  EXPECT_GT(result.retention_rate(), 0.6);
  EXPECT_LT(result.retention_rate(), 1.0);
}

TEST_F(ComparisonTest, FiltersReduceRetention) {
  ComparisonConfig no_filters;
  no_filters.filter_invalid_phop = false;
  no_filters.filter_nonoverlapping_sites = false;
  no_filters.filter_nonoverlapping_peers = false;
  const auto unfiltered = compare_regional_global(lab_, *im6_, *ns_, no_filters);
  const auto filtered = compare_regional_global(lab_, *im6_, *ns_);
  EXPECT_GT(unfiltered.groups_retained, filtered.groups_retained);
}

TEST_F(ComparisonTest, PairedValuesArePositiveAndFinite) {
  const auto result = compare_regional_global(lab_, *im6_, *ns_);
  for (const PairedGroup& g : result.groups) {
    EXPECT_GT(g.regional_ms, 0.0);
    EXPECT_GT(g.global_ms, 0.0);
    EXPECT_LT(g.regional_ms, 1000.0);
    EXPECT_LT(g.global_ms, 1000.0);
    EXPECT_GE(g.regional_km, 0.0);
    EXPECT_GE(g.global_km, 0.0);
  }
}

TEST_F(ComparisonTest, SameSiteFlagConsistentWithSiteFields) {
  const auto result = compare_regional_global(lab_, *im6_, *ns_);
  for (const PairedGroup& g : result.groups) {
    EXPECT_EQ(g.same_site, g.regional_site == g.global_site);
  }
}

TEST_F(ComparisonTest, RegionalImprovesTheTailOverall) {
  const auto result = compare_regional_global(lab_, *im6_, *ns_);
  std::vector<double> reg, glob;
  for (const PairedGroup& g : result.groups) {
    reg.push_back(g.regional_ms);
    glob.push_back(g.global_ms);
  }
  EXPECT_LT(analysis::percentile(reg, 90), analysis::percentile(glob, 90));
}

TEST_F(ComparisonTest, CauseTallyCoversAllReducedGroups) {
  const auto result = compare_regional_global(lab_, *im6_, *ns_);
  const auto causes = classify_reduction_causes(result);
  EXPECT_EQ(causes.reduced_groups,
            causes.as_relationship + causes.peering_type + causes.unknown);
  EXPECT_GT(causes.reduced_groups, 0u);
  EXPECT_GT(causes.as_relationship, 0u);  // the dominant §5.4 mechanism
}

TEST_F(ComparisonTest, DeterministicAcrossRuns) {
  const auto a = compare_regional_global(lab_, *im6_, *ns_);
  const auto b = compare_regional_global(lab_, *im6_, *ns_);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.groups[i].regional_ms, b.groups[i].regional_ms);
    EXPECT_DOUBLE_EQ(a.groups[i].global_ms, b.groups[i].global_ms);
    EXPECT_EQ(a.groups[i].cause, b.groups[i].cause);
  }
}

}  // namespace
}  // namespace ranycast::lab
