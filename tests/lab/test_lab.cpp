#include "ranycast/lab/lab.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::lab {
namespace {

class LabTest : public ::testing::Test {
 protected:
  static Lab make_lab() {
    LabConfig config;
    config.world.stub_count = 600;
    config.census.total_probes = 2000;
    return Lab::create(config);
  }

  LabTest() : lab_(make_lab()) {}

  Lab lab_;
};

TEST_F(LabTest, DeploymentSolvesEveryRegion) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  EXPECT_EQ(handle.outcomes.size(), 6u);
  EXPECT_EQ(handle.deployment.sites().size(), 48u);
}

TEST_F(LabTest, RegionalPrefixesGloballyReachable) {
  // Paper §4.5: every probe can reach every regional IP, including those
  // DNS would never return to it.
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const auto retained = lab_.census().retained();
  for (std::size_t r = 0; r < handle.deployment.regions().size(); ++r) {
    std::size_t reachable = 0;
    for (const atlas::Probe* p : retained) {
      if (lab_.ping(*p, handle.deployment.regions()[r].service_ip)) ++reachable;
    }
    EXPECT_EQ(reachable, retained.size()) << "region " << r;
  }
}

TEST_F(LabTest, DnsLookupReturnsAddressInRegionPrefix) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  for (const atlas::Probe* p : lab_.census().retained()) {
    const auto answer = lab_.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    ASSERT_LT(answer.region, handle.deployment.regions().size());
    EXPECT_TRUE(handle.deployment.regions()[answer.region].prefix.contains(answer.address));
  }
}

TEST_F(LabTest, AdnsMappingMostlyMatchesIntendedRegion) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const auto retained = lab_.census().retained();
  std::size_t correct = 0;
  for (const atlas::Probe* p : retained) {
    const auto answer = lab_.dns_lookup(*p, handle, dns::QueryMode::Adns);
    if (answer.region == handle.deployment.intended_region(p->city)) ++correct;
  }
  // Only geolocation-database errors can break ADNS mapping.
  EXPECT_GT(static_cast<double>(correct) / retained.size(), 0.90);
}

TEST_F(LabTest, LdnsMappingIsNoBetterThanAdns) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const auto retained = lab_.census().retained();
  std::size_t ldns_correct = 0, adns_correct = 0;
  for (const atlas::Probe* p : retained) {
    const auto intended = handle.deployment.intended_region(p->city);
    if (lab_.dns_lookup(*p, handle, dns::QueryMode::Ldns).region == intended) ++ldns_correct;
    if (lab_.dns_lookup(*p, handle, dns::QueryMode::Adns).region == intended) ++adns_correct;
  }
  EXPECT_LE(ldns_correct, adns_correct);
}

TEST_F(LabTest, PingFailsForUnknownAddress) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  (void)handle;
  const atlas::Probe* p = lab_.census().retained().front();
  EXPECT_FALSE(lab_.ping(*p, Ipv4Addr(1, 1, 1, 1)).has_value());
}

TEST_F(LabTest, PingIsDeterministic) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const atlas::Probe* p = lab_.census().retained().front();
  const Ipv4Addr ip = handle.deployment.regions()[0].service_ip;
  EXPECT_EQ(lab_.ping(*p, ip), lab_.ping(*p, ip));
}

TEST_F(LabTest, HostnameSaltPerturbsSubMillisecond) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const atlas::Probe* p = lab_.census().retained().front();
  const Ipv4Addr ip = handle.deployment.regions()[0].service_ip;
  const auto base = lab_.ping(*p, ip);
  const auto salted = lab_.ping(*p, ip, 1234);
  ASSERT_TRUE(base && salted);
  EXPECT_NE(base->ms, salted->ms);
  EXPECT_LT(std::abs(base->ms - salted->ms), 1.1);
}

TEST_F(LabTest, TracerouteEndsAtCatchmentSite) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  for (const atlas::Probe* p : lab_.census().retained()) {
    const auto answer = lab_.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    const auto trace = lab_.traceroute(*p, answer.address);
    ASSERT_TRUE(trace.has_value());
    const auto site = lab_.catchment_of(*p, answer.address);
    ASSERT_TRUE(site.has_value());
    EXPECT_EQ(trace->phop().city, handle.deployment.site(*site).city);
    break;  // structural check on one probe is enough here
  }
}

TEST_F(LabTest, TracerouteRttMatchesPing) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const atlas::Probe* p = lab_.census().retained().front();
  const Ipv4Addr ip = handle.deployment.regions()[0].service_ip;
  const auto ping = lab_.ping(*p, ip);
  const auto trace = lab_.traceroute(*p, ip);
  ASSERT_TRUE(ping && trace);
  EXPECT_DOUBLE_EQ(ping->ms, trace->rtt.ms);
}

TEST_F(LabTest, CatchmentRespectsRegionalAnnouncements) {
  const auto& handle = lab_.add_deployment(cdn::catalog::imperva6());
  const auto retained = lab_.census().retained();
  for (std::size_t r = 0; r < handle.deployment.regions().size(); ++r) {
    const Ipv4Addr ip = handle.deployment.regions()[r].service_ip;
    for (const atlas::Probe* p : retained) {
      const auto site = lab_.catchment_of(*p, ip);
      if (!site) continue;
      EXPECT_TRUE(handle.deployment.site(*site).announces(r))
          << "probe reached a site that does not announce region " << r;
    }
  }
}

TEST_F(LabTest, LocateAddressRoundTrips) {
  const auto& handle = lab_.add_deployment(cdn::catalog::edgio3());
  for (std::size_t r = 0; r < handle.deployment.regions().size(); ++r) {
    const auto info = lab_.locate_address(handle.deployment.regions()[r].service_ip);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->handle, &handle);
    EXPECT_EQ(info->region, r);
  }
  EXPECT_FALSE(lab_.locate_address(Ipv4Addr(9, 9, 9, 9)).has_value());
}

TEST_F(LabTest, MultipleDeploymentsCoexist) {
  const auto& a = lab_.add_deployment(cdn::catalog::imperva6());
  const auto& b = lab_.add_deployment(cdn::catalog::imperva_ns());
  EXPECT_NE(a.deployment.regions()[0].prefix, b.deployment.regions()[0].prefix);
  const atlas::Probe* p = lab_.census().retained().front();
  EXPECT_TRUE(lab_.ping(*p, a.deployment.regions()[0].service_ip).has_value());
  EXPECT_TRUE(lab_.ping(*p, b.deployment.regions()[0].service_ip).has_value());
}

}  // namespace
}  // namespace ranycast::lab
