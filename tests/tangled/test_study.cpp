#include "ranycast/tangled/study.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ranycast::tangled {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 800;
    config.census.total_probes = 2500;
    return lab::Lab::create(config);
  }

  StudyTest() : lab_(make_lab()), study_(run_study(lab_)) {}

  lab::Lab lab_;
  TangledStudy study_;
};

TEST_F(StudyTest, UnicastMatrixShapeMatchesTestbed) {
  EXPECT_EQ(study_.input.site_cities.size(), 12u);
  EXPECT_EQ(study_.input.unicast_ms.size(), lab_.census().retained().size());
  for (const auto& row : study_.input.unicast_ms) {
    ASSERT_EQ(row.size(), 12u);
    for (double ms : row) EXPECT_GT(ms, 0.0);
  }
}

TEST_F(StudyTest, ChosenKWithinSweepBounds) {
  EXPECT_GE(study_.reopt.k, 3);
  EXPECT_LE(study_.reopt.k, 6);
  EXPECT_EQ(study_.reopt.sweep_mean_ms.size(), 4u);
  // The chosen k has the minimal sweep value.
  const double chosen = study_.reopt.sweep_mean_ms[static_cast<std::size_t>(study_.reopt.k - 3)];
  for (double m : study_.reopt.sweep_mean_ms) EXPECT_GE(m + 1e-9, chosen);
}

TEST_F(StudyTest, EveryRegionHasAtLeastOneSite) {
  std::set<int> used(study_.reopt.site_region.begin(), study_.reopt.site_region.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(study_.reopt.k));
}

TEST_F(StudyTest, ResultsCoverMostRetainedProbes) {
  EXPECT_GT(study_.results.size(), lab_.census().retained().size() * 9 / 10);
  for (const auto& r : study_.results) {
    EXPECT_GT(r.global_ms, 0.0);
    EXPECT_GT(r.direct_ms, 0.0);
    EXPECT_GT(r.route53_ms, 0.0);
  }
}

TEST_F(StudyTest, DirectAssignmentIsTheRegionalLowerBoundOnAverage) {
  double direct = 0.0, route53 = 0.0;
  for (const auto& r : study_.results) {
    direct += r.direct_ms;
    route53 += r.route53_ms;
  }
  // Country-level mapping can only add geolocation/majority-vote error.
  EXPECT_LE(direct, route53 * 1.02);
}

TEST_F(StudyTest, RegionalBeatsGlobalOnMeanOverall) {
  double regional = 0.0, global = 0.0;
  for (const auto& r : study_.results) {
    regional += r.route53_ms;
    global += r.global_ms;
  }
  EXPECT_LT(regional, global);
}

TEST_F(StudyTest, DeploymentsRegistered) {
  ASSERT_NE(study_.global, nullptr);
  ASSERT_NE(study_.regional, nullptr);
  EXPECT_TRUE(study_.global->deployment.is_global());
  EXPECT_EQ(study_.regional->deployment.regions().size(),
            static_cast<std::size_t>(study_.reopt.k));
}

}  // namespace
}  // namespace ranycast::tangled
