#include "ranycast/tangled/testbed.hpp"

#include <gtest/gtest.h>

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::tangled {
namespace {

TEST(Testbed, TwelveSites) {
  EXPECT_EQ(site_cities().size(), 12u);
}

TEST(Testbed, GlobalSpecAnnouncesOnePrefixEverywhere) {
  const auto spec = global_spec();
  EXPECT_EQ(spec.region_names.size(), 1u);
  EXPECT_EQ(spec.sites.size(), 12u);
  for (const auto& s : spec.sites) {
    ASSERT_EQ(s.regions.size(), 1u);
    EXPECT_EQ(s.regions[0], 0u);
  }
}

TEST(Testbed, RegionalSpecFollowsAssignment) {
  const std::vector<int> assignment{0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3};
  const auto spec = regional_spec(assignment, 4);
  EXPECT_EQ(spec.region_names.size(), 4u);
  ASSERT_EQ(spec.sites.size(), 12u);
  for (std::size_t i = 0; i < spec.sites.size(); ++i) {
    ASSERT_EQ(spec.sites[i].regions.size(), 1u);
    EXPECT_EQ(spec.sites[i].regions[0], static_cast<std::size_t>(assignment[i]));
  }
}

TEST(Testbed, UnicastSpecIsSingleSite) {
  const auto spec = unicast_site_spec(3);
  EXPECT_EQ(spec.sites.size(), 1u);
  EXPECT_EQ(spec.sites[0].iata, cdn::catalog::tangled_sites()[3]);
}

TEST(Testbed, AllSpecsShareAttachmentSeedAndAsn) {
  EXPECT_EQ(global_spec().attachment_seed, regional_spec(std::vector<int>(12, 0), 1).attachment_seed);
  EXPECT_EQ(global_spec().attachment_seed, unicast_site_spec(0).attachment_seed);
  EXPECT_EQ(global_spec().asn, make_asn(cdn::catalog::kTangledAsn));
}

}  // namespace
}  // namespace ranycast::tangled
