#include "ranycast/partition/reopt.hpp"

#include <gtest/gtest.h>

namespace ranycast::partition {
namespace {

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

ReOptConfig make_config(int min_regions, int max_regions) {
  ReOptConfig config;
  config.min_regions = min_regions;
  config.max_regions = max_regions;
  return config;
}

/// A hand-built input: 4 sites (2 in Europe, 2 in the US), probes that are
/// clearly closest to one site each.
ReOptInput make_input() {
  ReOptInput in;
  in.site_cities = {city("AMS"), city("FRA"), city("IAD"), city("SJC")};
  // Probes: 3 near AMS (NL), 2 near IAD (US east), 1 odd one out in the US
  // whose lowest latency is to FRA (simulating a tunnel).
  in.unicast_ms = {
      {5, 9, 90, 140},    // NL probe
      {6, 10, 95, 145},   // NL probe
      {7, 11, 92, 142},   // NL probe
      {85, 95, 4, 60},    // US-east probe
      {88, 97, 6, 62},    // US-east probe
      {80, 3, 70, 65},    // US-east probe with odd FRA affinity
  };
  in.probe_cities = {city("AMS"), city("AMS"), city("AMS"),
                     city("IAD"), city("IAD"), city("IAD")};
  return in;
}

TEST(ReOpt, ChoosesRegionCountWithinBounds) {
  const auto result = reopt_partition(make_input(), make_config(2, 4));
  EXPECT_GE(result.k, 2);
  EXPECT_LE(result.k, 4);
  EXPECT_EQ(result.site_region.size(), 4u);
  EXPECT_EQ(result.probe_region.size(), 6u);
}

TEST(ReOpt, DirectAssignmentPicksLowestLatencyRegion) {
  const auto input = make_input();
  const auto result = reopt_partition(input, make_config(2, 2));
  for (std::size_t p = 0; p < input.unicast_ms.size(); ++p) {
    // The probe's region must contain its lowest-latency site.
    std::size_t best_site = 0;
    for (std::size_t s = 1; s < input.site_cities.size(); ++s) {
      if (input.unicast_ms[p][s] < input.unicast_ms[p][best_site]) best_site = s;
    }
    EXPECT_EQ(result.probe_region[p], result.site_region[best_site]);
  }
}

TEST(ReOpt, CountryMajorityOverridesMinority) {
  const auto input = make_input();
  const auto result = reopt_partition(input, make_config(2, 2));
  // The odd US-east probe (lowest latency to FRA) is outvoted by the two
  // IAD-affine probes: country "US" maps to the US region.
  const int us_region = result.site_region[2];  // IAD's region
  ASSERT_TRUE(result.country_region.count("US"));
  EXPECT_EQ(result.country_region.at("US"), us_region);
  // And the mapped region for the odd probe follows the country table.
  EXPECT_EQ(result.mapped_region(5, input), us_region);
}

TEST(ReOpt, SweepRecordsEveryK) {
  const auto result = reopt_partition(make_input(), make_config(2, 4));
  EXPECT_EQ(result.sweep_mean_ms.size(), 3u);
  // The chosen k minimizes the sweep metric.
  const double chosen = result.sweep_mean_ms[static_cast<std::size_t>(result.k - 2)];
  for (double m : result.sweep_mean_ms) EXPECT_GE(m + 1e-9, chosen);
}

TEST(ReOpt, BestInRegionMatchesMatrix) {
  const auto input = make_input();
  const std::vector<int> site_region{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(best_in_region(input, site_region, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(best_in_region(input, site_region, 0, 1), 90.0);
  EXPECT_DOUBLE_EQ(best_in_region(input, site_region, 3, 1), 4.0);
}

TEST(ReOpt, MappedRegionFallsBackToDirectForUnknownCountry) {
  ReOptInput in = make_input();
  const auto result = reopt_partition(in, make_config(2, 2));
  // Pretend a probe from a country not in the table: erase and check fallback.
  ReOptResult modified = result;
  modified.country_region.clear();
  EXPECT_EQ(modified.mapped_region(0, in), result.probe_region[0]);
}

TEST(ReOpt, KCappedBySiteCount) {
  ReOptInput in = make_input();  // 4 sites
  const auto result = reopt_partition(in, make_config(3, 10));
  EXPECT_LE(result.k, 4);
}

}  // namespace
}  // namespace ranycast::partition
