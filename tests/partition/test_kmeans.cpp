#include "ranycast/partition/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::partition {
namespace {

std::vector<geo::GeoPoint> tangled_like_points() {
  const auto& gaz = geo::Gazetteer::world();
  std::vector<geo::GeoPoint> points;
  for (const char* iata : {"SYD", "SIN", "AMS", "LHR", "CDG", "WAW", "JNB", "IAD", "MIA",
                           "SJC", "GRU", "POA"}) {
    points.push_back(gaz.city(*gaz.find_by_iata(iata)).location);
  }
  return points;
}

TEST(KMeans, AssignmentCoversAllPoints) {
  const auto points = tangled_like_points();
  const auto result = kmeans(points, 4, {});
  ASSERT_EQ(result.assignment.size(), points.size());
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(KMeans, AllClustersNonEmpty) {
  const auto points = tangled_like_points();
  for (int k = 2; k <= 6; ++k) {
    const auto result = kmeans(points, k, {});
    std::set<int> used(result.assignment.begin(), result.assignment.end());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(k)) << "k=" << k;
  }
}

TEST(KMeans, InertiaDecreasesWithK) {
  const auto points = tangled_like_points();
  double prev = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 6; ++k) {
    const auto result = kmeans(points, k, {});
    EXPECT_LE(result.inertia_km2, prev + 1e-6) << "k=" << k;
    prev = result.inertia_km2;
  }
}

TEST(KMeans, KEqualsNPerfectFit) {
  const auto points = tangled_like_points();
  const auto result = kmeans(points, static_cast<int>(points.size()), {});
  EXPECT_NEAR(result.inertia_km2, 0.0, 1.0);
}

TEST(KMeans, Deterministic) {
  const auto points = tangled_like_points();
  const auto a = kmeans(points, 5, {});
  const auto b = kmeans(points, 5, {});
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia_km2, b.inertia_km2);
}

TEST(KMeans, GeographicallyCloseSitesClusterTogether) {
  const auto points = tangled_like_points();
  const auto result = kmeans(points, 4, {});
  // AMS (2), LHR (3), CDG (4) are within ~500 km of each other; any sane
  // geographic clustering puts them in the same region.
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
  EXPECT_EQ(result.assignment[2], result.assignment[4]);
  // Sydney (0) is not in the European cluster.
  EXPECT_NE(result.assignment[0], result.assignment[2]);
}

TEST(KMeans, SingleCluster) {
  const auto points = tangled_like_points();
  const auto result = kmeans(points, 1, {});
  for (int a : result.assignment) EXPECT_EQ(a, 0);
  EXPECT_EQ(result.k(), 1);
}

TEST(KMeans, CentroidsLieOnReasonableCoordinates) {
  const auto points = tangled_like_points();
  const auto result = kmeans(points, 3, {});
  for (const auto& c : result.centroids) {
    EXPECT_GE(c.lat_deg, -90.0);
    EXPECT_LE(c.lat_deg, 90.0);
    EXPECT_GE(c.lon_deg, -180.0);
    EXPECT_LE(c.lon_deg, 180.0);
  }
}

}  // namespace
}  // namespace ranycast::partition
