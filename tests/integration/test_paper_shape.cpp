// End-to-end integration tests asserting the *shape* of the paper's headline
// results on the default laboratory configuration: who wins, in which
// direction, and roughly by how much — not absolute milliseconds.
#include <gtest/gtest.h>

#include "ranycast/analysis/classify.hpp"
#include "ranycast/analysis/stats.hpp"
#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/tangled/study.hpp"

namespace ranycast {
namespace {

class PaperShapeTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 1200;
    config.census.total_probes = 5000;
    return lab::Lab::create(config);
  }

  PaperShapeTest()
      : lab_(make_lab()),
        im6_(&lab_.add_deployment(cdn::catalog::imperva6())),
        ns_(&lab_.add_deployment(cdn::catalog::imperva_ns())) {}

  /// Per-area group-median RTTs for a measurement lambda.
  template <typename F>
  std::array<std::vector<double>, geo::kAreaCount> per_area_medians(F&& measure) {
    std::array<std::vector<double>, geo::kAreaCount> out;
    const auto retained = lab_.census().retained();
    for (const auto& group : atlas::group_probes(retained)) {
      const auto median = atlas::group_median(group, measure);
      if (median) out[static_cast<int>(group.area)].push_back(*median);
    }
    return out;
  }

  lab::Lab lab_;
  const lab::DeploymentHandle* im6_;
  const lab::DeploymentHandle* ns_;
};

TEST_F(PaperShapeTest, RegionalReducesTailLatencyVsGlobal) {
  auto regional = per_area_medians([&](const atlas::Probe* p) -> std::optional<double> {
    const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
    const auto rtt = lab_.ping(*p, answer.address);
    return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
  });
  auto global = per_area_medians([&](const atlas::Probe* p) -> std::optional<double> {
    const auto rtt = lab_.ping(*p, ns_->deployment.regions()[0].service_ip);
    return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
  });
  // Paper Table 3 / Fig 4c: regional anycast improves the 90th percentile in
  // EMEA and NA substantially. We require improvement in at least 3 of the
  // 4 areas and a >=30% cut in NA.
  int improved = 0;
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    ASSERT_GT(regional[a].size(), 10u);
    if (analysis::percentile(regional[a], 90) < analysis::percentile(global[a], 90)) ++improved;
  }
  EXPECT_GE(improved, 3);
  const double na_regional = analysis::percentile(regional[static_cast<int>(geo::Area::NA)], 90);
  const double na_global = analysis::percentile(global[static_cast<int>(geo::Area::NA)], 90);
  EXPECT_LT(na_regional, 0.7 * na_global);
}

TEST_F(PaperShapeTest, MedianLatencyIsNotTheStory) {
  // Regional anycast is a *tail* fix; medians may move less. Sanity-check
  // that medians stay within the same order of magnitude.
  auto regional = per_area_medians([&](const atlas::Probe* p) -> std::optional<double> {
    const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
    const auto rtt = lab_.ping(*p, answer.address);
    return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
  });
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    EXPECT_GT(analysis::percentile(regional[a], 50), 1.0);
    EXPECT_LT(analysis::percentile(regional[a], 50), 120.0);
  }
}

TEST_F(PaperShapeTest, DnsMappingMostlyEfficient) {
  // Paper Table 2: 78%-99% of probes receive a regional IP within 5 ms of
  // their lowest-latency regional IP.
  const auto retained = lab_.census().retained();
  std::size_t efficient = 0, total = 0;
  for (const atlas::Probe* p : retained) {
    const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
    const auto returned = lab_.ping(*p, answer.address);
    if (!returned) continue;
    double best = returned->ms;
    for (const auto& region : im6_->deployment.regions()) {
      const auto rtt = lab_.ping(*p, region.service_ip);
      if (rtt) best = std::min(best, rtt->ms);
    }
    ++total;
    if (returned->ms - best < analysis::kMappingThresholdMs) ++efficient;
  }
  ASSERT_GT(total, 1000u);
  const double rate = static_cast<double>(efficient) / static_cast<double>(total);
  EXPECT_GT(rate, 0.70);
  EXPECT_LT(rate, 1.0);  // inefficiencies must exist, or the model is vacuous
}

TEST_F(PaperShapeTest, SomeProbesSufferSuboptimalRegionMapping) {
  // The rigid-region pathologies (US/Canada border, Russia) must appear.
  const auto retained = lab_.census().retained();
  std::size_t suboptimal = 0, incorrect = 0;
  for (const atlas::Probe* p : retained) {
    const auto answer = lab_.dns_lookup(*p, *im6_, dns::QueryMode::Ldns);
    const auto returned = lab_.ping(*p, answer.address);
    if (!returned) continue;
    double best = returned->ms;
    for (const auto& region : im6_->deployment.regions()) {
      const auto rtt = lab_.ping(*p, region.service_ip);
      if (rtt) best = std::min(best, rtt->ms);
    }
    const bool intended = answer.region == im6_->deployment.intended_region(p->city);
    switch (analysis::classify_mapping(returned->ms, best, intended)) {
      case analysis::MappingOutcome::SubOptimalRegion:
        ++suboptimal;
        break;
      case analysis::MappingOutcome::IncorrectRegion:
        ++incorrect;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(suboptimal, 0u);
  EXPECT_GT(incorrect, 0u);
}

TEST_F(PaperShapeTest, TangledReOptBeatsGlobalEverywhere) {
  // Paper Fig 6c: with latency-based partitioning, regional anycast beats
  // global anycast in all areas.
  tangled::StudyConfig config;
  const auto study = tangled::run_study(lab_, config);
  ASSERT_GE(study.reopt.k, 3);
  ASSERT_LE(study.reopt.k, 6);
  std::array<std::vector<double>, geo::kAreaCount> reopt_ms, global_ms;
  for (const auto& r : study.results) {
    const auto area = static_cast<int>(r.probe->area());
    reopt_ms[area].push_back(r.route53_ms);
    global_ms[area].push_back(r.global_ms);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    ASSERT_GT(reopt_ms[a].size(), 20u);
    EXPECT_LT(analysis::percentile(reopt_ms[a], 90), analysis::percentile(global_ms[a], 90))
        << geo::to_string(static_cast<geo::Area>(a));
  }
}

TEST_F(PaperShapeTest, Route53MappingCloseToDirectAssignment) {
  // Paper Fig 6b: country-level Route 53 mapping is nearly as good as the
  // per-probe optimal assignment.
  const auto study = tangled::run_study(lab_, {});
  std::vector<double> direct, route53;
  for (const auto& r : study.results) {
    direct.push_back(r.direct_ms);
    route53.push_back(r.route53_ms);
  }
  const double p90_direct = analysis::percentile(direct, 90);
  const double p90_route53 = analysis::percentile(route53, 90);
  EXPECT_GE(p90_route53, p90_direct - 1.0);  // direct is the lower bound
  EXPECT_LT(p90_route53, p90_direct * 1.5);  // and Route 53 is close to it
}

}  // namespace
}  // namespace ranycast
