// Expected-based traffic config binding: a malformed block comes back as an
// io::ConfigError naming the file and the offending field, never a throw or
// a silently-defaulted knob.
#include "ranycast/traffic/config.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "ranycast/io/json.hpp"

namespace ranycast::traffic {
namespace {

io::Json parse(const std::string& text) { return io::parse_json_or_throw(text); }

TEST(TrafficConfigJson, DefaultsRoundTrip) {
  const TrafficConfig cfg;
  const auto back = config_from_json(config_to_json(cfg), "mem");
  ASSERT_TRUE(back.has_value()) << back.error().to_string();
  EXPECT_EQ(back->flows_per_probe_per_s, cfg.flows_per_probe_per_s);
  EXPECT_EQ(back->default_site_capacity_mbps, cfg.default_site_capacity_mbps);
  EXPECT_EQ(back->policy, cfg.policy);
  EXPECT_EQ(back->seed, cfg.seed);
  EXPECT_EQ(back->flow_sizes.bytes, cfg.flow_sizes.bytes);
  EXPECT_EQ(fingerprint(*back), fingerprint(cfg));
}

TEST(TrafficConfigJson, ParsesEveryKnob) {
  const auto cfg = config_from_json(parse(R"({
    "flows_per_probe_per_s": 3.5,
    "window_s": 2.0,
    "demand_scale": 1.5,
    "default_site_capacity_mbps": 450.0,
    "site_capacity_mbps": [100.0, 200.0],
    "policy": "shed",
    "admission_threshold": 0.9,
    "max_rho": 0.98,
    "max_shed_waves": 4,
    "seed": 77,
    "flow_sizes": {"bytes": [1000.0, 5000.0], "prob": [0.5, 1.0]}
  })"),
                                    "overload.json");
  ASSERT_TRUE(cfg.has_value()) << cfg.error().to_string();
  EXPECT_EQ(cfg->policy, OverloadPolicy::Shed);
  EXPECT_EQ(cfg->site_capacity_mbps.size(), 2u);
  EXPECT_EQ(cfg->max_shed_waves, 4u);
  EXPECT_EQ(cfg->seed, 77u);
  EXPECT_EQ(cfg->flow_sizes.bytes.size(), 2u);
}

TEST(TrafficConfigJson, UnknownPolicyNamesTheField) {
  const auto cfg =
      config_from_json(parse(R"({"policy": "teleport"})"), "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().file, "overload.json");
  EXPECT_EQ(cfg.error().field, "traffic.policy");
  EXPECT_NE(cfg.error().message.find("teleport"), std::string::npos);
}

TEST(TrafficConfigJson, NonPositiveCapacityNamesTheIndex) {
  const auto cfg = config_from_json(
      parse(R"({"site_capacity_mbps": [100.0, -5.0]})"), "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().field, "traffic.site_capacity_mbps[1]");
}

TEST(TrafficConfigJson, InfiniteRateIsRejected) {
  TrafficConfig cfg;
  cfg.flows_per_probe_per_s = std::numeric_limits<double>::infinity();
  const auto err = validate(cfg, "overload.json");
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "traffic.flows_per_probe_per_s");
}

TEST(TrafficConfigJson, NonMonotoneCdfIsRejected) {
  const auto cfg = config_from_json(
      parse(R"({"flow_sizes": {"bytes": [5000.0, 1000.0], "prob": [0.5, 1.0]}})"),
      "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().field, "traffic.flow_sizes.bytes[1]");
  EXPECT_NE(cfg.error().message.find("increasing"), std::string::npos);
}

TEST(TrafficConfigJson, UnnormalizedCdfIsRejected) {
  const auto cfg = config_from_json(
      parse(R"({"flow_sizes": {"bytes": [1000.0, 5000.0], "prob": [0.5, 0.9]}})"),
      "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().field, "traffic.flow_sizes.prob");
}

TEST(TrafficConfigJson, MismatchedCdfKnotsAreRejected) {
  const auto cfg = config_from_json(
      parse(R"({"flow_sizes": {"bytes": [1000.0], "prob": [0.5, 1.0]}})"),
      "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().field, "traffic.flow_sizes");
}

TEST(TrafficConfigJson, ThresholdOutsideUnitIntervalIsRejected) {
  const auto cfg =
      config_from_json(parse(R"({"admission_threshold": 1.5})"), "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().field, "traffic.admission_threshold");
}

TEST(TrafficConfigJson, NonObjectBlockIsRejected) {
  const auto cfg = config_from_json(parse("[1, 2]"), "overload.json");
  ASSERT_FALSE(cfg.has_value());
  EXPECT_EQ(cfg.error().file, "overload.json");
}

TEST(TrafficFingerprint, SensitiveToEveryPolicyKnob) {
  const TrafficConfig base;
  const auto fp = fingerprint(base);

  TrafficConfig c = base;
  c.policy = OverloadPolicy::Shed;
  EXPECT_NE(fingerprint(c), fp);

  c = base;
  c.default_site_capacity_mbps += 1.0;
  EXPECT_NE(fingerprint(c), fp);

  c = base;
  c.seed ^= 1;
  EXPECT_NE(fingerprint(c), fp);

  c = base;
  c.site_capacity_mbps = {500.0};
  EXPECT_NE(fingerprint(c), fp);

  c = base;
  c.flow_sizes.bytes.back() *= 2.0;
  EXPECT_NE(fingerprint(c), fp);
}

}  // namespace
}  // namespace ranycast::traffic
