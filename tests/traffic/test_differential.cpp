// Shed-vs-spill end to end on a purpose-built world: a deployment whose
// LatAm region has exactly one site. When that site overloads, pure anycast
// (Spill) can only drop — its clients have nowhere else inside the regional
// prefix — while DNS-steered shedding re-answers them onto the US prefix.
// The two policies must leave measurably different utilization and
// drop/shed accounting behind.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ranycast/cdn/builder.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/traffic/model.hpp"

namespace ranycast::traffic {
namespace {

cdn::DeploymentSpec solo_latam() {
  cdn::DeploymentSpec spec;
  spec.name = "solo-latam";
  spec.asn = make_asn(64999);
  spec.region_names = {"US", "LatAm"};
  for (const char* iata : {"IAD", "ORD", "DFW", "LAX", "SEA", "MIA"}) {
    spec.sites.push_back(cdn::SiteSpec{iata, {0}});
  }
  spec.sites.push_back(cdn::SiteSpec{"GRU", {1}});  // the region's only site
  spec.area_defaults = {0, 0, 1, 0};                // LatAm -> GRU, rest -> US
  return spec;
}

class SoloRegionTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 400;
    config.census.total_probes = 1200;
    return lab::Lab::create(config);
  }

  // A one-event plan so the engine produces exactly one traffic solve; the
  // surge itself is a no-op (scale 1), the step is the measurement.
  static chaos::FaultPlan one_step() {
    chaos::FaultPlan plan;
    plan.name = "solo-latam-overload";
    chaos::FaultEvent e;
    e.kind = chaos::FaultKind::TrafficSurge;
    e.magnitude = 1.0;
    plan.events.push_back(e);
    return plan;
  }

  chaos::ChaosReport run_with(OverloadPolicy policy, double gru_capacity_mbps) {
    auto laboratory = make_lab();
    const auto& dep = laboratory.add_deployment(solo_latam());
    chaos::Engine engine(laboratory, dep);
    TrafficConfig cfg;
    cfg.policy = policy;
    cfg.site_capacity_mbps.assign(dep.deployment.sites().size(),
                                  cfg.default_site_capacity_mbps);
    cfg.site_capacity_mbps[gru_] = gru_capacity_mbps;
    engine.enable_traffic(cfg);
    auto report = engine.run(one_step());
    EXPECT_TRUE(report.has_value());
    EXPECT_EQ(report->traffic.size(), 1u);
    return std::move(*report);
  }

  SoloRegionTest() {
    auto laboratory = make_lab();
    const auto& dep = laboratory.add_deployment(solo_latam());
    gru_ = dep.deployment.sites().size() - 1;  // GRU is declared last
    chaos::Engine engine(laboratory, dep);
    engine.enable_traffic(TrafficConfig{});
    const auto report = engine.run(one_step());
    EXPECT_TRUE(report.has_value());
    if (report.has_value() && report->traffic.size() == 1) {
      gru_offered_mbps_ = report->traffic[0].solve.sites[gru_].offered_mbps;
    }
  }

  std::size_t gru_{0};
  double gru_offered_mbps_{0.0};
};

TEST_F(SoloRegionTest, GruServesItsRegionAlone) {
  ASSERT_GT(gru_offered_mbps_, 1.0) << "no LatAm demand reached GRU";
}

TEST_F(SoloRegionTest, SpillDropsWhereShedSteersCrossRegion) {
  // Size GRU so its own catchment overloads it.
  const double tight = gru_offered_mbps_ * 0.6;
  const auto spill = run_with(OverloadPolicy::Spill, tight);
  const auto shed = run_with(OverloadPolicy::Shed, tight);
  const auto& spill_solve = spill.traffic[0].solve;
  const auto& shed_solve = shed.traffic[0].solve;

  // Spill: the region's clients have no alternate site, flows die at GRU.
  EXPECT_GT(spill_solve.sites[gru_].flows_dropped, 0u);
  EXPECT_EQ(spill_solve.flows_shed, 0u);

  // Shed: excess is re-answered onto the US prefix instead of dropped.
  EXPECT_GT(shed_solve.sites[gru_].flows_shed_out, 0u);
  EXPECT_LT(shed_solve.sites[gru_].flows_dropped,
            spill_solve.sites[gru_].flows_dropped);

  // Shed landed that load on US sites.
  std::size_t shed_in = 0;
  for (std::size_t s = 0; s < gru_; ++s) shed_in += shed_solve.sites[s].flows_shed_in;
  EXPECT_GT(shed_in, 0u);

  // The per-site utilization pictures differ measurably: the US sites carry
  // the steered load under shed, and spill's drops never get served at all.
  double spill_us_util = 0.0, shed_us_util = 0.0;
  for (std::size_t s = 0; s < gru_; ++s) {
    spill_us_util += spill_solve.sites[s].utilization;
    shed_us_util += shed_solve.sites[s].utilization;
  }
  EXPECT_GT(shed_us_util, spill_us_util);
  EXPECT_GT(spill_solve.dropped_mbps, shed_solve.dropped_mbps);
  EXPECT_GT(shed_solve.served_mbps, spill_solve.served_mbps);
}

TEST_F(SoloRegionTest, SameSeedSamePolicyIsByteStable) {
  const double tight = gru_offered_mbps_ * 0.6;
  const auto a = run_with(OverloadPolicy::Shed, tight);
  const auto b = run_with(OverloadPolicy::Shed, tight);
  const auto& sa = a.traffic[0].solve;
  const auto& sb = b.traffic[0].solve;
  ASSERT_EQ(sa.sites.size(), sb.sites.size());
  for (std::size_t s = 0; s < sa.sites.size(); ++s) {
    EXPECT_EQ(sa.sites[s].served_mbps, sb.sites[s].served_mbps);
    EXPECT_EQ(sa.sites[s].flows_shed_out, sb.sites[s].flows_shed_out);
  }
}

}  // namespace
}  // namespace ranycast::traffic
