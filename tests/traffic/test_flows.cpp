// Flow-generation determinism: the demand a chaos step sees must be a pure
// function of (seed, probe grouping, surge scale) — independent of worker
// count, stable across repeated generation, and sensitive to the seed.
#include "ranycast/traffic/flows.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "ranycast/atlas/grouping.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::traffic {
namespace {

class FlowGenTest : public ::testing::Test {
 protected:
  static lab::Lab make_lab() {
    lab::LabConfig config;
    config.world.stub_count = 400;
    config.census.total_probes = 1200;
    return lab::Lab::create(config);
  }

  FlowGenTest()
      : lab_(make_lab()),
        retained_(lab_.census().retained()),
        groups_(atlas::group_probes(retained_)) {}

  lab::Lab lab_;
  std::vector<const atlas::Probe*> retained_;
  std::vector<atlas::ProbeGroup> groups_;
};

bool identical(const FlowSet& a, const FlowSet& b) {
  if (a.flows.size() != b.flows.size()) return false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    if (a.flows[i].probe != b.flows[i].probe) return false;
    if (a.flows[i].bytes != b.flows[i].bytes) return false;
  }
  return a.total_bytes == b.total_bytes && a.groups == b.groups &&
         a.empty_groups == b.empty_groups;
}

TEST_F(FlowGenTest, RepeatedGenerationIsByteIdentical) {
  TrafficConfig cfg;
  const FlowSet a = generate_flows(groups_, retained_, cfg);
  const FlowSet b = generate_flows(groups_, retained_, cfg);
  ASSERT_GT(a.flows.size(), 100u);
  EXPECT_TRUE(identical(a, b));
}

TEST_F(FlowGenTest, IndependentOfWorkerCount) {
  TrafficConfig cfg;
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const FlowSet expected = generate_flows(groups_, retained_, cfg);

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 1 && hardware != 2) sweep.push_back(hardware);
  for (const unsigned workers : sweep) {
    pool.resize(workers);
    EXPECT_TRUE(identical(generate_flows(groups_, retained_, cfg), expected))
        << workers << " workers";
  }
  pool.resize(original);
}

TEST_F(FlowGenTest, SeedChangesTheDraw) {
  TrafficConfig cfg;
  const FlowSet a = generate_flows(groups_, retained_, cfg);
  cfg.seed ^= 0x1;
  const FlowSet b = generate_flows(groups_, retained_, cfg);
  EXPECT_FALSE(identical(a, b));
}

TEST_F(FlowGenTest, SurgeScalesArrivals) {
  TrafficConfig cfg;
  const FlowSet base = generate_flows(groups_, retained_, cfg, 1.0);
  const FlowSet surged = generate_flows(groups_, retained_, cfg, 2.0);
  // Poisson means double; with >1000 probes the law of large numbers makes
  // this a safe margin, not a statistical coin flip.
  EXPECT_GT(surged.flows.size(), base.flows.size() * 3 / 2);
  EXPECT_GT(surged.total_bytes, base.total_bytes * 1.5);
}

TEST_F(FlowGenTest, ZeroRateGeneratesNothing) {
  TrafficConfig cfg;
  cfg.flows_per_probe_per_s = 0.0;
  const FlowSet set = generate_flows(groups_, retained_, cfg);
  EXPECT_TRUE(set.flows.empty());
  EXPECT_EQ(set.total_bytes, 0.0);
}

TEST_F(FlowGenTest, EveryFlowIndexesARetainedProbe) {
  TrafficConfig cfg;
  const FlowSet set = generate_flows(groups_, retained_, cfg);
  for (const Flow& f : set.flows) {
    ASSERT_LT(f.probe, retained_.size());
    EXPECT_GT(f.bytes, 0.0);
  }
}

TEST_F(FlowGenTest, OfferedMbpsMatchesTotalBytes) {
  TrafficConfig cfg;
  cfg.window_s = 2.0;
  const FlowSet set = generate_flows(groups_, retained_, cfg);
  EXPECT_DOUBLE_EQ(offered_mbps(set, cfg), set.total_bytes * 8.0 / 2.0 / 1e6);
}

TEST(FlowSizeCdf, DefaultIsValidAndMonotone) {
  const FlowSizeCdf cdf = FlowSizeCdf::anycast_cdn();
  ASSERT_TRUE(cdf.valid());
  double prev = 0.0;
  for (double u = 0.0; u < 1.0; u += 0.01) {
    const double s = cdf.sample(u);
    EXPECT_GE(s, prev);
    EXPECT_GE(s, cdf.bytes.front());
    EXPECT_LE(s, cdf.bytes.back());
    prev = s;
  }
  const double mean = cdf.mean_bytes();
  EXPECT_GT(mean, cdf.bytes.front());
  EXPECT_LT(mean, cdf.bytes.back());
}

TEST(FlowSizeCdf, HeavyTailShape) {
  // The default CDF is mice-dominated by count: the median flow is far
  // smaller than the mean (elephants carry the bytes).
  const FlowSizeCdf cdf = FlowSizeCdf::anycast_cdn();
  EXPECT_LT(cdf.sample(0.5), cdf.mean_bytes() / 4.0);
}

}  // namespace
}  // namespace ranycast::traffic
