// The capacity/overload solve on hand-built flow sets and assignments:
// queueing-delay shape, spill-vs-shed accounting, cascade depth, and the
// degenerate inputs (unrouted probes, zero-capacity sites) that must never
// produce NaN.
#include "ranycast/traffic/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ranycast::traffic {
namespace {

// One uniform knot keeps flow-size math exact in the assertions below.
FlowSizeCdf point_mass(double bytes) {
  FlowSizeCdf cdf;
  cdf.bytes = {bytes};
  cdf.prob = {1.0};
  return cdf;
}

FlowSet flows_of(std::vector<Flow> flows) {
  FlowSet set;
  for (const Flow& f : flows) set.total_bytes += f.bytes;
  set.flows = std::move(flows);
  set.groups = 1;
  return set;
}

// Capacity in Mbps whose one-second window holds exactly `bytes` bytes.
double cap_for_bytes(double bytes) { return bytes * 8.0 / 1e6; }

TEST(QueueingDelay, MonotoneInUtilizationAndAlwaysFinite) {
  const double service = 0.5;
  double prev = -1.0;
  for (double rho : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0, 1.5, 10.0}) {
    const double w = queueing_delay_ms(rho, service, 0.99);
    ASSERT_TRUE(std::isfinite(w)) << "rho=" << rho;
    EXPECT_GE(w, prev) << "rho=" << rho;
    prev = w;
  }
  // Past the clamp the delay plateaus instead of diverging.
  EXPECT_DOUBLE_EQ(queueing_delay_ms(1.5, service, 0.99),
                   queueing_delay_ms(10.0, service, 0.99));
}

TEST(QueueingDelay, ZeroAtZeroLoadOrZeroService) {
  EXPECT_DOUBLE_EQ(queueing_delay_ms(0.0, 0.5, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(queueing_delay_ms(0.8, 0.0, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(service_time_ms(10000.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(service_time_ms(0.0, 100.0), 0.0);
}

TEST(Solver, SpillDropsNewestArrivalsPastRawCapacity) {
  TrafficConfig cfg;
  cfg.policy = OverloadPolicy::Spill;
  cfg.flow_sizes = point_mass(40'000.0);
  cfg.default_site_capacity_mbps = cap_for_bytes(100'000.0);

  const FlowSet set =
      flows_of({{0, 40'000.0}, {0, 40'000.0}, {0, 40'000.0}});
  const std::vector<ProbeAssign> assign{{SiteId{0}, {}}};
  const TrafficSolve out = solve(set, assign, 1, cfg);

  EXPECT_EQ(out.flows_offered, 3u);
  EXPECT_EQ(out.flows_served, 2u);
  EXPECT_EQ(out.flows_dropped, 1u);
  EXPECT_EQ(out.flows_shed, 0u);
  EXPECT_DOUBLE_EQ(out.sites[0].served_mbps, cap_for_bytes(80'000.0));
  EXPECT_NEAR(out.sites[0].utilization, 0.8, 1e-12);
  EXPECT_FALSE(out.sites[0].overloaded);
  EXPECT_GT(out.sites[0].queue_delay_ms, 0.0);
}

TEST(Solver, ShedSteersToAlternateWhereSpillDrops) {
  TrafficConfig cfg;
  cfg.flow_sizes = point_mass(40'000.0);
  cfg.site_capacity_mbps = {cap_for_bytes(100'000.0), cap_for_bytes(1'000'000.0)};
  cfg.default_site_capacity_mbps = cfg.site_capacity_mbps[0];

  const FlowSet set =
      flows_of({{0, 40'000.0}, {0, 40'000.0}, {0, 40'000.0}});
  const std::vector<ProbeAssign> assign{{SiteId{0}, {SiteId{1}}}};

  cfg.policy = OverloadPolicy::Spill;
  const TrafficSolve spill = solve(set, assign, 2, cfg);
  cfg.policy = OverloadPolicy::Shed;
  const TrafficSolve shed = solve(set, assign, 2, cfg);

  // Spill loses a flow; shed serves all three by steering to the alternate.
  EXPECT_EQ(spill.flows_dropped, 1u);
  EXPECT_EQ(spill.flows_shed, 0u);
  EXPECT_EQ(shed.flows_dropped, 0u);
  EXPECT_GE(shed.flows_shed, 1u);
  EXPECT_EQ(shed.flows_served, 3u);
  EXPECT_GT(shed.sites[1].flows_shed_in, 0u);
  // The policies leave measurably different per-site utilization behind:
  // the steered-to site carries load under shed that spill simply lost.
  EXPECT_GT(shed.sites[1].utilization, spill.sites[1].utilization);
  EXPECT_GT(shed.served_mbps, spill.served_mbps);
}

TEST(Solver, ShedWithoutReachableAlternateDegeneratesToSpill) {
  TrafficConfig cfg;
  cfg.policy = OverloadPolicy::Shed;
  cfg.flow_sizes = point_mass(40'000.0);
  cfg.default_site_capacity_mbps = cap_for_bytes(100'000.0);

  const FlowSet set =
      flows_of({{0, 40'000.0}, {0, 40'000.0}, {0, 40'000.0}});
  const std::vector<ProbeAssign> assign{{SiteId{0}, {}}};  // one-site region
  const TrafficSolve out = solve(set, assign, 1, cfg);

  EXPECT_EQ(out.flows_shed, 0u);
  EXPECT_EQ(out.flows_dropped, 1u);
  EXPECT_EQ(out.cascade_depth, 0u);
}

TEST(Solver, CascadeDepthCountsWavesThatTipHealthySites) {
  // site 0 overloads and sheds onto site 1 (tipping it); site 1's own
  // clients then shed onto site 2, tipping it in turn: two waves, depth 2.
  TrafficConfig cfg;
  cfg.policy = OverloadPolicy::Shed;
  cfg.flow_sizes = point_mass(10'000.0);
  cfg.default_site_capacity_mbps = cap_for_bytes(125'000.0);
  cfg.admission_threshold = 0.95;  // over when load > 118750 bytes

  std::vector<Flow> flows;
  for (int i = 0; i < 12; ++i) flows.push_back({0, 10'000.0});  // site 0: 120000
  for (int i = 0; i < 11; ++i) flows.push_back({1, 10'000.0});  // site 1: 110000
  for (int i = 0; i < 11; ++i) flows.push_back({2, 10'000.0});  // site 2: 110000
  const std::vector<ProbeAssign> assign{
      {SiteId{0}, {SiteId{1}}},
      {SiteId{1}, {SiteId{2}}},
      {SiteId{2}, {}},
  };
  const TrafficSolve out = solve(flows_of(std::move(flows)), assign, 3, cfg);

  EXPECT_EQ(out.cascade_depth, 2u);
  EXPECT_EQ(out.flows_shed, 2u);
  EXPECT_EQ(out.flows_dropped, 0u);
  EXPECT_EQ(out.sites[1].flows_shed_in, 1u);
  EXPECT_EQ(out.sites[2].flows_shed_in, 1u);
  EXPECT_TRUE(out.sites[2].overloaded);
}

TEST(Solver, UnroutedProbesAreAccountedNotServed) {
  TrafficConfig cfg;
  cfg.flow_sizes = point_mass(10'000.0);
  const FlowSet set = flows_of({{0, 10'000.0}, {1, 10'000.0}, {7, 10'000.0}});
  // Probe 0 routed; probe 1 lost its catchment; probe 7 beyond the
  // assignment table entirely.
  const std::vector<ProbeAssign> assign{{SiteId{0}, {}}, {kInvalidSite, {}}};
  const TrafficSolve out = solve(set, assign, 1, cfg);

  EXPECT_EQ(out.flows_unrouted, 2u);
  EXPECT_EQ(out.flows_offered, 1u);
  EXPECT_EQ(out.flows_served, 1u);
  EXPECT_DOUBLE_EQ(out.unrouted_mbps, cap_for_bytes(20'000.0));
}

TEST(Solver, ZeroCapacitySiteStaysNaNFree) {
  TrafficConfig cfg;
  cfg.flow_sizes = point_mass(10'000.0);
  cfg.default_site_capacity_mbps = 0.0;  // bypasses validate() on purpose
  const FlowSet set = flows_of({{0, 10'000.0}});
  const std::vector<ProbeAssign> assign{{SiteId{0}, {}}};
  const TrafficSolve out = solve(set, assign, 1, cfg);

  EXPECT_TRUE(std::isfinite(out.sites[0].utilization));
  EXPECT_DOUBLE_EQ(out.sites[0].utilization, 0.0);
  EXPECT_DOUBLE_EQ(out.sites[0].queue_delay_ms, 0.0);
  EXPECT_TRUE(out.sites[0].overloaded);
  EXPECT_EQ(out.flows_dropped, 1u);
  EXPECT_EQ(out.flows_served, 0u);
  EXPECT_TRUE(std::isfinite(out.mean_utilization));
}

TEST(Solver, EmptyFlowSetProducesZeroedFiniteReport) {
  const TrafficConfig cfg;
  const TrafficSolve out = solve(FlowSet{}, {}, 4, cfg);
  EXPECT_EQ(out.flows_offered, 0u);
  EXPECT_DOUBLE_EQ(out.max_utilization, 0.0);
  EXPECT_TRUE(std::isfinite(out.mean_utilization));
  EXPECT_TRUE(std::isfinite(out.queue_delay_p50_ms));
  EXPECT_TRUE(std::isfinite(out.queue_delay_p90_ms));
}

TEST(Solver, DeterministicAcrossRepeatedSolves) {
  TrafficConfig cfg;
  cfg.policy = OverloadPolicy::Shed;
  cfg.flow_sizes = point_mass(10'000.0);
  cfg.default_site_capacity_mbps = cap_for_bytes(50'000.0);
  std::vector<Flow> flows;
  for (std::uint32_t p = 0; p < 3; ++p) {
    for (int i = 0; i < 8; ++i) flows.push_back({p, 10'000.0});
  }
  const FlowSet set = flows_of(std::move(flows));
  const std::vector<ProbeAssign> assign{
      {SiteId{0}, {SiteId{1}, SiteId{2}}},
      {SiteId{1}, {SiteId{0}, SiteId{2}}},
      {SiteId{2}, {SiteId{0}, SiteId{1}}},
  };
  const TrafficSolve a = solve(set, assign, 3, cfg);
  const TrafficSolve b = solve(set, assign, 3, cfg);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(a.sites[s].served_mbps, b.sites[s].served_mbps);
    EXPECT_EQ(a.sites[s].flows_shed_out, b.sites[s].flows_shed_out);
    EXPECT_EQ(a.sites[s].flows_dropped, b.sites[s].flows_dropped);
  }
  EXPECT_EQ(a.cascade_depth, b.cascade_depth);
}

}  // namespace
}  // namespace ranycast::traffic
