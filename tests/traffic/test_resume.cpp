// Kill/resume determinism with traffic recording enabled: a chaos run
// killed at any step must resume to a report — steady AND traffic sections,
// including the surge scale a traffic_surge event installed before the kill
// — byte-identical to an uninterrupted run, at worker counts {1, 2,
// hardware}. A traffic checkpoint also must not resume into a traffic-less
// run (or vice versa): the traffic config is part of the fingerprint.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/traffic/model.hpp"

namespace ranycast::traffic {
namespace {

namespace fs = std::filesystem;

lab::LabConfig tiny_config() {
  lab::LabConfig config;
  config.world.stub_count = 400;
  config.census.total_probes = 1200;
  config.seed = 2023;
  return config;
}

TrafficConfig tight_traffic() {
  TrafficConfig cfg;
  // Small enough that withdrawals under surge actually shed/drop, so the
  // resume has non-trivial traffic bytes to reproduce.
  cfg.default_site_capacity_mbps = 450.0;
  cfg.policy = OverloadPolicy::Shed;
  return cfg;
}

/// Surge, withdraw the load-bearing sites, restore: the resume replay has
/// to reconstruct both the engine's undo state and the installed surge
/// scale, or the regenerated flows diverge.
chaos::FaultPlan overload_plan() {
  chaos::FaultPlan plan;
  plan.name = "traffic-resume";
  chaos::FaultEvent e;

  e.kind = chaos::FaultKind::TrafficSurge;
  e.magnitude = 1.4;
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{16};
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{16};
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::TrafficRestore;
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{22};
  plan.events.push_back(e);

  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{22};
  plan.events.push_back(e);

  return plan;
}

std::string checkpoint_path(const std::string& tag) {
  const auto dir = fs::temp_directory_path() / "ranycast_traffic_resume";
  fs::create_directories(dir);
  return (dir / (tag + ".ck")).string();
}

std::string baseline_json() {
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_traffic(tight_traffic());
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  auto outcome = engine.run_guarded(overload_plan(), supervisor, policy);
  EXPECT_TRUE(outcome.has_value()) << outcome.error();
  if (!outcome) return {};
  EXPECT_EQ(outcome->report.traffic.size(), outcome->report.steps.size());
  return chaos::report_to_json(outcome->report).dump(2);
}

std::string abort_and_resume_json(std::size_t abort_at, const std::string& tag) {
  const std::string ck = checkpoint_path(tag);
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);
    engine.enable_traffic(tight_traffic());
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == abort_at) supervisor.cancel();
    };
    auto first = engine.run_guarded(overload_plan(), supervisor, policy);
    EXPECT_TRUE(first.has_value()) << first.error();
    if (!first) return {};
    EXPECT_TRUE(first->report.truncated);
    EXPECT_EQ(first->report.steps.size(), abort_at);
    EXPECT_EQ(first->report.traffic.size(), abort_at);
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_traffic(tight_traffic());
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto second = engine.run_guarded(overload_plan(), supervisor, policy);
  EXPECT_TRUE(second.has_value()) << second.error();
  if (!second) return {};
  EXPECT_TRUE(second->sweep.resumed);
  EXPECT_EQ(second->sweep.resumed_from, abort_at);
  EXPECT_FALSE(second->report.truncated);
  fs::remove(ck);
  return chaos::report_to_json(second->report).dump(2);
}

TEST(TrafficResume, TrafficReportByteIdenticalAtEveryAbortPoint) {
  const std::string expected = baseline_json();
  ASSERT_FALSE(expected.empty());
  EXPECT_NE(expected.find("\"traffic\""), std::string::npos);
  const std::size_t n = overload_plan().events.size();
  // abort_at == 1 kills mid-surge: the resumed run must re-install the
  // 1.4x scale from the checkpoint, not regenerate baseline demand.
  for (const std::size_t abort_at : {std::size_t{1}, n / 2, n - 1}) {
    EXPECT_EQ(abort_and_resume_json(abort_at, "abort_" + std::to_string(abort_at)),
              expected)
        << "aborted after step " << abort_at;
  }
}

TEST(TrafficResume, TrafficReportByteIdenticalAcrossWorkerCounts) {
  auto& pool = exec::ThreadPool::global();
  const unsigned original = pool.worker_count();

  pool.resize(1);
  const std::string expected = baseline_json();
  const std::size_t n = overload_plan().events.size();

  std::vector<unsigned> sweep{1, 2};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (hardware != 2 && hardware != 1) sweep.push_back(hardware);
  for (const unsigned workers : sweep) {
    pool.resize(workers);
    EXPECT_EQ(baseline_json(), expected) << workers << " workers, uninterrupted";
    EXPECT_EQ(abort_and_resume_json(n / 2, "threads_" + std::to_string(workers)),
              expected)
        << workers << " workers, abort at " << n / 2;
  }
  pool.resize(original);
}

TEST(TrafficResume, SteadyCheckpointDoesNotResumeIntoTrafficRun) {
  const std::string ck = checkpoint_path("steady_to_traffic");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);  // traffic-less checkpoint
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(overload_plan(), supervisor, policy).has_value());
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  engine.enable_traffic(tight_traffic());  // fingerprint now differs
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(overload_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("fingerprint"), std::string::npos) << outcome.error();
  fs::remove(ck);
}

TEST(TrafficResume, DifferentCapacityModelDoesNotResume) {
  const std::string ck = checkpoint_path("other_capacity");
  fs::remove(ck);
  {
    auto laboratory = lab::Lab::create(tiny_config());
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);
    engine.enable_traffic(tight_traffic());
    guard::Supervisor supervisor;
    guard::CheckpointPolicy policy;
    policy.path = ck;
    policy.after_step = [&](std::size_t done, std::size_t) {
      if (done == 2) supervisor.cancel();
    };
    ASSERT_TRUE(engine.run_guarded(overload_plan(), supervisor, policy).has_value());
  }
  auto laboratory = lab::Lab::create(tiny_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  TrafficConfig other = tight_traffic();
  other.default_site_capacity_mbps = 900.0;  // different capacity model
  engine.enable_traffic(other);
  guard::Supervisor supervisor;
  guard::CheckpointPolicy policy;
  policy.path = ck;
  policy.resume = true;
  auto outcome = engine.run_guarded(overload_plan(), supervisor, policy);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_NE(outcome.error().find("fingerprint"), std::string::npos) << outcome.error();
  fs::remove(ck);
}

}  // namespace
}  // namespace ranycast::traffic
